//! Diagnostics and per-site justification codes.
//!
//! Every pass reports findings as [`Diagnostic`]s carrying a stable
//! rule ID (`SQS-…`, see `docs/ANALYSIS.md` for the catalog) and a
//! `file:line:col` anchor. A finding at a site that is genuinely fine
//! is silenced *in the source*, next to the code it excuses, with a
//! justification code:
//!
//! ```text
//! let g = self.lock_shard(lo); // analyze:allow(SQS-L01): lo < hi proven two lines up
//! ```
//!
//! The comment must name the exact rule and carry a non-empty reason;
//! it applies to findings on its own line or the line directly below
//! it. A malformed justification ([`RULE_BAD_JUSTIFICATION`]) or one
//! that silences nothing ([`RULE_UNUSED_JUSTIFICATION`]) is itself a
//! finding, so stale excuses cannot accumulate.

use std::fmt;

use crate::lexer::Token;

/// Rule ID: a justification comment that does not parse as
/// `analyze:allow(SQS-XXX): reason`.
pub const RULE_BAD_JUSTIFICATION: &str = "SQS-J01";
/// Rule ID: a justification comment that suppressed no finding.
pub const RULE_UNUSED_JUSTIFICATION: &str = "SQS-J02";

/// One static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`"SQS-P01"`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `token` in `file`.
    #[must_use]
    pub fn at(rule: &'static str, file: &str, token: &Token, message: String) -> Self {
        Self {
            rule,
            file: file.to_string(),
            line: token.line,
            col: token.col,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed `analyze:allow(...)` justification comment.
struct Justification {
    line: u32,
    col: u32,
    rule: Option<String>,
    has_reason: bool,
    used: bool,
}

const MARKER: &str = "analyze:allow(";

/// Applies the file's justification comments to its diagnostics:
/// removes suppressed findings, and appends findings for malformed or
/// unused justifications. `tokens` must be the lexed form of the file
/// the diagnostics refer to.
pub fn apply_justifications(file: &str, src: &str, tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut justs: Vec<Justification> = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let text = t.text(src);
        // Doc comments are rendered documentation, not suppression
        // sites — a rule explained (or exemplified) in a doc comment
        // must not silence anything. Justifications are plain `//` or
        // `/* */` comments only.
        if text.starts_with("///") || text.starts_with("//!") || text.starts_with("/**") {
            continue;
        }
        let Some(pos) = text.find(MARKER) else {
            continue;
        };
        let after = text.get(pos + MARKER.len()..).unwrap_or("");
        let rule = after
            .find(')')
            .map(|end| after.get(..end).unwrap_or("").trim().to_string());
        let has_reason = match (&rule, after.find(')')) {
            (Some(_), Some(end)) => {
                let tail = after.get(end + 1..).unwrap_or("").trim_start();
                tail.starts_with(':') && tail.get(1..).unwrap_or("").trim().len() >= 3
            }
            _ => false,
        };
        justs.push(Justification {
            line: t.line,
            col: t.col,
            rule: rule.filter(|r| r.starts_with("SQS-")),
            has_reason,
            used: false,
        });
    }
    if justs.is_empty() {
        return;
    }

    diags.retain(|d| {
        if d.file != file {
            return true;
        }
        for j in &mut justs {
            let (Some(rule), true) = (&j.rule, j.has_reason) else {
                continue;
            };
            // A justification covers its own line and the line below.
            if rule == d.rule && (j.line == d.line || j.line + 1 == d.line) {
                j.used = true;
                return false;
            }
        }
        true
    });

    for j in &justs {
        if j.rule.is_none() || !j.has_reason {
            diags.push(Diagnostic {
                rule: RULE_BAD_JUSTIFICATION,
                file: file.to_string(),
                line: j.line,
                col: j.col,
                message: format!(
                    "malformed justification — write `// {MARKER}SQS-XXX): reason` \
                     with the exact rule ID and a real reason"
                ),
            });
        } else if !j.used {
            diags.push(Diagnostic {
                rule: RULE_UNUSED_JUSTIFICATION,
                file: file.to_string(),
                line: j.line,
                col: j.col,
                message: format!(
                    "justification for {} suppresses nothing — the finding moved or was \
                     fixed; delete the comment",
                    j.rule.as_deref().unwrap_or("?")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: "f.rs".into(),
            line,
            col: 5,
            message: "m".into(),
        }
    }

    #[test]
    fn same_line_and_next_line_suppression() {
        let src = "// analyze:allow(SQS-P01): fixture needs it\nx.unwrap();\ny.unwrap(); // analyze:allow(SQS-P01): also fine here\n";
        let toks = lex(src);
        let mut diags = vec![diag("SQS-P01", 2), diag("SQS-P01", 3)];
        apply_justifications("f.rs", src, &toks, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let src = "// analyze:allow(SQS-L01): wrong rule\nx.unwrap();\n";
        let toks = lex(src);
        let mut diags = vec![diag("SQS-P01", 2)];
        apply_justifications("f.rs", src, &toks, &mut diags);
        // The P01 survives, and the L01 justification is now unused.
        assert!(diags.iter().any(|d| d.rule == "SQS-P01"));
        assert!(diags.iter().any(|d| d.rule == RULE_UNUSED_JUSTIFICATION));
    }

    #[test]
    fn missing_reason_is_malformed() {
        let src = "// analyze:allow(SQS-P01)\nx.unwrap();\n";
        let toks = lex(src);
        let mut diags = vec![diag("SQS-P01", 2)];
        apply_justifications("f.rs", src, &toks, &mut diags);
        assert!(diags.iter().any(|d| d.rule == "SQS-P01"), "not suppressed");
        assert!(diags.iter().any(|d| d.rule == RULE_BAD_JUSTIFICATION));
    }

    #[test]
    fn doc_comments_are_not_justifications() {
        let src = "/// like `// analyze:allow(SQS-P01): example in docs`\nfn f() {}\n";
        let toks = lex(src);
        let mut diags = vec![];
        apply_justifications("f.rs", src, &toks, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn display_is_clickable() {
        let d = diag("SQS-P01", 2);
        assert_eq!(d.to_string(), "f.rs:2:5: SQS-P01: m");
    }
}
