//! A lossless, dependency-free Rust token scanner.
//!
//! `cargo xtask check` used to lint sources with line-oriented string
//! matching, which cannot tell a `.unwrap()` *call* from the same
//! characters inside a string literal, a nested block comment, or a
//! doc example. This lexer produces the real token stream the passes
//! need, handling the parts of Rust's lexical grammar that defeat
//! greps:
//!
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`,
//!   `cr"…"`) and raw identifiers (`r#fn`);
//! * nested block comments (`/* /* … */ */`);
//! * char-literal vs lifetime disambiguation (`'a'` vs `'a`,
//!   `'\u{1F600}'` vs `'static`);
//! * byte/char/C-string prefixes (`b"…"`, `b'x'`, `c"…"`);
//! * `#[cfg(test)]` / `#[test]` region tracking, so passes can skip
//!   test-only code structurally instead of "everything below the
//!   first matching line".
//!
//! It is *lossless*: comments are tokens too (the suppression and
//! justification machinery reads them), and every token carries its
//! byte span plus `line:col` for diagnostics. It does not attempt to
//! be a full lexer — numeric literal suffixes and multi-character
//! operators are not distinguished — but it never loses sync on any
//! code `rustc` accepts, which is the property the passes rely on.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: every index below is produced by `char_indices` on the
// same string it indexes (always a char boundary), and line/col
// counters are bounded by file sizes; this module is on the
// `sqs-analyze` allow-audit allowlist.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without
    /// distinguishing them).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), fence apostrophe
    /// included in the span.
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A string literal of any flavor: plain, raw, byte, C, with any
    /// hash fence.
    StrLit,
    /// A numeric literal (integer or float, suffix included).
    NumLit,
    /// A single punctuation character (`.`, `(`, `<`, …). Multi-char
    /// operators appear as consecutive `Punct` tokens.
    Punct,
    /// A `//` comment, doc (`///`, `//!`) or plain, to end of line.
    LineComment,
    /// A `/* … */` comment, including arbitrarily nested ones.
    BlockComment,
}

/// One lexeme: kind, byte span, and 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The lexeme's kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from. Returns
    /// an empty string if the span does not belong to `src`.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is a comment (line or block).
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into its full token stream (whitespace dropped,
/// comments kept). Unterminated constructs (string, block comment) are
/// closed at end of input rather than reported — the passes analyze
/// code that already compiles.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col. Only called on ASCII
    /// or mid-char bytes; col counts bytes, which is fine for
    /// diagnostics.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.escaped_string();
                    self.emit(TokenKind::StrLit, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokenKind::NumLit, start, line, col);
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let kind = self.ident_or_prefixed_literal();
                    self.emit(kind, start, line, col);
                }
                _ if b >= 0x80 => {
                    // Non-ASCII outside strings/comments: Rust allows
                    // unicode identifiers; treat the whole char run as
                    // an ident to stay in sync.
                    while self
                        .peek(0)
                        .is_some_and(|c| c >= 0x80 || c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes a `/* … */` block comment with nesting.
    fn block_comment(&mut self) {
        self.bump_n(2); // "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break, // unterminated: close at EOF
            }
        }
    }

    /// Consumes a `"…"` string with `\` escapes (opening quote at
    /// `self.pos`).
    fn escaped_string(&mut self) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
    }

    /// Consumes a raw string starting at `r`/`br`/`cr` whose fence is
    /// `hashes` `#` characters. `self.pos` is at the first `#` or the
    /// quote.
    fn raw_string(&mut self, hashes: usize) {
        self.bump_n(hashes); // fence hashes
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut matched = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some(b'#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        self.bump_n(1 + hashes);
                        break;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
    }

    /// At a `'`: a char literal (`'x'`, `'\n'`, `'\u{…}'`) or a
    /// lifetime/label (`'a`, `'static`).
    fn char_or_lifetime(&mut self) -> TokenKind {
        // A quote directly followed by a backslash is always a char
        // literal escape.
        if self.peek(1) == Some(b'\\') {
            self.bump(); // '
            self.bump_n(2); // \x
                            // consume to the closing quote (handles '\u{10FFFF}')
            while self.peek(0).is_some_and(|c| c != b'\'') {
                self.bump();
            }
            self.bump(); // closing '
            return TokenKind::CharLit;
        }
        // Find the char after the quote and the byte after *that*
        // char: `'x'` closes immediately, a lifetime does not.
        let rest = &self.src[self.pos + 1..];
        let mut it = rest.char_indices();
        match it.next() {
            Some((_, c)) => {
                let after = self.pos + 1 + c.len_utf8();
                if self.bytes.get(after) == Some(&b'\'') {
                    // 'x' — a char literal (possibly multi-byte x).
                    self.bump(); // '
                    self.bump_n(c.len_utf8());
                    self.bump(); // closing '
                    TokenKind::CharLit
                } else {
                    // Lifetime or label: consume ident chars.
                    self.bump(); // '
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        self.bump();
                    }
                    TokenKind::Lifetime
                }
            }
            None => {
                self.bump();
                TokenKind::Punct // stray quote at EOF
            }
        }
    }

    /// Consumes a numeric literal, conservatively: digits, `_`,
    /// alphanumeric suffix chars, a `.` only when followed by a digit
    /// (so `0..n` stays three tokens), and a sign directly after an
    /// exponent `e`/`E`.
    fn number(&mut self) {
        let mut prev = 0u8;
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    prev = c;
                    self.bump();
                }
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    prev = b'.';
                    self.bump();
                }
                Some(c @ (b'+' | b'-'))
                    if (prev == b'e' || prev == b'E')
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    prev = c;
                    self.bump();
                }
                _ => break,
            }
        }
    }

    /// Consumes an identifier, or reinterprets the `r`/`b`/`c`/`br`/
    /// `cr` prefixes as the start of a (raw/byte/C) string literal or
    /// raw identifier.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let ident = &self.src[start..self.pos];
        let raw_capable = matches!(ident, "r" | "br" | "cr");
        let plain_string_prefix = matches!(ident, "b" | "c") || raw_capable;
        match self.peek(0) {
            // b"…"  c"…"  r"…"  br"…"  cr"…"
            Some(b'"') if plain_string_prefix => {
                if raw_capable {
                    self.raw_string(0);
                } else {
                    self.escaped_string();
                }
                TokenKind::StrLit
            }
            // r#"…"#  br##"…"##  — or a raw identifier r#keyword.
            Some(b'#') if raw_capable => {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.raw_string(hashes);
                    TokenKind::StrLit
                } else if ident == "r" && hashes == 1 {
                    // raw identifier: consume `#ident`
                    self.bump();
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        self.bump();
                    }
                    TokenKind::Ident
                } else {
                    TokenKind::Ident
                }
            }
            // b'x' — byte char literal.
            Some(b'\'') if ident == "b" => self.char_or_lifetime(),
            _ => TokenKind::Ident,
        }
    }
}

/// Marks which tokens live inside test-only code: the item following
/// `#[test]`, `#[cfg(test)]`, or any `#[cfg(…)]` whose predicate
/// mentions `test` without `not` (e.g. `#[cfg(any(test, feature =
/// "audit"))]` — code that only runs under test or the opt-in audit
/// feature is held to test-code rules).
///
/// The "item" is everything from the attribute to the next `;` at the
/// attribute's depth, or the matching `}` of the first block opened.
/// An *inner* `#![cfg(test)]` marks the rest of the file. This is a
/// structural improvement over the old grep rule ("everything below
/// the first `#[cfg(test)]` line"), which silently exempted real code
/// placed after a test module.
#[must_use]
pub fn test_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    // Indices of non-comment tokens, for structural scanning.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let text = |ci: usize| -> &str { tok(ci).text(src) };

    let mut ci = 0usize;
    while ci < code.len() {
        if text(ci) != "#" {
            ci += 1;
            continue;
        }
        let inner = ci + 1 < code.len() && text(ci + 1) == "!";
        let open = ci + if inner { 2 } else { 1 };
        if open >= code.len() || text(open) != "[" {
            ci += 1;
            continue;
        }
        // Find the matching `]` of the attribute.
        let mut depth = 0usize;
        let mut close = open;
        while close < code.len() {
            match text(close) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        if close >= code.len() {
            break;
        }
        let attr_words: Vec<&str> = (open + 1..close).map(text).collect();
        let is_test_attr = match attr_words.first() {
            Some(&"test") => attr_words.len() == 1,
            Some(&"cfg") => attr_words.contains(&"test") && !attr_words.contains(&"not"),
            _ => false,
        };
        if !is_test_attr {
            ci = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the enclosing scope (for our purposes,
            // the rest of the file) is test-only.
            for slot in mask.iter_mut().skip(code[ci]) {
                *slot = true;
            }
            return mask;
        }
        // Skip any further attributes on the same item.
        let mut after = close + 1;
        while after < code.len() && text(after) == "#" {
            let a_open = after + 1;
            if a_open >= code.len() || text(a_open) != "[" {
                break;
            }
            let mut d = 0usize;
            let mut j = a_open;
            while j < code.len() {
                match text(j) {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            after = j + 1;
        }
        // The item body: up to a `;` before any brace, or the
        // matching `}` of the first `{` opened.
        let mut j = after;
        let mut brace = 0usize;
        let mut end = code.len().saturating_sub(1);
        while j < code.len() {
            match text(j) {
                ";" if brace == 0 => {
                    end = j;
                    break;
                }
                "{" => brace += 1,
                "}" => {
                    brace = brace.saturating_sub(1);
                    if brace == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        // Mark every token (comments included) spanning the region.
        let from = tokens[code[ci]].start;
        let to = tokens[code[end.min(code.len() - 1)]].end;
        for (t, slot) in mask.iter_mut().enumerate() {
            if tokens[t].start >= from && tokens[t].end <= to {
                *slot = true;
            }
        }
        ci = end + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = ".unwrap() /* not a comment */";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains(".unwrap()")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::BlockComment));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r##\"quote \" and \"# inside\"##; x.lock()";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("inside")));
        // Lexer stays in sync: the lock call after the raw string is
        // still seen as real tokens.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "lock"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = c"c-str"; let c = br#"raw"#;"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 3, "{toks:?}");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("comment */"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) -> &'static str { x } '\\n'");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
        let lifes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn unicode_char_literal_stays_in_sync() {
        let toks = kinds("let c = '✓'; x.unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == "'✓'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1; r#type.lock()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "lock"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e-3; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3"]);
    }

    #[test]
    fn line_and_col_are_one_based() {
        let src = "fn f() {\n    x.lock();\n}";
        let toks = lex(src);
        let lock = toks
            .iter()
            .find(|t| t.text(src) == "lock")
            .expect("test invariant: lock token present");
        assert_eq!((lock.line, lock.col), (2, 7));
    }

    #[test]
    fn cfg_test_region_covers_only_the_item() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\n\
                   fn also_live() { c.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(src, &toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.text(src) == "unwrap")
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(
            unwraps,
            vec![false, true, false],
            "only the cfg(test) mod is masked — code after it is live"
        );
    }

    #[test]
    fn cfg_any_test_audit_counts_as_test() {
        let src =
            "#[cfg(any(test, feature = \"audit\"))]\nfn audit() { x.unwrap(); }\nfn live() {}";
        let toks = lex(src);
        let mask = test_mask(src, &toks);
        let unwrap_masked = toks
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.text(src) == "unwrap")
            .map(|(_, &m)| m);
        assert_eq!(unwrap_masked, Some(true));
        let live_masked = toks
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.text(src) == "live")
            .map(|(_, &m)| m);
        assert_eq!(live_masked, Some(false));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let toks = lex(src);
        let mask = test_mask(src, &toks);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn test_attribute_marks_the_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.expect(\"m\"); }";
        let toks = lex(src);
        let mask = test_mask(src, &toks);
        let expect_masked = toks
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.text(src) == "expect")
            .map(|(_, &m)| m);
        assert_eq!(expect_masked, Some(false));
        let unwrap_masked = toks
            .iter()
            .zip(&mask)
            .find(|(t, _)| t.text(src) == "unwrap")
            .map(|(_, &m)| m);
        assert_eq!(unwrap_masked, Some(true));
    }
}
