//! `sqs-analyze` — the workspace's in-repo static-analysis engine.
//!
//! `cargo xtask check` used to enforce the repo's source discipline
//! (no `.unwrap()`, `forbid(unsafe_code)` everywhere, the pedantic
//! allowlist) with line-oriented greps. Greps cannot tell a call from
//! a comment, and they cannot state *positive* obligations — "every
//! wire kind has a codec impl and a property test" is not a pattern
//! you can forbid. This crate replaces them with a real, dependency-
//! free analysis pipeline:
//!
//! * [`lexer`] — a lossless Rust token scanner (raw strings, nested
//!   block comments, char-vs-lifetime, structural `#[cfg(test)]`
//!   regions);
//! * [`workspace`] — member discovery from the root manifest's
//!   `members` globs and pre-lexed file loading;
//! * [`passes`] — the [`passes::Pass`] framework and the production
//!   rules: panic discipline (`SQS-P*`), the no-unsafe guarantee
//!   (`SQS-U*`), lock discipline (`SQS-L*`), the allow audit
//!   (`SQS-A*`), codec exhaustiveness (`SQS-C*`) and invariant-audit
//!   coverage (`SQS-I*`);
//! * [`diag`] — `file:line:col` diagnostics plus per-site
//!   justification codes (`// analyze:allow(SQS-XXX): reason`), where
//!   malformed or unused justifications are findings too (`SQS-J*`).
//!
//! The rule catalog lives in `docs/ANALYSIS.md`. Run the analyzer as
//! `cargo xtask analyze` (or as the `analyze` step of `cargo xtask
//! check`).

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod workspace;

use std::path::Path;

pub use diag::Diagnostic;
pub use passes::{default_passes, Pass};
pub use workspace::{AnalysisInput, SourceFile};

/// Runs a pass roster over `input`, applies the per-file justification
/// comments, and returns the surviving findings sorted by
/// file/line/col/rule. Fixture tests use this with custom rosters;
/// production callers use [`run`].
pub fn run_passes(roster: &[Box<dyn Pass>], input: &AnalysisInput) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pass in roster {
        pass.run(input, &mut diags);
    }
    for file in &input.files {
        diag::apply_justifications(&file.rel_path, &file.text, &file.tokens, &mut diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    diags
}

/// Runs the production roster ([`default_passes`]) over `input`.
#[must_use]
pub fn run(input: &AnalysisInput) -> Vec<Diagnostic> {
    run_passes(&default_passes(), input)
}

/// Loads the workspace rooted at `root` and analyzes it with the
/// production roster. This is what `cargo xtask analyze` calls.
pub fn analyze_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(run(&workspace::load_workspace(root)?))
}
