//! SQS-A01/SQS-A02/SQS-A03 — the `#[allow(…)]` audit.
//!
//! Silencing a lint is a reviewable decision, so every `allow`
//! attribute in first-party library code must carry an adjacent
//! justification comment (`// ^ audited: …` below the attribute is the
//! house style; any neighboring comment containing `audited:` or
//! `justification:` counts). On top of that, the *module-level*
//! pedantic exemption `#![allow(clippy::cast_possible_truncation,
//! clippy::indexing_slicing)]` is restricted to a curated allowlist of
//! modules whose index arithmetic is bounded by structural invariants
//! (each has a `CheckInvariants` impl enforcing them dynamically) —
//! adding a module means editing the list *and* annotating the file,
//! so the exemption shows up in review twice. Stale allowlist entries
//! are themselves findings, so the list cannot rot.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{Code, Pass};
use crate::workspace::{AnalysisInput, FileRole};

/// Rule ID: `allow` attribute without a justification comment.
pub const RULE_UNJUSTIFIED_ALLOW: &str = "SQS-A01";
/// Rule ID: module-level pedantic allow not on the curated allowlist.
pub const RULE_UNLISTED_MODULE_ALLOW: &str = "SQS-A02";
/// Rule ID: allowlist entry whose module no longer carries the allow.
pub const RULE_STALE_ALLOWLIST_ENTRY: &str = "SQS-A03";

/// Modules permitted the module-level pedantic allow. Kept here (not
/// in xtask) so the analyzer is the single owner of the policy.
pub const MODULE_ALLOWLIST: &[&str] = &[
    "crates/analyze/src/lexer.rs",
    "crates/core/src/biased.rs",
    "crates/core/src/buffers.rs",
    "crates/core/src/gk/adaptive.rs",
    "crates/core/src/gk/array.rs",
    "crates/core/src/gk/mod.rs",
    "crates/core/src/gk/theory.rs",
    "crates/core/src/mrl98.rs",
    "crates/core/src/mrl99.rs",
    "crates/core/src/qdigest.rs",
    "crates/core/src/random.rs",
    "crates/core/src/sampled.rs",
    "crates/core/src/sliding.rs",
    "crates/data/src/lidar.rs",
    "crates/data/src/mpcat.rs",
    "crates/data/src/synthetic.rs",
    "crates/data/src/turnstile.rs",
    "crates/harness/src/experiments/claims.rs",
    "crates/harness/src/experiments/fig4.rs",
    "crates/harness/src/experiments/fig9.rs",
    "crates/harness/src/plot.rs",
    "crates/sketch/src/countmin.rs",
    "crates/sketch/src/countsketch.rs",
    "crates/sketch/src/crprecis.rs",
    "crates/sketch/src/exactlevel.rs",
    "crates/sketch/src/subsetsum.rs",
    "crates/turnstile/src/dcm.rs",
    "crates/turnstile/src/dcs.rs",
    "crates/turnstile/src/dgm.rs",
    "crates/turnstile/src/dyadic.rs",
    "crates/turnstile/src/exact.rs",
    "crates/turnstile/src/post.rs",
    "crates/turnstile/src/rss.rs",
    "crates/util/src/exact.rs",
    "crates/util/src/hash.rs",
    "crates/util/src/ordkey.rs",
    "crates/util/src/rng.rs",
];

/// The lints whose module-level allow is allowlist-gated.
const PEDANTIC_LINTS: &[&str] = &["cast_possible_truncation", "indexing_slicing"];

/// The allow-audit pass. See the module docs.
pub struct AllowAudit {
    /// The curated module allowlist (overridable for fixture tests).
    pub allowlist: Vec<String>,
}

impl Default for AllowAudit {
    fn default() -> Self {
        Self {
            allowlist: MODULE_ALLOWLIST.iter().map(|s| (*s).to_string()).collect(),
        }
    }
}

impl Pass for AllowAudit {
    fn name(&self) -> &'static str {
        "allow-audit"
    }

    fn description(&self) -> &'static str {
        "every #[allow] carries a justification; module-level pedantic allows are allowlisted"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        let mut seen_module_allow: Vec<&str> = Vec::new();
        for file in &input.files {
            if file.role != FileRole::Library || file.is_shim {
                continue;
            }
            let code = Code::new(file);
            for ci in 0..code.len() {
                if code.text(ci) != "#" || code.is_test(ci) {
                    continue;
                }
                let inner = code.text(ci + 1) == "!";
                let open = ci + if inner { 2 } else { 1 };
                if code.text(open) != "[" || code.text(open + 1) != "allow" {
                    continue;
                }
                // Collect the lint names inside the attribute.
                let mut close = open;
                let mut depth = 0usize;
                let mut lints: Vec<&str> = Vec::new();
                while close < code.len() {
                    match code.text(close) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        t => {
                            if code.kind(close) == Some(TokenKind::Ident) && t != "allow" {
                                lints.push(code.text(close));
                            }
                        }
                    }
                    close += 1;
                }
                if !has_justification(&code, ci, close) {
                    diags.push(
                        code.diag(
                            RULE_UNJUSTIFIED_ALLOW,
                            open + 1,
                            "`#[allow(…)]` without a justification — add an adjacent \
                         `// ^ audited: <why this is sound>` comment"
                                .to_string(),
                        ),
                    );
                }
                if inner && lints.iter().any(|l| PEDANTIC_LINTS.contains(l)) {
                    match self.allowlist.iter().find(|e| **e == file.rel_path) {
                        Some(entry) => seen_module_allow.push(entry),
                        None => diags.push(
                            code.diag(
                                RULE_UNLISTED_MODULE_ALLOW,
                                open + 1,
                                "module-level pedantic allow, but the file is not on the \
                             analyzer's MODULE_ALLOWLIST — add it there too, so the \
                             exemption shows up in review twice"
                                    .to_string(),
                            ),
                        ),
                    }
                }
            }
        }
        for entry in &self.allowlist {
            if !seen_module_allow.iter().any(|s| s == entry) {
                let exists = input.files.iter().any(|f| f.rel_path == *entry);
                diags.push(Diagnostic {
                    rule: RULE_STALE_ALLOWLIST_ENTRY,
                    file: entry.clone(),
                    line: 1,
                    col: 1,
                    message: if exists {
                        "on the MODULE_ALLOWLIST but no longer carries the pedantic \
                         allow — remove the stale entry"
                            .to_string()
                    } else {
                        "on the MODULE_ALLOWLIST but the file does not exist — remove \
                         the stale entry"
                            .to_string()
                    },
                });
            }
        }
    }
}

/// Whether a comment containing `audited:` or `justification:` sits
/// adjacent to the attribute spanning code indices `ci..=close`: on
/// the attribute's first line, the line above it, or the line directly
/// below its last line.
fn has_justification(code: &Code<'_>, ci: usize, close: usize) -> bool {
    let file = code.file();
    let Some(first) = code.tok(ci) else {
        return false;
    };
    let last_line = code.tok(close).map_or(first.line, |t| t.line);
    file.tokens.iter().any(|t| {
        t.is_comment()
            && (t.line + 1 == first.line || t.line == first.line || t.line == last_line + 1)
            && {
                let text = t.text(&file.text);
                text.contains("audited:") || text.contains("justification:")
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run_with(src: &str, allowlist: &[&str]) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            "x/src/a.rs",
            src.to_string(),
            FileRole::Library,
            "x",
            false,
            false,
        );
        let input = AnalysisInput::from_files(vec![f]);
        let pass = AllowAudit {
            allowlist: allowlist.iter().map(|s| (*s).to_string()).collect(),
        };
        let mut diags = Vec::new();
        pass.run(&input, &mut diags);
        diags
    }

    #[test]
    fn unjustified_allow_fires() {
        let diags = run_with("#[allow(dead_code)]\nfn f() {}\n", &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_UNJUSTIFIED_ALLOW);
    }

    #[test]
    fn audited_comment_below_satisfies() {
        let src =
            "#[allow(dead_code)]\n// ^ audited: used via reflection in the harness\nfn f() {}\n";
        assert!(run_with(src, &[]).is_empty());
    }

    #[test]
    fn module_pedantic_allow_requires_listing() {
        let src = "#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]\n// ^ audited: bounded by invariants\nfn f() {}\n";
        let unlisted = run_with(src, &[]);
        assert_eq!(unlisted.len(), 1, "{unlisted:?}");
        assert_eq!(unlisted[0].rule, RULE_UNLISTED_MODULE_ALLOW);
        assert!(run_with(src, &["x/src/a.rs"]).is_empty());
    }

    #[test]
    fn stale_allowlist_entry_fires() {
        let diags = run_with("fn f() {}\n", &["x/src/a.rs"]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_STALE_ALLOWLIST_ENTRY);
    }

    #[test]
    fn non_pedantic_module_allow_needs_no_listing() {
        let src = "#![allow(missing_docs)]\n// ^ audited: generated module\nfn f() {}\n";
        assert!(run_with(src, &[]).is_empty(), "{:?}", run_with(src, &[]));
    }
}
