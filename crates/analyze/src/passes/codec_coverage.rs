//! SQS-C01/SQS-C02 — wire-codec exhaustiveness.
//!
//! The wire format's kind byte is an open enum: `sqs_core::codec`
//! declares one `KIND_*` constant per summary family, and each family
//! implements `WireCodec` with `WIRE_KIND` set to its constant. A new
//! kind constant that is never wired to an impl — or an impl without
//! both `encode_body` and `decode_body` — is a frame the service can
//! route but not serve; a codec type that never appears in the
//! round-trip/corruption property tests is a codec whose compatibility
//! is unproven. This pass closes the loop structurally: every declared
//! kind must have an impl with both arms (`SQS-C01`), and every
//! implementing type must be exercised by `tests/codec_props.rs`
//! (`SQS-C02`).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{trait_impls, Code, Pass};
use crate::workspace::{AnalysisInput, FileRole};

/// Rule ID: kind constant without a complete `WireCodec` impl.
pub const RULE_KIND_UNWIRED: &str = "SQS-C01";
/// Rule ID: codec type not exercised by the codec property tests.
pub const RULE_KIND_UNTESTED: &str = "SQS-C02";

/// The codec-exhaustiveness pass. See the module docs.
pub struct CodecCoverage {
    /// File declaring the `KIND_*` constants and the `WireCodec` trait.
    pub codec_file: String,
    /// The property-test file every codec type must appear in.
    pub test_file: String,
}

impl Default for CodecCoverage {
    fn default() -> Self {
        Self {
            codec_file: "crates/core/src/codec.rs".to_string(),
            test_file: "tests/codec_props.rs".to_string(),
        }
    }
}

/// A `WireCodec` impl found in the tree.
struct CodecImpl {
    type_name: String,
    wire_kind: Option<String>,
    has_encode: bool,
    has_decode: bool,
    file: String,
    line: u32,
    col: u32,
}

impl Pass for CodecCoverage {
    fn name(&self) -> &'static str {
        "codec-coverage"
    }

    fn description(&self) -> &'static str {
        "every wire kind constant has a WireCodec impl with both arms and a property test"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        let Some(codec) = input.file(&self.codec_file) else {
            diags.push(missing_file(RULE_KIND_UNWIRED, &self.codec_file));
            return;
        };

        // 1. The declared kind constants: `pub const KIND_X: u8 = …`.
        let code = Code::new(codec);
        let mut kinds: Vec<(String, u32, u32)> = Vec::new();
        for ci in 0..code.len() {
            if code.text(ci) == "const"
                && code.text(ci + 1).starts_with("KIND_")
                && code.text(ci + 2) == ":"
                && code.text(ci + 3) == "u8"
            {
                let t = code.tok(ci + 1);
                kinds.push((
                    code.text(ci + 1).to_string(),
                    t.map_or(1, |t| t.line),
                    t.map_or(1, |t| t.col),
                ));
            }
        }

        // 2. Every `WireCodec` impl anywhere in library code.
        let mut impls: Vec<CodecImpl> = Vec::new();
        for file in &input.files {
            if file.role != FileRole::Library {
                continue;
            }
            let code = Code::new(file);
            for im in trait_impls(&code) {
                if im.trait_name.as_deref() != Some("WireCodec") {
                    continue;
                }
                let (open, close) = im.body;
                let mut wire_kind = None;
                let mut has_encode = false;
                let mut has_decode = false;
                for ci in open..=close {
                    match code.text(ci) {
                        "WIRE_KIND" if code.text(ci + 1) == ":" => {
                            // `const WIRE_KIND: u8 = <path::>KIND_X;` —
                            // take the last ident before the `;`.
                            let mut j = ci + 2;
                            let mut last = None;
                            while j <= close && code.text(j) != ";" {
                                if code.kind(j) == Some(TokenKind::Ident) {
                                    last = Some(code.text(j).to_string());
                                }
                                j += 1;
                            }
                            wire_kind = last;
                        }
                        "fn" if code.text(ci + 1) == "encode_body" => has_encode = true,
                        "fn" if code.text(ci + 1) == "decode_body" => has_decode = true,
                        _ => {}
                    }
                }
                impls.push(CodecImpl {
                    type_name: im.type_name,
                    wire_kind,
                    has_encode,
                    has_decode,
                    file: file.rel_path.clone(),
                    line: im.anchor.line,
                    col: im.anchor.col,
                });
            }
        }

        // 3. Every kind constant must be wired to a complete impl …
        for (kind, line, col) in &kinds {
            let Some(im) = impls.iter().find(|i| i.wire_kind.as_deref() == Some(kind)) else {
                diags.push(Diagnostic {
                    rule: RULE_KIND_UNWIRED,
                    file: codec.rel_path.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "`{kind}` has no `WireCodec` impl declaring `WIRE_KIND = {kind}` — \
                         the service can route this kind but not decode it"
                    ),
                });
                continue;
            };
            for (ok, arm) in [
                (im.has_encode, "encode_body"),
                (im.has_decode, "decode_body"),
            ] {
                if !ok {
                    diags.push(Diagnostic {
                        rule: RULE_KIND_UNWIRED,
                        file: im.file.clone(),
                        line: im.line,
                        col: im.col,
                        message: format!(
                            "`WireCodec for {}` (kind `{kind}`) is missing `fn {arm}`",
                            im.type_name
                        ),
                    });
                }
            }
        }

        // 4. … and its implementing type must hit the property tests.
        let Some(tests) = input.file(&self.test_file) else {
            diags.push(missing_file(RULE_KIND_UNTESTED, &self.test_file));
            return;
        };
        let test_code = Code::new(tests);
        for im in &impls {
            let exercised = (0..test_code.len()).any(|ci| {
                test_code.kind(ci) == Some(TokenKind::Ident) && test_code.text(ci) == im.type_name
            });
            if !exercised {
                diags.push(Diagnostic {
                    rule: RULE_KIND_UNTESTED,
                    file: im.file.clone(),
                    line: im.line,
                    col: im.col,
                    message: format!(
                        "codec type `{}` never appears in {} — add a round-trip and a \
                         corruption-rejection case",
                        im.type_name, self.test_file
                    ),
                });
            }
        }
    }
}

/// A diagnostic for a configured file that is absent from the input.
fn missing_file(rule: &'static str, path: &str) -> Diagnostic {
    Diagnostic {
        rule,
        file: path.to_string(),
        line: 1,
        col: 1,
        message: "file configured for the codec-coverage pass is missing".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn lib(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src.to_string(), FileRole::Library, "x", false, false)
    }

    fn test_file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src.to_string(), FileRole::Test, "x", false, false)
    }

    fn pass() -> CodecCoverage {
        CodecCoverage {
            codec_file: "core/src/codec.rs".to_string(),
            test_file: "tests/props.rs".to_string(),
        }
    }

    const CODEC: &str = "pub const KIND_A: u8 = 1;\npub const KIND_B: u8 = 2;\n";

    #[test]
    fn unwired_kind_and_untested_type_fire() {
        let input = AnalysisInput::from_files(vec![
            lib("core/src/codec.rs", CODEC),
            lib(
                "core/src/a.rs",
                "impl WireCodec for Alpha { const WIRE_KIND: u8 = KIND_A; fn encode_body(&self) {} fn decode_body() {} }",
            ),
            test_file("tests/props.rs", "fn t() { roundtrip::<Beta>(); }"),
        ]);
        let mut diags = Vec::new();
        pass().run(&input, &mut diags);
        // KIND_B unwired; Alpha untested.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.rule == RULE_KIND_UNWIRED && d.message.contains("KIND_B")));
        assert!(diags
            .iter()
            .any(|d| d.rule == RULE_KIND_UNTESTED && d.message.contains("Alpha")));
    }

    #[test]
    fn missing_arm_fires() {
        let input = AnalysisInput::from_files(vec![
            lib("core/src/codec.rs", "pub const KIND_A: u8 = 1;\n"),
            lib(
                "core/src/a.rs",
                "impl WireCodec for Alpha { const WIRE_KIND: u8 = KIND_A; fn encode_body(&self) {} }",
            ),
            test_file("tests/props.rs", "fn t() { roundtrip::<Alpha>(); }"),
        ]);
        let mut diags = Vec::new();
        pass().run(&input, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("decode_body"));
    }

    #[test]
    fn fully_wired_and_tested_is_clean() {
        let input = AnalysisInput::from_files(vec![
            lib("core/src/codec.rs", "pub const KIND_A: u8 = 1;\n"),
            lib(
                "core/src/a.rs",
                "impl WireCodec for Alpha { const WIRE_KIND: u8 = KIND_A; fn encode_body(&self) {} fn decode_body() {} }",
            ),
            test_file("tests/props.rs", "fn t() { roundtrip::<Alpha>(); corrupt::<Alpha>(); }"),
        ]);
        let mut diags = Vec::new();
        pass().run(&input, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
