//! SQS-U01/SQS-U02 — the no-unsafe guarantee.
//!
//! Every crate root in the workspace — libraries, binaries, the shims,
//! xtask, this crate — must carry `#![forbid(unsafe_code)]`, and no
//! scanned file may contain the `unsafe` keyword at all (the attribute
//! makes rustc reject it, but the token check also covers integration
//! tests, which sit outside the crate root's attribute reach).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{Code, Pass};

use crate::workspace::AnalysisInput;

/// Rule ID: crate root missing `#![forbid(unsafe_code)]`.
pub const RULE_MISSING_FORBID: &str = "SQS-U01";
/// Rule ID: `unsafe` keyword anywhere in a scanned file.
pub const RULE_UNSAFE_TOKEN: &str = "SQS-U02";

/// The forbid-unsafe pass. See the module docs.
pub struct ForbidUnsafe;

impl Pass for ForbidUnsafe {
    fn name(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn description(&self) -> &'static str {
        "every crate root forbids unsafe_code; no file contains the unsafe keyword"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        for file in &input.files {
            let code = Code::new(file);
            if file.is_crate_root && !has_forbid_unsafe(&code) {
                diags.push(Diagnostic {
                    rule: RULE_MISSING_FORBID,
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
            for ci in 0..code.len() {
                if code.kind(ci) == Some(TokenKind::Ident) && code.text(ci) == "unsafe" {
                    diags.push(code.diag(
                        RULE_UNSAFE_TOKEN,
                        ci,
                        "`unsafe` is banned workspace-wide — find a safe formulation".to_string(),
                    ));
                }
            }
        }
    }
}

/// Whether the file contains an inner `#![forbid(… unsafe_code …)]`
/// attribute.
fn has_forbid_unsafe(code: &Code<'_>) -> bool {
    for ci in 0..code.len() {
        if code.text(ci) != "forbid" || code.text(ci + 1) != "(" {
            continue;
        }
        // Must be the attribute form `#![forbid(`.
        let is_attr = ci >= 3
            && code.text(ci - 1) == "["
            && code.text(ci - 2) == "!"
            && code.text(ci - 3) == "#";
        if !is_attr {
            continue;
        }
        let mut depth = 0usize;
        let mut j = ci + 1;
        while j < code.len() {
            match code.text(j) {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                "unsafe_code" => return true,
                _ => {}
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileRole, SourceFile};

    fn run_on(src: &str, is_crate_root: bool) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            "x/src/lib.rs",
            src.to_string(),
            FileRole::Library,
            "x",
            false,
            is_crate_root,
        );
        let input = AnalysisInput::from_files(vec![f]);
        let mut diags = Vec::new();
        ForbidUnsafe.run(&input, &mut diags);
        diags
    }

    #[test]
    fn missing_attribute_on_crate_root_fires() {
        let diags = run_on("//! docs\npub fn f() {}\n", true);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_MISSING_FORBID);
    }

    #[test]
    fn attribute_satisfies_the_rule_and_non_roots_are_exempt() {
        assert!(run_on("#![forbid(unsafe_code)]\npub fn f() {}\n", true).is_empty());
        assert!(run_on("pub fn f() {}\n", false).is_empty());
    }

    #[test]
    fn combined_forbid_list_counts() {
        assert!(run_on("#![forbid(unsafe_code, missing_docs)]\n", true).is_empty());
    }

    #[test]
    fn unsafe_token_fires_even_in_tests_but_not_in_strings() {
        let src = "#![forbid(unsafe_code)]\nconst DOC: &str = \"unsafe\";\n#[cfg(test)]\nmod t { fn f() { let _x = unsafe { 1 }; } }\n";
        let diags = run_on(src, true);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_UNSAFE_TOKEN);
    }
}
