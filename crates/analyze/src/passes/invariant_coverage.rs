//! SQS-I01/SQS-I02 — invariant-audit coverage for mergeable summaries.
//!
//! Anything that can be merged can be *corrupted by a merge*, so the
//! repo's rule is: every `MergeableSummary` impl must also implement
//! `CheckInvariants` (`SQS-I01`) — the trait bound is deliberately not
//! baked into `MergeableSummary` itself, so this pass is the thing
//! that proves the pairing — and every mergeable type must be
//! exercised by the structural audit suite `tests/invariant_audit.rs`
//! (`SQS-I02`), which drives ingest/merge cycles and asserts the
//! invariants after each step.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{trait_impls, Code, Pass, TraitImpl};
use crate::workspace::{AnalysisInput, FileRole};

/// Rule ID: `MergeableSummary` impl without a `CheckInvariants` impl.
pub const RULE_UNAUDITABLE_MERGE: &str = "SQS-I01";
/// Rule ID: mergeable type not exercised by the invariant audit suite.
pub const RULE_UNAUDITED_MERGE: &str = "SQS-I02";

/// The invariant-coverage pass. See the module docs.
pub struct InvariantCoverage {
    /// The audit-test file every mergeable type must appear in.
    pub audit_test_file: String,
}

impl Default for InvariantCoverage {
    fn default() -> Self {
        Self {
            audit_test_file: "tests/invariant_audit.rs".to_string(),
        }
    }
}

impl Pass for InvariantCoverage {
    fn name(&self) -> &'static str {
        "invariant-coverage"
    }

    fn description(&self) -> &'static str {
        "every MergeableSummary impl has a CheckInvariants impl and an audit-suite test"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        // Gather (file, impl) pairs for both traits across the tree.
        let mut mergeable: Vec<(String, TraitImpl)> = Vec::new();
        let mut checked: Vec<String> = Vec::new();
        for file in &input.files {
            if file.role != FileRole::Library {
                continue;
            }
            let code = Code::new(file);
            for im in trait_impls(&code) {
                match im.trait_name.as_deref() {
                    Some("MergeableSummary") => mergeable.push((file.rel_path.clone(), im)),
                    Some("CheckInvariants") => checked.push(im.type_name),
                    _ => {}
                }
            }
        }

        let audit = input.file(&self.audit_test_file);
        if audit.is_none() {
            diags.push(Diagnostic {
                rule: RULE_UNAUDITED_MERGE,
                file: self.audit_test_file.clone(),
                line: 1,
                col: 1,
                message: "audit-test file configured for the invariant-coverage pass is missing"
                    .to_string(),
            });
        }

        for (file, im) in &mergeable {
            if !checked.iter().any(|t| t == &im.type_name) {
                diags.push(Diagnostic {
                    rule: RULE_UNAUDITABLE_MERGE,
                    file: file.clone(),
                    line: im.anchor.line,
                    col: im.anchor.col,
                    message: format!(
                        "`{}` implements MergeableSummary but not CheckInvariants — a \
                         merge bug in it is structurally undetectable",
                        im.type_name
                    ),
                });
            }
            if let Some(audit) = audit {
                let code = Code::new(audit);
                let exercised = (0..code.len()).any(|ci| {
                    code.kind(ci) == Some(TokenKind::Ident) && code.text(ci) == im.type_name
                });
                if !exercised {
                    diags.push(Diagnostic {
                        rule: RULE_UNAUDITED_MERGE,
                        file: file.clone(),
                        line: im.anchor.line,
                        col: im.anchor.col,
                        message: format!(
                            "mergeable type `{}` never appears in {} — drive it through \
                             the ingest/merge audit",
                            im.type_name, self.audit_test_file
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn lib(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src.to_string(), FileRole::Library, "x", false, false)
    }

    fn run_with(files: Vec<SourceFile>) -> Vec<Diagnostic> {
        let pass = InvariantCoverage {
            audit_test_file: "tests/audit.rs".to_string(),
        };
        let input = AnalysisInput::from_files(files);
        let mut diags = Vec::new();
        pass.run(&input, &mut diags);
        diags
    }

    fn audit_file(src: &str) -> SourceFile {
        SourceFile::new(
            "tests/audit.rs",
            src.to_string(),
            FileRole::Test,
            "x",
            false,
            false,
        )
    }

    #[test]
    fn missing_check_invariants_and_missing_audit_fire() {
        let diags = run_with(vec![
            lib("src/a.rs", "impl MergeableSummary<u64> for Sketch { }"),
            audit_file("fn t() { drive(Other::new()); }"),
        ]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.rule == RULE_UNAUDITABLE_MERGE));
        assert!(diags.iter().any(|d| d.rule == RULE_UNAUDITED_MERGE));
    }

    #[test]
    fn paired_and_audited_is_clean() {
        let diags = run_with(vec![
            lib(
                "src/a.rs",
                "impl MergeableSummary<u64> for Sketch { }\nimpl CheckInvariants for Sketch { }",
            ),
            audit_file("fn t() { drive(Sketch::new()); }"),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn generic_bounds_are_not_impls() {
        // `S: MergeableSummary<T>` in a generic parameter list must not
        // count as an impl of the trait.
        let diags = run_with(vec![
            lib(
                "src/engine.rs",
                "impl<T, S: MergeableSummary<T>> Engine<T, S> { fn go(&self) {} }",
            ),
            audit_file("fn t() {}"),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
