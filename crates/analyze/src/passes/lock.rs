//! SQS-L01/SQS-L02/SQS-L03 — lock discipline in the engine and
//! service layers.
//!
//! The concurrency design of `sqs-engine`/`sqs-service` rests on three
//! rules, previously enforced only by review:
//!
//! 1. **No nested acquisition** (`SQS-L01`): a `MutexGuard` must not
//!    be live when another `lock()`/`lock_shard()` is made — the
//!    engine's shard mutexes and the service's queue/tenant mutexes
//!    are leaves of the lock graph.
//! 2. **Shard order** (`SQS-L02`): the one sanctioned exception is
//!    holding two *shard* locks (merge paths), which is deadlock-free
//!    only if they are taken in ascending shard-index order. Nested
//!    `lock_shard` calls whose indices are not provably ascending
//!    (constant indices `lo < hi`) are flagged; a call site that is
//!    ascending by construction but not by constants carries an
//!    `analyze:allow(SQS-L02)` justification.
//! 3. **No I/O under a guard** (`SQS-L03`): socket/file calls
//!    (`write_all`, `read_exact`, `accept`, …) while a guard is live
//!    stall every thread contending for that mutex behind a peer's
//!    network latency.
//!
//! The pass runs a single forward scan per file, tracking brace depth,
//! `let`-bound guard names (live to end of scope or `drop(name)`), and
//! temporary guards (live to end of statement). It deliberately
//! over-approximates liveness — a false positive is silenced at the
//! site with a justification code, which is exactly the reviewable
//! artifact we want for every nested-lock site.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{Code, Pass};
use crate::workspace::{AnalysisInput, FileRole};

/// Rule ID: acquisition while another guard is live.
pub const RULE_NESTED_LOCK: &str = "SQS-L01";
/// Rule ID: shard locks not in ascending index order.
pub const RULE_SHARD_ORDER: &str = "SQS-L02";
/// Rule ID: I/O call while a guard is live.
pub const RULE_IO_UNDER_LOCK: &str = "SQS-L03";

/// Methods that reach the network or disk. Deliberately the explicit
/// blocking socket/file verbs used in this workspace, not every
/// `write`/`flush` (which are also Vec/fmt methods).
const IO_FNS: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "write_response",
    "read_request",
    "accept",
    "connect",
    "connect_timeout",
];

/// A live guard being tracked by the scan.
struct Guard {
    /// Binding name (`Some` for `let g = ….lock()`), `None` for a
    /// temporary that dies at the end of its statement.
    name: Option<String>,
    /// Brace depth at the acquisition site; the guard dies when the
    /// scan leaves this depth.
    depth: usize,
    /// Constant shard index for `lock_shard(<int literal>)` calls.
    shard_index: Option<u64>,
    /// Whether this came from `lock_shard` (shard mutex) rather than a
    /// generic `lock`.
    is_shard: bool,
    /// Source line of the acquisition, for diagnostics.
    line: u32,
}

/// The lock-discipline pass. See the module docs.
pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "no nested lock acquisition (shard locks only in ascending order), no I/O under a guard"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        for file in &input.files {
            if file.role != FileRole::Library || file.is_shim {
                continue;
            }
            scan_file(&Code::new(file), diags);
        }
    }
}

/// Whether the ident at `ci` is a lock acquisition call: `lock(` or
/// `lock_shard(` preceded by `.` (a method call, not a definition).
fn is_acquisition(code: &Code<'_>, ci: usize) -> bool {
    if code.kind(ci) != Some(TokenKind::Ident) {
        return false;
    }
    let name = code.text(ci);
    (name == "lock" || name == "lock_shard")
        && code.text(ci + 1) == "("
        && ci > 0
        && code.text(ci - 1) == "."
}

/// The constant argument of `name(<int literal>)`, if the call has
/// exactly one integer-literal argument. `open` is the `(`.
fn const_arg(code: &Code<'_>, open: usize) -> Option<u64> {
    if code.kind(open + 1) == Some(TokenKind::NumLit) && code.text(open + 2) == ")" {
        code.text(open + 1).replace('_', "").parse().ok()
    } else {
        None
    }
}

/// Code index of the `)` matching the `(` at `open` (the code length
/// when unbalanced — callers treat that as "end of file").
fn matching_paren(code: &Code<'_>, open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        match code.text(j) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Chained methods after `lock()` whose result still owns the guard
/// (`lock().expect(…)`, `lock().ok()`, `lock().unwrap_or_else(…)`).
const GUARD_PRESERVING: &[&str] = &[
    "expect",
    "unwrap",
    "unwrap_or_else",
    "ok",
    "map_err",
    "and_then",
];

/// Whether the method chain following the lock call (whose argument
/// list opens at `open`) consumes the guard — e.g. `.clone()`,
/// `.len()` — so the guard is a temporary dying at the end of the
/// statement, and the `let` binding (if any) does not hold it.
fn chain_consumes_guard(code: &Code<'_>, open: usize) -> bool {
    let mut j = matching_paren(code, open) + 1;
    while code.text(j) == "." && code.kind(j + 1) == Some(TokenKind::Ident) {
        if !GUARD_PRESERVING.contains(&code.text(j + 1)) {
            return true;
        }
        if code.text(j + 2) == "(" {
            j = matching_paren(code, j + 2) + 1;
        } else {
            j += 2;
        }
    }
    false
}

/// Single forward scan of one file.
fn scan_file(code: &Code<'_>, diags: &mut Vec<Diagnostic>) {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    // The binding name of the innermost `let` whose initializer the
    // scan is currently inside, with the depth of the `let` itself.
    let mut pending_let: Option<(String, usize)> = None;

    for ci in 0..code.len() {
        if code.is_test(ci) {
            continue;
        }
        match code.text(ci) {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            ";" => {
                // End of statement: temporaries at this depth die, and
                // a pending `let` at this depth is fully bound.
                guards.retain(|g| g.name.is_some() || g.depth != depth);
                if pending_let.as_ref().is_some_and(|(_, d)| *d == depth) {
                    pending_let = None;
                }
            }
            "let" => {
                let name_ci = if code.text(ci + 1) == "mut" {
                    ci + 2
                } else {
                    ci + 1
                };
                if code.kind(name_ci) == Some(TokenKind::Ident) {
                    pending_let = Some((code.text(name_ci).to_string(), depth));
                }
            }
            "drop" if code.text(ci + 1) == "(" => {
                let dropped = code.text(ci + 2);
                if code.text(ci + 3) == ")" {
                    guards.retain(|g| g.name.as_deref() != Some(dropped));
                }
            }
            _ => {
                if is_acquisition(code, ci) {
                    let is_shard = code.text(ci) == "lock_shard";
                    let shard_index = const_arg(code, ci + 1);
                    report_nested(code, ci, &guards, is_shard, shard_index, diags);
                    let name = if chain_consumes_guard(code, ci + 1) {
                        None // `lock().clone()` etc: the binding is not a guard
                    } else {
                        pending_let
                            .as_ref()
                            .filter(|(_, d)| *d == depth)
                            .map(|(n, _)| n.clone())
                    };
                    guards.push(Guard {
                        name,
                        depth,
                        shard_index,
                        is_shard,
                        line: code.tok(ci).map_or(0, |t| t.line),
                    });
                } else if code.kind(ci) == Some(TokenKind::Ident)
                    && IO_FNS.contains(&code.text(ci))
                    && code.text(ci + 1) == "("
                    && !guards.is_empty()
                {
                    let held: Vec<String> = guards.iter().map(describe).collect();
                    diags.push(code.diag(
                        RULE_IO_UNDER_LOCK,
                        ci,
                        format!(
                            "I/O call `{}` while holding {} — copy the data out, drop \
                             the guard, then do I/O",
                            code.text(ci),
                            held.join(", "),
                        ),
                    ));
                }
            }
        }
    }
}

/// Reports SQS-L01/SQS-L02 for an acquisition at `ci` given the
/// currently live guards.
fn report_nested(
    code: &Code<'_>,
    ci: usize,
    guards: &[Guard],
    new_is_shard: bool,
    new_index: Option<u64>,
    diags: &mut Vec<Diagnostic>,
) {
    for g in guards {
        if g.is_shard && new_is_shard {
            // Shard-over-shard is legal only in ascending constant
            // order; anything else needs a justification.
            let ascending = matches!((g.shard_index, new_index), (Some(a), Some(b)) if a < b);
            if !ascending {
                diags.push(code.diag(
                    RULE_SHARD_ORDER,
                    ci,
                    format!(
                        "second shard lock while the shard guard from line {} is live — \
                         shard locks must be taken in ascending index order (and \
                         provably so, or carry a justification)",
                        g.line
                    ),
                ));
            }
        } else {
            diags.push(code.diag(
                RULE_NESTED_LOCK,
                ci,
                format!(
                    "lock acquisition while {} is live — engine/service mutexes are \
                     lock-graph leaves; drop the guard first",
                    describe(g)
                ),
            ));
        }
    }
}

/// Human description of a live guard for messages.
fn describe(g: &Guard) -> String {
    let what = if g.is_shard { "shard guard" } else { "guard" };
    match &g.name {
        Some(n) => format!("{what} `{n}` (line {})", g.line),
        None => format!("a temporary {what} (line {})", g.line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            "x/src/a.rs",
            src.to_string(),
            FileRole::Library,
            "x",
            false,
            false,
        );
        let input = AnalysisInput::from_files(vec![f]);
        let mut diags = Vec::new();
        LockDiscipline.run(&input, &mut diags);
        diags
    }

    #[test]
    fn nested_lock_fires() {
        let src = "fn f(&self) { let a = self.q.lock(); let b = self.tenants.lock(); }";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_NESTED_LOCK);
    }

    #[test]
    fn sequential_scopes_are_fine() {
        let src = "fn f(&self) { { let a = self.q.lock(); use_it(a); } let b = self.t.lock(); }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn drop_releases_a_named_guard() {
        let src = "fn f(&self) { let a = self.q.lock(); drop(a); let b = self.t.lock(); }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn temporary_dies_at_end_of_statement() {
        let src = "fn f(&self) { let n = self.q.lock().len(); let b = self.t.lock(); }";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn shard_order_ascending_is_legal_descending_is_not() {
        let asc = "fn m(&self) { let lo = self.lock_shard(0); let hi = self.lock_shard(1); }";
        assert!(run_on(asc).is_empty(), "{:?}", run_on(asc));
        let desc = "fn m(&self) { let hi = self.lock_shard(1); let lo = self.lock_shard(0); }";
        let diags = run_on(desc);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_SHARD_ORDER);
    }

    #[test]
    fn shard_then_generic_lock_is_nested() {
        let src = "fn m(&self) { let g = self.lock_shard(0); let q = self.queue.lock(); }";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_NESTED_LOCK);
    }

    #[test]
    fn guard_preserving_chain_keeps_the_binding_a_guard() {
        let src = "fn f(&self) { let g = self.q.lock().unwrap_or_else(PoisonError::into_inner); let b = self.t.lock(); }";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_NESTED_LOCK);
    }

    #[test]
    fn consumed_chain_inside_closure_is_a_statement_temporary() {
        let src = "fn snap(&self) { let parts: Vec<S> = (0..n).map(|i| self.lock_shard(i).clone()).collect(); let g = self.t.lock(); }";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn io_under_guard_fires() {
        let src = "fn f(&self, s: &mut TcpStream) { let g = self.q.lock(); s.write_all(&g); }";
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_IO_UNDER_LOCK);
    }

    #[test]
    fn io_after_scope_close_is_fine() {
        let src = "fn f(&self, s: &mut S) { let d = { let g = self.q.lock(); g.clone() }; s.write_all(&d); }";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn condvar_wait_is_not_an_acquisition() {
        let src = "fn pop(&self) { let mut q = self.m.lock(); q = self.cv.wait(q); finish(q); }";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn fn_named_lock_definition_is_not_an_acquisition() {
        let src = "impl Q { fn lock(&self) -> Guard { self.inner.lock() } }";
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)] mod t { fn f(e: &E) { let a = e.lock_shard(1); let b = e.lock_shard(0); } }";
        assert!(run_on(src).is_empty());
    }
}
