//! The pass framework: a [`Pass`] trait, the production roster, and
//! the shared token-scanning helpers passes build on.
//!
//! Passes are deliberately dumb: each one scans the pre-lexed token
//! streams in [`AnalysisInput`] and appends [`Diagnostic`]s. There is
//! no AST — the rules this repo needs (panic discipline, lock
//! ordering, attribute audits, coverage proofs) are all expressible
//! over tokens plus the light structure recovered here ([`Code`] for
//! comment-free scanning, [`trait_impls`] for `impl` blocks), and
//! staying at token level keeps the analyzer dependency-free and fast
//! enough to run on every `cargo xtask check`.

pub mod allow_audit;
pub mod codec_coverage;
pub mod forbid_unsafe;
pub mod invariant_coverage;
pub mod lock;
pub mod panic;

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{AnalysisInput, SourceFile};

/// One analysis pass over the whole workspace.
pub trait Pass {
    /// Short stable name (`"panic-discipline"`), used in reports.
    fn name(&self) -> &'static str;
    /// One-line description of what the pass proves.
    fn description(&self) -> &'static str;
    /// Scans `input` and appends findings to `diags`.
    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>);
}

/// The production roster, in report order. Fixture tests build custom
/// rosters (or reconfigure the coverage passes) instead.
#[must_use]
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic::PanicDiscipline),
        Box::new(forbid_unsafe::ForbidUnsafe),
        Box::new(lock::LockDiscipline),
        Box::new(allow_audit::AllowAudit::default()),
        Box::new(codec_coverage::CodecCoverage::default()),
        Box::new(invariant_coverage::InvariantCoverage::default()),
    ]
}

/// A comment-free, bounds-checked view over one file's token stream —
/// the scanning surface the passes share. Indices into a `Code` are
/// *code indices* (comments skipped); out-of-range access yields
/// `None`/`""` rather than panicking, so passes can look ahead freely.
pub struct Code<'a> {
    file: &'a SourceFile,
    idx: Vec<usize>,
}

impl<'a> Code<'a> {
    /// Builds the view for `file`.
    #[must_use]
    pub fn new(file: &'a SourceFile) -> Self {
        let idx = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        Self { file, idx }
    }

    /// The underlying file.
    #[must_use]
    pub fn file(&self) -> &'a SourceFile {
        self.file
    }

    /// Number of code (non-comment) tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the file has no code tokens at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// The token at code index `ci`, if in range.
    #[must_use]
    pub fn tok(&self, ci: usize) -> Option<&'a Token> {
        self.idx.get(ci).and_then(|&i| self.file.tokens.get(i))
    }

    /// The token's text at code index `ci` (empty when out of range).
    #[must_use]
    pub fn text(&self, ci: usize) -> &'a str {
        self.tok(ci).map_or("", |t| t.text(&self.file.text))
    }

    /// The token's kind at code index `ci`.
    #[must_use]
    pub fn kind(&self, ci: usize) -> Option<TokenKind> {
        self.tok(ci).map(|t| t.kind)
    }

    /// Whether the token at code index `ci` is inside a test-only
    /// region (`#[test]`, `#[cfg(test)]`, …).
    #[must_use]
    pub fn is_test(&self, ci: usize) -> bool {
        self.idx
            .get(ci)
            .and_then(|&i| self.file.test_mask.get(i))
            .copied()
            .unwrap_or(false)
    }

    /// Whether the `>` at code index `ci` is the tail of a `->` arrow
    /// (the two punct tokens are byte-adjacent) rather than a closing
    /// angle bracket.
    #[must_use]
    pub fn is_arrow_tail(&self, ci: usize) -> bool {
        if self.text(ci) != ">" {
            return false;
        }
        let Some(prev) = ci.checked_sub(1).and_then(|p| self.tok(p)) else {
            return false;
        };
        let Some(cur) = self.tok(ci) else {
            return false;
        };
        prev.text(&self.file.text) == "-" && prev.end == cur.start
    }

    /// Builds a diagnostic anchored at code index `ci` (clamped to the
    /// last token when out of range; line 1 on an empty file).
    #[must_use]
    pub fn diag(&self, rule: &'static str, ci: usize, message: String) -> Diagnostic {
        let anchor = self
            .tok(ci)
            .or_else(|| self.len().checked_sub(1).and_then(|last| self.tok(last)));
        match anchor {
            Some(t) => Diagnostic::at(rule, &self.file.rel_path, t, message),
            None => Diagnostic {
                rule,
                file: self.file.rel_path.clone(),
                line: 1,
                col: 1,
                message,
            },
        }
    }
}

/// One `impl` block recovered from a file's token stream.
#[derive(Debug, Clone)]
pub struct TraitImpl {
    /// Final path segment of the implemented trait (`"WireCodec"`),
    /// `None` for inherent impls (and for `impl Trait` in type
    /// position, which this scanner does not distinguish).
    pub trait_name: Option<String>,
    /// Final path segment of the implementing type (`"QDigest"`).
    pub type_name: String,
    /// Code-index range of the body: the `{` and its matching `}`,
    /// both inclusive.
    pub body: (usize, usize),
    /// The `impl` keyword's token, for anchoring diagnostics.
    pub anchor: Token,
}

/// Recovers the `impl` blocks of `code`: generic parameter lists are
/// skipped (including `Fn(..) -> X` bounds, whose `->` must not close
/// an angle bracket), trait and type names are the last path segment
/// seen at angle-depth zero, and nested impls inside a body are not
/// re-scanned. This is exactly enough structure for the coverage
/// passes — not a parser.
#[must_use]
pub fn trait_impls(code: &Code<'_>) -> Vec<TraitImpl> {
    let mut out = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        if code.text(ci) != "impl" || code.kind(ci) != Some(TokenKind::Ident) {
            ci += 1;
            continue;
        }
        let Some(anchor) = code.tok(ci).copied() else {
            break;
        };
        let mut j = ci + 1;
        // Skip the generic parameter list `<…>`.
        if code.text(j) == "<" {
            let mut depth = 0usize;
            while j < code.len() {
                match code.text(j) {
                    "<" => depth += 1,
                    ">" if !code.is_arrow_tail(j) => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Path (and optional `for Type`) up to the body or a `where`
        // clause.
        let mut angle = 0usize;
        let mut names: Vec<String> = Vec::new();
        let mut before_for: Option<Vec<String>> = None;
        while j < code.len() {
            let t = code.text(j);
            match t {
                "<" => angle += 1,
                ">" if !code.is_arrow_tail(j) => angle = angle.saturating_sub(1),
                "for" if angle == 0 => before_for = Some(std::mem::take(&mut names)),
                "where" | "{" | ";" if angle == 0 => break,
                _ => {
                    if angle == 0 && code.kind(j) == Some(TokenKind::Ident) {
                        names.push(t.to_string());
                    }
                }
            }
            j += 1;
        }
        // Skip a `where` clause (no braces can appear inside one).
        while j < code.len() && code.text(j) != "{" && code.text(j) != ";" {
            j += 1;
        }
        if code.text(j) != "{" {
            ci = j + 1;
            continue;
        }
        let open = j;
        let mut brace = 0usize;
        while j < code.len() {
            match code.text(j) {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let close = j.min(code.len().saturating_sub(1));
        let (trait_name, type_names) = match before_for {
            Some(tn) => (tn.last().cloned(), names),
            None => (None, names),
        };
        if let Some(type_name) = type_names.last() {
            out.push(TraitImpl {
                trait_name,
                type_name: type_name.clone(),
                body: (open, close),
                anchor,
            });
        }
        ci = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileRole;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            "t.rs",
            src.to_string(),
            FileRole::Library,
            "t",
            false,
            false,
        )
    }

    #[test]
    fn trait_impls_recovers_names_and_bodies() {
        let src =
            "impl<T: Ord, F: Fn(u64) -> u64> WireCodec for QDigest<T> { fn encode_body() {} }\n\
                   impl QDigest<u64> { fn inherent() {} }\n\
                   impl traits::MergeableSummary<u64> for RandomSketch { }";
        let f = file(src);
        let code = Code::new(&f);
        let impls = trait_impls(&code);
        assert_eq!(impls.len(), 3, "{impls:?}");
        assert_eq!(impls[0].trait_name.as_deref(), Some("WireCodec"));
        assert_eq!(impls[0].type_name, "QDigest");
        assert_eq!(impls[1].trait_name, None);
        assert_eq!(impls[1].type_name, "QDigest");
        assert_eq!(impls[2].trait_name.as_deref(), Some("MergeableSummary"));
        assert_eq!(impls[2].type_name, "RandomSketch");
        // Body range covers the methods.
        let (open, close) = impls[0].body;
        let body_text: Vec<&str> = (open..=close).map(|ci| code.text(ci)).collect();
        assert!(body_text.contains(&"encode_body"));
    }

    #[test]
    fn impl_trait_in_return_position_is_not_a_trait_impl() {
        let src = "fn f() -> impl Iterator<Item = u64> { std::iter::empty() }";
        let f = file(src);
        let code = Code::new(&f);
        let impls = trait_impls(&code);
        assert!(impls.iter().all(|i| i.trait_name.is_none()), "{impls:?}");
    }

    #[test]
    fn arrow_tail_is_not_a_closing_angle() {
        let f = file("let f: fn(u64) -> u64 = id; x < y");
        let code = Code::new(&f);
        let arrow = (0..code.len()).filter(|&ci| code.is_arrow_tail(ci)).count();
        assert_eq!(arrow, 1);
    }
}
