//! SQS-P01/SQS-P02 — panic discipline in library code.
//!
//! `.unwrap()` is forbidden outright in non-test, first-party library
//! code, and `.expect("…")` must name an invariant (the message has to
//! contain the word `invariant`, mirroring the
//! `sqs_util::audit::InvariantViolation` discipline: a panic is only
//! acceptable when it reports a *broken structural invariant*, never
//! an "I didn't feel like handling this" shortcut). The old grep
//! version of this rule could not tell a call from the same characters
//! inside a string, comment, or doc example, and exempted everything
//! below the first `#[cfg(test)]` line; this pass works on real tokens
//! and structural test regions.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::passes::{Code, Pass};
use crate::workspace::{AnalysisInput, FileRole};

/// Rule ID: `.unwrap()` in non-test library code.
pub const RULE_UNWRAP: &str = "SQS-P01";
/// Rule ID: `.expect(…)` whose message does not name an invariant.
pub const RULE_EXPECT: &str = "SQS-P02";

/// The panic-discipline pass. See the module docs.
pub struct PanicDiscipline;

impl Pass for PanicDiscipline {
    fn name(&self) -> &'static str {
        "panic-discipline"
    }

    fn description(&self) -> &'static str {
        "no .unwrap() in library code; .expect() messages must name an invariant"
    }

    fn run(&self, input: &AnalysisInput, diags: &mut Vec<Diagnostic>) {
        for file in &input.files {
            if file.role != FileRole::Library || file.is_shim {
                continue;
            }
            let code = Code::new(file);
            for ci in 0..code.len() {
                if code.is_test(ci) || code.text(ci) != "." {
                    continue;
                }
                let callee = code.text(ci + 1);
                if code.kind(ci + 1) != Some(TokenKind::Ident) || code.text(ci + 2) != "(" {
                    continue;
                }
                match callee {
                    "unwrap" => diags.push(
                        code.diag(
                            RULE_UNWRAP,
                            ci + 1,
                            "`.unwrap()` in library code — propagate the error, or use \
                         `.expect(\"… invariant: …\")` if this genuinely cannot fail"
                                .to_string(),
                        ),
                    ),
                    "expect" if !expect_message_names_invariant(&code, ci + 2) => diags.push(
                        code.diag(
                            RULE_EXPECT,
                            ci + 1,
                            "`.expect()` message must name the broken invariant \
                             (contain the word \"invariant\"), e.g. \
                             `expect(\"QDigest invariant: root covers universe\")`"
                                .to_string(),
                        ),
                    ),
                    _ => {}
                }
            }
        }
    }
}

/// Whether the argument list opening at code index `open` (the `(`)
/// contains a string literal naming an invariant.
fn expect_message_names_invariant(code: &Code<'_>, open: usize) -> bool {
    let mut depth = 0usize;
    let mut ci = open;
    while ci < code.len() {
        match code.text(ci) {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return false;
                }
            }
            _ => {
                if code.kind(ci) == Some(TokenKind::StrLit) && code.text(ci).contains("invariant") {
                    return true;
                }
            }
        }
        ci += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            "x/src/a.rs",
            src.to_string(),
            FileRole::Library,
            "x",
            false,
            false,
        );
        let input = AnalysisInput::from_files(vec![f]);
        let mut diags = Vec::new();
        PanicDiscipline.run(&input, &mut diags);
        diags
    }

    #[test]
    fn unwrap_call_fires_but_string_and_comment_do_not() {
        let src = r#"
fn f(x: Option<u32>) -> u32 {
    let msg = "docs say .unwrap() is fine"; // .unwrap() in a comment
    let _ = msg;
    x.unwrap()
}
"#;
        let diags = run_on(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE_UNWRAP);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(run_on("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
    }

    #[test]
    fn expect_requires_invariant_wording() {
        let bad = run_on(r#"fn f(x: Option<u32>) -> u32 { x.expect("should work") }"#);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, RULE_EXPECT);
        let good =
            run_on(r#"fn f(x: Option<u32>) -> u32 { x.expect("engine invariant: set in new()") }"#);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn expect_message_via_format_is_scanned() {
        let good = run_on(
            r#"fn f(x: Option<u32>, i: usize) -> u32 { x.expect(&format!("shard {i} invariant: non-empty")) }"#,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        Some(1).expect("anything goes in tests");
    }
}
"#;
        assert!(run_on(src).is_empty());
    }
}
