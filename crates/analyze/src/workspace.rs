//! Workspace discovery: members, crate names, and the analyzed file
//! set.
//!
//! The member list is derived from the root `Cargo.toml`'s
//! `[workspace] members` globs — there is deliberately no hand-curated
//! crate list anywhere in the gate, so a newly added crate is covered
//! by `cargo xtask check`'s clippy step and every analyzer pass from
//! its first commit ([`workspace_members`] is also what xtask feeds to
//! clippy `-p`). Shim crates (`shims/*`, vendored stand-ins for
//! third-party dev-dependencies) are flagged so passes can exempt them
//! from first-party-only rules while still covering them with the
//! `forbid(unsafe_code)` check.

use std::path::{Path, PathBuf};

use crate::lexer::{self, Token};

/// One workspace member crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The `package.name` from the member's `Cargo.toml`.
    pub name: String,
    /// Workspace-relative directory (`"crates/engine"`).
    pub path: String,
    /// Whether this is a vendored shim (`shims/*`) rather than
    /// first-party code.
    pub is_shim: bool,
}

/// What kind of target a source file belongs to, which decides which
/// passes apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library or binary code (`src/**`) — full rule set.
    Library,
    /// Integration tests and benches (`tests/**`, `benches/**`) —
    /// exempt from the panic/lock lints, still scanned by the
    /// coverage passes.
    Test,
}

/// One source file, pre-lexed.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Full source text.
    pub text: String,
    /// The file's target kind.
    pub role: FileRole,
    /// Owning crate's package name (root package for `src/`+`tests/`).
    pub crate_name: String,
    /// Whether the owning crate is a vendored shim.
    pub is_shim: bool,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, or a
    /// `src/bin/*.rs`) and must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// The lexed token stream.
    pub tokens: Vec<Token>,
    /// Per-token flag: inside a `#[cfg(test)]`/`#[test]` region.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Builds (and lexes) a source file record.
    #[must_use]
    pub fn new(
        rel_path: &str,
        text: String,
        role: FileRole,
        crate_name: &str,
        is_shim: bool,
        is_crate_root: bool,
    ) -> Self {
        let tokens = lexer::lex(&text);
        let test_mask = lexer::test_mask(&text, &tokens);
        Self {
            rel_path: rel_path.to_string(),
            text,
            role,
            crate_name: crate_name.to_string(),
            is_shim,
            is_crate_root,
            tokens,
            test_mask,
        }
    }
}

/// The full input to an analysis run: every source file of every
/// workspace member (plus the root package), pre-lexed.
#[derive(Debug, Default)]
pub struct AnalysisInput {
    /// All files, in deterministic (sorted) order.
    pub files: Vec<SourceFile>,
}

impl AnalysisInput {
    /// An input built from in-memory files — the fixture path used by
    /// the analyzer's own tests.
    #[must_use]
    pub fn from_files(files: Vec<SourceFile>) -> Self {
        Self { files }
    }

    /// Looks a file up by its workspace-relative path.
    #[must_use]
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Reads and minimally parses a `Cargo.toml`, returning the
/// `package.name` if the file declares one.
fn package_name(manifest: &Path) -> Result<Option<String>, String> {
    let text = std::fs::read_to_string(manifest)
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    return Ok(Some(v.to_string()));
                }
            }
        }
    }
    Ok(None)
}

/// Expands the `[workspace] members` list of `<root>/Cargo.toml`
/// (including trailing-`*` globs like `"crates/*"`) into concrete
/// member records, appending the root package itself if the root
/// manifest also declares one.
pub fn workspace_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    // Pull the bracketed list following `members`; the workspace keeps
    // it on one line, but tolerate a wrapped list too.
    let after = manifest
        .split_once("members")
        .ok_or("Cargo.toml: no [workspace] members list")?
        .1;
    let open = after.find('[').ok_or("members: missing `[`")?;
    let close = after
        .get(open..)
        .and_then(|s| s.find(']').map(|i| open + i))
        .ok_or("members: missing `]`")?;
    let list = after.get(open + 1..close).unwrap_or("");
    let mut dirs: Vec<PathBuf> = Vec::new();
    for entry in list.split(',') {
        let pat = entry.trim().trim_matches('"');
        if pat.is_empty() {
            continue;
        }
        if let Some(prefix) = pat.strip_suffix("/*") {
            let dir = root.join(prefix);
            let iter =
                std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let mut expanded: Vec<PathBuf> = iter
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            expanded.sort();
            dirs.extend(expanded);
        } else {
            dirs.push(root.join(pat));
        }
    }
    let mut members = Vec::new();
    for dir in dirs {
        let Some(name) = package_name(&dir.join("Cargo.toml"))? else {
            continue;
        };
        let rel = dir
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let is_shim = rel.starts_with("shims/");
        members.push(Member {
            name,
            path: rel,
            is_shim,
        });
    }
    // The root manifest's own [package] (the umbrella crate).
    if let Some(name) = package_name(&manifest_path)? {
        members.push(Member {
            name,
            path: String::new(),
            is_shim: false,
        });
    }
    Ok(members)
}

/// Recursively collects `.rs` files under `dir` (sorted), skipping
/// `fixtures` subtrees — fixture corpora contain *deliberate*
/// violations for the analyzer's own tests.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let iter = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = iter.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            if entry.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Loads the analyzed file set of the workspace at `root`: for every
/// member, `src/**` (role [`FileRole::Library`]) plus `tests/**` and
/// `benches/**` (role [`FileRole::Test`]); shims contribute `src/`
/// only.
pub fn load_workspace(root: &Path) -> Result<AnalysisInput, String> {
    let members = workspace_members(root)?;
    let mut files = Vec::new();
    for m in &members {
        let base = if m.path.is_empty() {
            root.to_path_buf()
        } else {
            root.join(&m.path)
        };
        let mut sections: Vec<(&str, FileRole)> = vec![("src", FileRole::Library)];
        if !m.is_shim {
            sections.push(("tests", FileRole::Test));
            sections.push(("benches", FileRole::Test));
        }
        for (sub, role) in sections {
            let mut paths = Vec::new();
            collect_rs(&base.join(sub), &mut paths)?;
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&p)
                    .map_err(|e| format!("read {}: {e}", p.display()))?;
                let fname = p.file_name().map(|n| n.to_string_lossy().to_string());
                let in_bin_dir = p
                    .parent()
                    .and_then(Path::file_name)
                    .is_some_and(|n| n == "bin");
                let is_crate_root = role == FileRole::Library
                    && (matches!(fname.as_deref(), Some("lib.rs" | "main.rs")) || in_bin_dir);
                files.push(SourceFile::new(
                    &rel,
                    text,
                    role,
                    &m.name,
                    m.is_shim,
                    is_crate_root,
                ));
            }
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(AnalysisInput::from_files(files))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The analyzer's own workspace root (two levels above this
    /// crate's manifest dir).
    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("analyze invariant: crate sits two levels below the workspace root")
            .to_path_buf()
    }

    #[test]
    fn members_are_derived_not_hand_listed() {
        let members = workspace_members(&repo_root()).expect("workspace parses");
        let names: Vec<&str> = members.iter().map(|m| m.name.as_str()).collect();
        // Spot checks: every layer of the system, the root package,
        // xtask, this crate itself, and the shims (flagged).
        for expected in [
            "sqs-util",
            "sqs-core",
            "sqs-engine",
            "sqs-service",
            "sqs-store",
            "sqs-analyze",
            "xtask",
            "streaming-quantiles",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert!(members
            .iter()
            .any(|m| m.is_shim && m.name.contains("proptest")));
        assert!(members
            .iter()
            .all(|m| m.is_shim == m.path.starts_with("shims/")));
    }

    #[test]
    fn load_workspace_roles_and_roots() {
        let input = load_workspace(&repo_root()).expect("workspace loads");
        let engine = input
            .file("crates/engine/src/lib.rs")
            .expect("engine crate root present");
        assert!(engine.is_crate_root);
        assert_eq!(engine.role, FileRole::Library);
        assert_eq!(engine.crate_name, "sqs-engine");
        let stress = input
            .file("crates/engine/tests/stress.rs")
            .expect("engine stress tests present");
        assert_eq!(stress.role, FileRole::Test);
        // Fixture corpora are never part of the analyzed tree.
        assert!(input
            .files
            .iter()
            .all(|f| !f.rel_path.contains("/fixtures/")));
    }
}
