//! Allow-audit fixture: a justified but unlisted module-level pedantic
//! allow, plus an unjustified item-level allow.

#![allow(clippy::cast_possible_truncation)]
// ^ audited: fixture module — deliberately absent from the allowlist.

#[allow(clippy::too_many_lines)]
pub fn unjustified() {}
