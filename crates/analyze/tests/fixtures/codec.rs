//! Codec fixture: `KIND_A` fully wired and tested, `KIND_B` missing
//! its decode arm, `KIND_C` not wired to any impl at all.

pub const KIND_A: u8 = 1;
pub const KIND_B: u8 = 2;
pub const KIND_C: u8 = 3;

impl WireCodec for Alpha {
    const WIRE_KIND: u8 = KIND_A;

    fn encode_body(&mut self, out: &mut Vec<u8>) {
        out.push(1);
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Alpha)
    }
}

impl WireCodec for Beta {
    const WIRE_KIND: u8 = KIND_B;

    fn encode_body(&mut self, out: &mut Vec<u8>) {
        out.push(2);
    }
}
