//! Codec property-test fixture: exercises `Alpha` only.

#[test]
fn alpha_roundtrips() {
    let a = Alpha;
    let _ = a;
}
