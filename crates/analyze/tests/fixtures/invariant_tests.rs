//! Audit-suite fixture: drives `Covered` only.

#[test]
fn covered_is_driven() {
    let c = Covered;
    let _ = c;
}
