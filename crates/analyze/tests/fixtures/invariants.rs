//! Invariant-coverage fixture: `Covered` is audited, `Quiet` has the
//! impl but no audit-suite test, `Naked` lacks `CheckInvariants`
//! entirely.

impl MergeableSummary<u64> for Covered {
    fn merge_from(&mut self, other: Self) {}
}

impl CheckInvariants for Covered {
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }
}

impl MergeableSummary<u64> for Quiet {
    fn merge_from(&mut self, other: Self) {}
}

impl CheckInvariants for Quiet {
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }
}

impl MergeableSummary<u64> for Naked {
    fn merge_from(&mut self, other: Self) {}
}
