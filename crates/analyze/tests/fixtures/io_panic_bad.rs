//! Fixture: I/O error paths must propagate, not panic (the `sqs-store`
//! rule): the `unwrap` / bare `expect` on fallible I/O below are the
//! golden findings; `?`-propagation and invariant-expects are exempt.

use std::fs::File;
use std::io::{self, Read, Write};

pub fn bad_open(path: &str) -> File {
    File::open(path).unwrap()
}

pub fn bad_write(f: &mut File) {
    f.write_all(b"x").expect("disk never fails")
}

pub fn good_open(path: &str) -> io::Result<File> {
    File::open(path)
}

pub fn good_read(f: &mut File) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

pub fn good_expect(ready: Option<u8>) -> u8 {
    ready.expect("io invariant: caller checked readiness first")
}
