//! Justification fixture: suppression, unused, malformed.

pub fn suppressed(v: Option<u32>) -> u32 {
    // analyze:allow(SQS-P01): fixture demonstrates suppression.
    v.unwrap()
}

pub fn unused_justification() {
    // analyze:allow(SQS-P02): nothing on this or the next line fires.
}

pub fn malformed(v: Option<u32>) -> u32 {
    // analyze:allow(SQS-P01) reason lacks the leading colon
    v.unwrap()
}
