//! Lock-discipline fixture: a nested guard, descending shard locks,
//! ascending shard locks (the sanctioned exception), and I/O under a
//! live guard.

pub fn nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().expect("fixture invariant: unpoisoned");
    let gb = b.lock().expect("fixture invariant: unpoisoned");
    *ga + *gb
}

pub fn descending(e: &Engine) -> u32 {
    let hi = e.lock_shard(3);
    let lo = e.lock_shard(1);
    *hi + *lo
}

pub fn ascending_is_legal(e: &Engine) -> u32 {
    let lo = e.lock_shard(1);
    let hi = e.lock_shard(3);
    *lo + *hi
}

pub fn io_under_guard(m: &Mutex<Vec<u8>>, s: &mut TcpStream) {
    let g = m.lock().expect("fixture invariant: unpoisoned");
    s.write_all(&g).expect("fixture invariant: peer alive");
}
