//! Panic-discipline fixture: the golden test pins (rule, line).

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("value missing")
}

pub fn good_expect(v: Option<u32>) -> u32 {
    v.expect("fixture invariant: caller checked emptiness")
}

pub fn unwrap_or_is_not_unwrap(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
