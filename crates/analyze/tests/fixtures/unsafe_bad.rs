//! Forbid-unsafe fixture: a crate root with no `#![forbid(unsafe_code)]`
//! attribute and an unsafe block in a function body.

pub fn peek(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
