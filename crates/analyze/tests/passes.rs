//! Golden-diagnostic fixture tests: each pass runs over a known-bad
//! fixture source (under `tests/fixtures/`, which the workspace loader
//! deliberately skips) and must report exactly the expected
//! `(rule, line)` set — no more, no fewer. A final self-test analyzes
//! the production tree and requires it clean, so the fixtures are the
//! only place violations live.

use std::path::Path;

use sqs_analyze::diag::{RULE_BAD_JUSTIFICATION, RULE_UNUSED_JUSTIFICATION};
use sqs_analyze::passes::allow_audit::{
    AllowAudit, RULE_STALE_ALLOWLIST_ENTRY, RULE_UNJUSTIFIED_ALLOW, RULE_UNLISTED_MODULE_ALLOW,
};
use sqs_analyze::passes::codec_coverage::{CodecCoverage, RULE_KIND_UNTESTED, RULE_KIND_UNWIRED};
use sqs_analyze::passes::forbid_unsafe::{ForbidUnsafe, RULE_MISSING_FORBID, RULE_UNSAFE_TOKEN};
use sqs_analyze::passes::invariant_coverage::{
    InvariantCoverage, RULE_UNAUDITABLE_MERGE, RULE_UNAUDITED_MERGE,
};
use sqs_analyze::passes::lock::{
    LockDiscipline, RULE_IO_UNDER_LOCK, RULE_NESTED_LOCK, RULE_SHARD_ORDER,
};
use sqs_analyze::passes::panic::{PanicDiscipline, RULE_EXPECT, RULE_UNWRAP};
use sqs_analyze::workspace::FileRole;
use sqs_analyze::{run_passes, AnalysisInput, Diagnostic, Pass, SourceFile};

/// Wraps one fixture source as a library file of a synthetic crate.
fn lib_file(rel_path: &str, src: &str, is_crate_root: bool) -> SourceFile {
    SourceFile::new(
        rel_path,
        src.to_string(),
        FileRole::Library,
        "fx",
        false,
        is_crate_root,
    )
}

/// Wraps one fixture source as a test-suite file.
fn test_file(rel_path: &str, src: &str) -> SourceFile {
    SourceFile::new(
        rel_path,
        src.to_string(),
        FileRole::Test,
        "fx",
        false,
        false,
    )
}

/// Runs `pass` (plus justification processing) over `files` and
/// returns the findings as `(rule, line)` pairs in report order.
fn findings(pass: Box<dyn Pass>, files: Vec<SourceFile>) -> Vec<(&'static str, u32)> {
    let input = AnalysisInput::from_files(files);
    run_passes(&[pass], &input)
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn panic_fixture_yields_the_golden_diagnostics() {
    let fx = lib_file(
        "fx/src/panic_bad.rs",
        include_str!("fixtures/panic_bad.rs"),
        false,
    );
    assert_eq!(
        findings(Box::new(PanicDiscipline), vec![fx]),
        vec![(RULE_UNWRAP, 4), (RULE_EXPECT, 8)],
        "bad_unwrap and bad_expect only; good_expect, unwrap_or and \
         test code are exempt"
    );
}

#[test]
fn io_panic_fixture_yields_the_golden_diagnostics() {
    let fx = lib_file(
        "fx/src/io_panic_bad.rs",
        include_str!("fixtures/io_panic_bad.rs"),
        false,
    );
    assert_eq!(
        findings(Box::new(PanicDiscipline), vec![fx]),
        vec![(RULE_UNWRAP, 9), (RULE_EXPECT, 13)],
        "I/O results must propagate as errors (the sqs-store rule): \
         only the unwrap and the non-invariant expect are findings"
    );
}

#[test]
fn unsafe_fixture_yields_the_golden_diagnostics() {
    let fx = lib_file(
        "fx/src/lib.rs",
        include_str!("fixtures/unsafe_bad.rs"),
        true,
    );
    let got = findings(Box::new(ForbidUnsafe), vec![fx]);
    let rules: Vec<&str> = got.iter().map(|(r, _)| *r).collect();
    assert_eq!(rules, vec![RULE_MISSING_FORBID, RULE_UNSAFE_TOKEN]);
    assert!(
        got.iter().any(|&(r, l)| r == RULE_UNSAFE_TOKEN && l == 5),
        "the unsafe block is on line 5: {got:?}"
    );
}

#[test]
fn lock_fixture_yields_the_golden_diagnostics() {
    let fx = lib_file(
        "fx/src/lock_bad.rs",
        include_str!("fixtures/lock_bad.rs"),
        false,
    );
    assert_eq!(
        findings(Box::new(LockDiscipline), vec![fx]),
        vec![
            (RULE_NESTED_LOCK, 7),
            (RULE_SHARD_ORDER, 13),
            (RULE_IO_UNDER_LOCK, 25),
        ],
        "nested guard, descending shards, I/O under guard; the \
         ascending pair is legal"
    );
}

#[test]
fn allow_fixture_yields_the_golden_diagnostics() {
    let src = include_str!("fixtures/allow_bad.rs");
    let fx = lib_file("fx/src/allow_bad.rs", src, false);
    // Empty allowlist: the default one names production modules, which
    // would all be "stale" against a one-file fixture input.
    let pass = AllowAudit {
        allowlist: Vec::new(),
    };
    assert_eq!(
        findings(Box::new(pass), vec![fx]),
        vec![(RULE_UNLISTED_MODULE_ALLOW, 4), (RULE_UNJUSTIFIED_ALLOW, 7),],
        "the module allow is justified but unlisted; the item allow is \
         unjustified"
    );
}

#[test]
fn stale_allowlist_entry_is_reported() {
    let src = include_str!("fixtures/allow_bad.rs");
    let fx = lib_file("fx/src/allow_bad.rs", src, false);
    let pass = AllowAudit {
        allowlist: vec![
            "fx/src/allow_bad.rs".to_string(),
            "fx/src/ghost.rs".to_string(),
        ],
    };
    let got = findings(Box::new(pass), vec![fx]);
    assert!(
        got.iter().any(|&(r, _)| r == RULE_STALE_ALLOWLIST_ENTRY),
        "ghost.rs carries no allow and must be flagged stale: {got:?}"
    );
    assert!(
        !got.iter().any(|&(r, _)| r == RULE_UNLISTED_MODULE_ALLOW),
        "allow_bad.rs is on this allowlist: {got:?}"
    );
}

#[test]
fn justification_fixture_suppresses_and_reports() {
    let fx = lib_file(
        "fx/src/justified.rs",
        include_str!("fixtures/justified.rs"),
        false,
    );
    assert_eq!(
        findings(Box::new(PanicDiscipline), vec![fx]),
        vec![
            (RULE_UNUSED_JUSTIFICATION, 9),
            (RULE_BAD_JUSTIFICATION, 13),
            (RULE_UNWRAP, 14),
        ],
        "line 5's unwrap is suppressed; the unused and malformed \
         justifications are findings, and the malformed one suppresses \
         nothing"
    );
}

#[test]
fn codec_fixture_yields_the_golden_diagnostics() {
    let pass = CodecCoverage {
        codec_file: "fx/src/codec.rs".to_string(),
        test_file: "fx/tests/codec_tests.rs".to_string(),
    };
    let files = vec![
        lib_file("fx/src/codec.rs", include_str!("fixtures/codec.rs"), false),
        test_file(
            "fx/tests/codec_tests.rs",
            include_str!("fixtures/codec_tests.rs"),
        ),
    ];
    let got = findings(Box::new(pass), files);
    let unwired: Vec<u32> = got
        .iter()
        .filter(|&&(r, _)| r == RULE_KIND_UNWIRED)
        .map(|&(_, l)| l)
        .collect();
    let untested: Vec<u32> = got
        .iter()
        .filter(|&&(r, _)| r == RULE_KIND_UNTESTED)
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(got.len(), unwired.len() + untested.len(), "{got:?}");
    assert_eq!(
        unwired.len(),
        2,
        "Beta's missing decode arm and the unwired KIND_C: {got:?}"
    );
    assert_eq!(
        untested,
        vec![20],
        "Beta (impl at line 20) is untested: {got:?}"
    );
}

#[test]
fn invariant_fixture_yields_the_golden_diagnostics() {
    let pass = InvariantCoverage {
        audit_test_file: "fx/tests/invariant_tests.rs".to_string(),
    };
    let files = vec![
        lib_file(
            "fx/src/invariants.rs",
            include_str!("fixtures/invariants.rs"),
            false,
        ),
        test_file(
            "fx/tests/invariant_tests.rs",
            include_str!("fixtures/invariant_tests.rs"),
        ),
    ];
    let got = findings(Box::new(pass), files);
    assert!(
        got.iter()
            .any(|&(r, l)| r == RULE_UNAUDITABLE_MERGE && l == 25),
        "Naked (impl at line 25) lacks CheckInvariants: {got:?}"
    );
    assert!(
        got.iter().any(|&(r, _)| r == RULE_UNAUDITED_MERGE),
        "Quiet and/or Naked never appear in the audit suite: {got:?}"
    );
    assert!(
        !got.iter().any(|&(_, l)| l == 5),
        "Covered (impl at line 5) is fully covered: {got:?}"
    );
}

/// The production tree must be clean — every deliberate violation
/// lives in `tests/fixtures/`, which the loader skips.
#[test]
fn production_tree_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("test invariant: crate lives two levels below the workspace root");
    let diags = sqs_analyze::analyze_workspace(root).expect("workspace loads");
    let rendered: Vec<String> = diags.iter().map(Diagnostic::to_string).collect();
    assert!(
        diags.is_empty(),
        "production tree has findings:\n{}",
        rendered.join("\n")
    );
}
