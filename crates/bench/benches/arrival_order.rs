//! Figure 8's time panel as a Criterion group: random vs sorted vs
//! reversed arrival order (uniform values, u = 2^32). Sorted order is
//! the GK stress case — every insert is a new maximum.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_data::{Order, Uniform};
use sqs_harness::runner::CashAlgo;

const N: usize = 200_000;
const EPS: f64 = 1e-3;

fn bench(c: &mut Criterion) {
    let base: Vec<u64> = Uniform::new(32, 19).take(N).collect();
    let orders = [
        ("random", Order::Random),
        ("sorted", Order::Sorted),
        ("reversed", Order::Reversed),
    ];
    let mut group = c.benchmark_group("arrival_order");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N as u64));
    for (tag, order) in orders {
        let mut data = base.clone();
        order.apply(&mut data, 23);
        for algo in [CashAlgo::GkAdaptive, CashAlgo::GkArray, CashAlgo::Random] {
            group.bench_with_input(BenchmarkId::new(algo.name(), tag), &data, |b, data| {
                b.iter(|| {
                    let mut s = algo.build(EPS, 32, N as u64, 29);
                    s.extend_from_slice(data);
                    s.n()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
