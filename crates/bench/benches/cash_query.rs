//! Quantile-query latency of the cash-register summaries: the cost of
//! extracting the full φ-grid from a built summary (complements
//! Figure 5 — the paper measures update time; queries are the other
//! half of a production workload).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqs_bench::bench_stream;
use sqs_harness::runner::CashAlgo;

const N: usize = 200_000;
const EPS: f64 = 1e-3;

fn bench(c: &mut Criterion) {
    let data = bench_stream(N, 2);
    let mut group = c.benchmark_group("cash_query");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for algo in CashAlgo::HEADLINE {
        let mut s = algo.build(EPS, 24, N as u64, 11);
        s.extend_from_slice(&data);
        // Force any buffered state out so we time pure queries.
        let _ = s.quantile(0.5);
        group.bench_function(BenchmarkId::new(algo.name(), "grid_1k"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 1..1000 {
                    acc ^= s.quantile(i as f64 / 1000.0).unwrap();
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
