//! Update throughput of the cash-register summaries (the time axis of
//! Figures 5e/5f): elements/second at a permissive and a tight ε.
//!
//! Expected shape (paper §4.2.3): GKArray, Random and MRL99 stay fast
//! at tight ε because they only sort and merge; GKAdaptive and
//! FastQDigest fall off once their pointer structures outgrow cache.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_bench::bench_stream;
use sqs_harness::runner::CashAlgo;

const N: usize = 200_000;

fn bench(c: &mut Criterion) {
    let data = bench_stream(N, 1);
    let mut group = c.benchmark_group("cash_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N as u64));
    for eps in [1e-2, 1e-3] {
        for algo in CashAlgo::HEADLINE {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("eps={eps}")),
                &eps,
                |b, &eps| {
                    b.iter(|| {
                        let mut s = algo.build(eps, 24, N as u64, 7);
                        s.extend_from_slice(&data);
                        s.n()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
