//! Concurrent ingestion throughput of the sharded engine
//! (`sqs-engine`), swept over shard counts.
//!
//! Fixed total work (N elements split across `shards` producer
//! threads) so numbers are directly comparable down a column. On a
//! multi-core host throughput should scale near-linearly until shards
//! exceed cores — striped locks mean producers on different shards
//! never contend, and the 1024-element ingest buffers amortize what
//! little locking remains. On a single hardware thread the sweep stays
//! flat: it then measures sharding's *overhead* (routing + buffering +
//! extra merges), which must stay small. `results/engine_baseline.json`
//! (from `sqs-exp engine`) records the same grid with accuracy
//! columns.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_bench::bench_stream;
use sqs_core::random::RandomSketch;
use sqs_engine::ShardedEngine;

const N: usize = 200_000;
const EPS: f64 = 0.05;
const BATCH: usize = 1024;

fn bench(c: &mut Criterion) {
    let data = bench_stream(N, 11);
    let mut group = c.benchmark_group("engine_concurrent");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N as u64));
    for shards in [1usize, 2, 4, 8] {
        let chunks: Vec<&[u64]> = data.chunks(N.div_ceil(shards)).collect();
        group.bench_with_input(
            BenchmarkId::new("ingest", format!("shards={shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = ShardedEngine::new_with(shards, BATCH, |i| {
                        RandomSketch::new(EPS, i as u64)
                    });
                    std::thread::scope(|scope| {
                        for (t, chunk) in chunks.iter().enumerate() {
                            let engine = &engine;
                            scope.spawn(move || {
                                let mut h = engine.handle_for(t % shards);
                                h.insert_slice(chunk);
                            });
                        }
                    });
                    engine.n()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot", format!("shards={shards}")),
            &shards,
            |b, &shards| {
                let engine =
                    ShardedEngine::new_with(shards, BATCH, |i| RandomSketch::new(EPS, i as u64));
                for (t, chunk) in chunks.iter().enumerate() {
                    let mut h = engine.handle_for(t % shards);
                    h.insert_slice(chunk);
                }
                b.iter(|| {
                    let mut snap = engine.snapshot();
                    sqs_core::QuantileSummary::quantile(&mut snap, 0.5)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
