//! §4.3.4's claim that post-processing "has negligible impact on the
//! amortized update time of DCS": time the whole §3.2 pipeline
//! (truncation + decomposition + BLUE solve) against the cost of
//! having streamed the data in the first place, across η.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqs_bench::bench_stream;
use sqs_data::mpcat::MPCAT_LOG_U;
use sqs_turnstile::{new_dcs, PostProcessed, TurnstileQuantiles};

const N: usize = 100_000;
const EPS: f64 = 1e-3;

fn bench(c: &mut Criterion) {
    let data = bench_stream(N, 41);
    let mut dcs = new_dcs(EPS, MPCAT_LOG_U, 43);
    for &x in &data {
        dcs.insert(x);
    }
    let mut group = c.benchmark_group("post_overhead");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    for eta in [0.5, 0.1, 0.02] {
        group.bench_with_input(
            BenchmarkId::new("pipeline", format!("eta={eta}")),
            &eta,
            |b, &eta| {
                b.iter(|| {
                    let post = PostProcessed::new(&dcs, EPS, eta);
                    post.tree_size()
                });
            },
        );
    }
    // Reference point: what one full stream pass costs.
    group.bench_function("stream_pass_reference", |b| {
        b.iter(|| {
            let mut s = new_dcs(EPS, MPCAT_LOG_U, 43);
            for &x in &data {
                s.insert(x);
            }
            s.live()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
