//! Figure 6b's time dimension as a Criterion group: q-digest update
//! cost across universe sizes (σ = log u/ε grows with the universe, so
//! bigger universes mean bigger node maps and slower compresses), plus
//! the merge operation the paper keeps q-digest around for.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_core::{qdigest::QDigest, QuantileSummary};
use sqs_data::Normal;

const N: usize = 100_000;
const EPS: f64 = 1e-3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("qdigest_universe");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N as u64));
    for log_u in [16u32, 24, 32] {
        let data: Vec<u64> = Normal::new(log_u, 0.15, 31).take(N).collect();
        group.bench_with_input(
            BenchmarkId::new("update", format!("logu={log_u}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut s = QDigest::new(EPS, log_u);
                    for &x in data {
                        s.insert(x);
                    }
                    s.n()
                });
            },
        );
    }
    // Merge throughput: fold 8 prebuilt digests.
    let shards: Vec<QDigest> = (0..8)
        .map(|i| {
            let mut d = QDigest::new(EPS, 24);
            for x in Normal::new(24, 0.15, 40 + i).take(N / 8) {
                d.insert(x);
            }
            d
        })
        .collect();
    group.bench_function("merge/8_shards", |b| {
        b.iter(|| {
            let mut shards = shards.clone();
            let mut acc = shards.remove(0);
            for mut d in shards {
                acc.merge(&mut d);
            }
            acc.n()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
