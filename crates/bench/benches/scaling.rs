//! Figure 7a as a Criterion group: per-element update cost as the
//! stream grows (uniform, u = 2^32, tight ε). The paper's finding is
//! flat-to-falling curves — scaling verified by the per-element
//! throughput staying constant as N grows 100×.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_data::Uniform;
use sqs_harness::runner::CashAlgo;

const EPS: f64 = 1e-3;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(2000));
    for n in [10_000usize, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        for algo in [CashAlgo::GkArray, CashAlgo::Random] {
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut s = algo.build(EPS, 32, n as u64, 13);
                    for x in Uniform::new(32, 17).take(n) {
                        s.insert(x);
                    }
                    s.n()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
