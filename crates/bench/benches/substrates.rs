//! Substrate micro-throughput: the primitives every summary is built
//! from — k-wise hashing, PRNG output, buffer collapses, dyadic
//! decomposition. These set the floor under every per-element update
//! time in the figures.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sqs_core::buffers::weighted_collapse;
use sqs_util::dyadic::DyadicUniverse;
use sqs_util::hash::{FourwiseHash, PairwiseHash};
use sqs_util::rng::Xoshiro256pp;

const N: u64 = 1_000_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N));

    let mut rng = Xoshiro256pp::new(1);
    let pairwise = PairwiseHash::new(&mut rng, 4096);
    group.bench_function("pairwise_hash", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for x in 0..N {
                acc ^= pairwise.hash(x);
            }
            acc
        });
    });
    let fourwise = FourwiseHash::new(&mut rng);
    group.bench_function("fourwise_sign", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for x in 0..N {
                acc += fourwise.sign(x);
            }
            acc
        });
    });
    group.bench_function("xoshiro_next_below", |b| {
        b.iter(|| {
            let mut r = Xoshiro256pp::new(2);
            let mut acc = 0u64;
            for _ in 0..N {
                acc ^= r.next_below(1 << 20);
            }
            acc
        });
    });
    group.bench_function("dyadic_prefix_decomposition", |b| {
        let u = DyadicUniverse::new(32);
        b.iter(|| {
            let mut acc = 0usize;
            for x in (0..N).map(|i| i * 4097) {
                acc += u.prefix_decomposition(x & ((1 << 32) - 1)).len();
            }
            acc
        });
    });

    // Collapse throughput at summary-realistic sizes.
    group.throughput(Throughput::Elements(2 * 4096));
    let a: Vec<u64> = (0..4096u64).map(|i| i * 3).collect();
    let b2: Vec<u64> = (0..4096u64).map(|i| i * 5 + 1).collect();
    group.bench_function("weighted_collapse_2x4096", |b| {
        b.iter(|| {
            let (out, _) = weighted_collapse(&[(&a, 4), (&b2, 4)], 4096, 2);
            out.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
