//! Update throughput of the turnstile structures (the time axis of
//! Figures 10d/10e), on pure insertions and on a 50% delete churn —
//! the turnstile model's distinguishing workload.
//!
//! Expected shape (paper §4.3.4): DCM and DCS are similar (both touch
//! `log u` levels × `d` rows per update) and roughly an order of
//! magnitude slower than the cash-register algorithms.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sqs_data::turnstile::{random_churn, Op};
use sqs_data::Uniform;
use sqs_turnstile::{new_dcm, new_dcs, TurnstileQuantiles};

const N: usize = 50_000;
const LOG_U: u32 = 24;

fn bench(c: &mut Criterion) {
    let inserts: Vec<u64> = Uniform::new(LOG_U, 3).take(N).collect();
    let churn = random_churn(Uniform::new(LOG_U, 4).take(N), 0.5, 5);
    let mut group = c.benchmark_group("turnstile_update");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1500));
    group.throughput(Throughput::Elements(N as u64));
    for eps in [1e-2, 1e-3] {
        group.bench_with_input(
            BenchmarkId::new("DCM/insert", format!("eps={eps}")),
            &eps,
            |b, &e| {
                b.iter(|| {
                    let mut s = new_dcm(e, LOG_U, 7);
                    for &x in &inserts {
                        s.insert(x);
                    }
                    s.live()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("DCS/insert", format!("eps={eps}")),
            &eps,
            |b, &e| {
                b.iter(|| {
                    let mut s = new_dcs(e, LOG_U, 7);
                    for &x in &inserts {
                        s.insert(x);
                    }
                    s.live()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("DCS/churn50", format!("eps={eps}")),
            &eps,
            |b, &e| {
                b.iter(|| {
                    let mut s = new_dcs(e, LOG_U, 7);
                    for op in &churn {
                        match *op {
                            Op::Insert(x) => s.insert(x),
                            Op::Delete(x) => s.delete(x),
                        }
                    }
                    s.live()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
