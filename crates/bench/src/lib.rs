//! Shared helpers for the Criterion benchmarks.
//!
//! `benches/` holds one group per paper table/figure dimension that is
//! a *throughput* question; the `sqs-exp` binary in `sqs-harness`
//! produces the corresponding accuracy/space rows (which Criterion
//! cannot express). Mapping:
//!
//! | bench | paper |
//! |---|---|
//! | `cash_update` | Fig. 5e/5f (update-time axis) |
//! | `cash_query` | query latency (complements Fig. 5) |
//! | `turnstile_update` | Fig. 10d/10e (update-time axis) |
//! | `scaling` | Fig. 7a |
//! | `arrival_order` | Fig. 8 (time panel) |
//! | `qdigest_universe` | Fig. 6b |
//! | `post_overhead` | §4.3.4's "negligible impact" claim |

#![forbid(unsafe_code)]

pub use sqs_data::{Lidar, Mpcat, Normal, Uniform};

/// Materializes `n` elements of the standard bench stream (the
/// MPCAT-OBS surrogate — the paper's default data set).
pub fn bench_stream(n: usize, seed: u64) -> Vec<u64> {
    Mpcat::new(seed).take(n).collect()
}
