//! Biased and targeted quantiles — the CKMS extension of GK
//! (Cormode, Korn, Muthukrishnan & Srivastava, "Space- and
//! time-efficient deterministic algorithms for biased quantiles over
//! data streams", cited as [10] in the study's §1 list of extensions).
//!
//! Uniform-ε summaries waste space when only a few quantiles matter,
//! or when the tails need *relative* precision (p99.9 of latencies to
//! ±1% of its rank, not ±ε·n). CKMS generalizes the GK invariant: the
//! allowed gap at rank `r` becomes a function `f(r, n)` instead of the
//! constant `2εn`:
//!
//! * **low-biased**: `f(r, n) = max(2εr, 2)` — relative error for
//!   small φ (and by symmetry `high_biased` for the upper tail);
//! * **targeted** at `{(φ_j, ε_j)}`:
//!   `f_j(r, n) = 2ε_j·r/φ_j` for `r ≥ φ_j n`, and
//!   `2ε_j·(n−r)/(1−φ_j)` below — tight exactly where queries land.
//!
//! The mechanics are GKAdaptive-style: insert `(v, 1, f(r)−1)` before
//! the successor, periodically sweep and merge every tuple whose
//! combined gap fits `f` at its rank.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::gk::Tuple;
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

/// The gap-budget shape.
#[derive(Debug, Clone)]
enum Invariant {
    LowBiased { eps: f64 },
    HighBiased { eps: f64 },
    Targeted { targets: Vec<(f64, f64)> },
}

impl Invariant {
    /// The allowed combined gap `f(r, n)` at rank `r`.
    fn budget(&self, r: f64, n: f64) -> f64 {
        let f = match self {
            Invariant::LowBiased { eps } => 2.0 * eps * r,
            Invariant::HighBiased { eps } => 2.0 * eps * (n - r),
            Invariant::Targeted { targets } => targets
                .iter()
                .map(|&(phi, eps)| {
                    if r >= phi * n {
                        2.0 * eps * r / phi
                    } else {
                        2.0 * eps * (n - r) / (1.0 - phi)
                    }
                })
                .fold(f64::INFINITY, f64::min),
        };
        f.max(2.0)
    }

    /// Upper bound on `f` anywhere in the rank interval `[a, b]`.
    /// Every component is monotone on each side of its kink, so a
    /// component's max over an interval is at an endpoint; the min over
    /// components is bounded by the max endpoint value of any of them.
    fn budget_upper(&self, a: f64, b: f64, n: f64) -> f64 {
        let hi = match self {
            Invariant::LowBiased { eps } => 2.0 * eps * b,
            Invariant::HighBiased { eps } => 2.0 * eps * (n - a),
            Invariant::Targeted { targets } => targets
                .iter()
                .map(|&(phi, eps)| {
                    let at = |r: f64| {
                        if r >= phi * n {
                            2.0 * eps * r / phi
                        } else {
                            2.0 * eps * (n - r) / (1.0 - phi)
                        }
                    };
                    at(a).max(at(b))
                })
                .fold(0.0, f64::max),
        };
        hi.max(2.0)
    }
}

/// A biased/targeted quantile summary (deterministic,
/// comparison-based).
///
/// # Example
///
/// ```
/// use sqs_core::{biased::Ckms, QuantileSummary};
///
/// // Tight p99, loose median — the tail budget doesn't tax the middle.
/// let mut s = Ckms::targeted(&[(0.5, 0.02), (0.99, 0.001)]);
/// for x in 0..200_000u64 {
///     s.insert(x);
/// }
/// let p99 = s.quantile(0.99).unwrap();
/// assert!(p99.abs_diff(198_000) <= 800); // within 2·0.001·n ranks
/// ```

#[derive(Debug, Clone)]
pub struct Ckms<T> {
    invariant: Invariant,
    n: u64,
    tuples: Vec<Tuple<T>>,
    buffer: Vec<T>,
    /// Compress after this many buffered inserts (amortizes the sweep).
    batch: usize,
}

impl<T: Ord + Copy> Ckms<T> {
    fn with_invariant(invariant: Invariant) -> Self {
        Self {
            invariant,
            n: 0,
            tuples: Vec::new(),
            buffer: Vec::with_capacity(128),
            batch: 128,
        }
    }

    /// Relative-error summary for the **lower** tail: the φ-quantile is
    /// answered within rank error `ε·φ·n` — small quantiles get
    /// proportionally tighter answers.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn low_biased(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        Self::with_invariant(Invariant::LowBiased { eps })
    }

    /// Relative-error summary for the **upper** tail (p99, p999, …):
    /// the φ-quantile is answered within `ε·(1−φ)·n`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn high_biased(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        Self::with_invariant(Invariant::HighBiased { eps })
    }

    /// Summary targeted at specific `(φ, ε)` pairs — e.g.
    /// `[(0.5, 0.01), (0.99, 0.001)]` for a coarse median and a tight
    /// p99.
    ///
    /// # Panics
    /// Panics if `targets` is empty or any pair is out of range.
    pub fn targeted(targets: &[(f64, f64)]) -> Self {
        assert!(!targets.is_empty(), "targeted: no targets");
        for &(phi, eps) in targets {
            assert!(phi > 0.0 && phi < 1.0, "target phi {phi} out of (0,1)");
            assert!(eps > 0.0 && eps < 1.0, "target eps {eps} out of (0,1)");
        }
        Self::with_invariant(Invariant::Targeted {
            targets: targets.to_vec(),
        })
    }

    /// Number of tuples currently held.
    pub fn tuple_count(&mut self) -> usize {
        self.flush();
        self.tuples.len()
    }

    /// Applies buffered inserts (sequential semantics, sorted for
    /// locality) and runs the compressing sweep.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable();
        let buffered = std::mem::take(&mut self.buffer);
        let mut li = 0usize;
        let mut rmin_before = 0u64; // Σ g of tuples emitted so far
        let old = std::mem::take(&mut self.tuples);
        let mut out: Vec<Tuple<T>> = Vec::with_capacity(old.len() + buffered.len());
        let n = self.n as f64;
        for &v in &buffered {
            while li < old.len() && old[li].v <= v {
                rmin_before += old[li].g;
                out.push(old[li]);
                li += 1;
            }
            let delta = if li >= old.len() || out.is_empty() {
                0 // new max / new min pinned
            } else {
                (self.invariant.budget(rmin_before as f64, n).floor() as u64)
                    .saturating_sub(1)
                    .min(old[li].g + old[li].delta.max(1) - 1)
            };
            out.push(Tuple { v, g: 1, delta });
            rmin_before += 1;
        }
        out.extend_from_slice(&old[li..]);
        self.tuples = out;
        self.compress();
    }

    /// The CKMS COMPRESS: one right-to-left sweep merging every tuple
    /// whose combined gap with its successor fits the budget at its
    /// rank.
    fn compress(&mut self) {
        if self.tuples.len() < 3 {
            return;
        }
        let n = self.n as f64;
        // Prefix ranks (rmin of each tuple); folds to the right never
        // change the rank of tuples to their left.
        let mut ranks = Vec::with_capacity(self.tuples.len());
        let mut acc = 0u64;
        for t in &self.tuples {
            acc += t.g;
            ranks.push(acc);
        }
        let mut kept: Vec<Tuple<T>> = Vec::with_capacity(self.tuples.len());
        kept.push(
            *self
                .tuples
                .last()
                .expect("CKMS invariant: compress runs only with >= 3 tuples"),
        );
        for i in (1..self.tuples.len() - 1).rev() {
            let t = self.tuples[i];
            let succ = *kept
                .last()
                .expect("CKMS invariant: kept list seeded with the last tuple");
            if (t.g + succ.g + succ.delta) as f64 <= self.invariant.budget(ranks[i] as f64, n) {
                kept.last_mut()
                    .expect("CKMS invariant: kept list stays nonempty during compress")
                    .g += t.g;
            } else {
                kept.push(t);
            }
        }
        kept.push(self.tuples[0]);
        kept.reverse();
        self.tuples = kept;
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for Ckms<T> {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "CKMS";
        ensure(self.batch >= 1, ALG, "ckms.batch_positive", || {
            "compress batch size is zero".to_string()
        })?;
        ensure(
            self.buffer.len() <= self.batch,
            ALG,
            "ckms.buffer_bound",
            || {
                format!(
                    "buffer holds {} elements, batch limit {}",
                    self.buffer.len(),
                    self.batch
                )
            },
        )?;
        // Σg accounts for folded elements only; the rest sit in `buffer`.
        let folded = self.n - self.buffer.len() as u64;
        let n = self.n as f64;
        let mut rmin = 0u64;
        for (i, t) in self.tuples.iter().enumerate() {
            ensure(t.g >= 1, ALG, "ckms.g_positive", || {
                format!("tuple {i} has g = 0")
            })?;
            if i > 0 {
                ensure(self.tuples[i - 1].v <= t.v, ALG, "ckms.sorted", || {
                    format!("tuple {i} is smaller than its predecessor")
                })?;
            }
            let before = rmin;
            rmin += t.g;
            if i > 0 && i + 1 < self.tuples.len() {
                // The gap budget was granted at some rank in
                // [rmin_before, rmin] and only grows with n and rank,
                // so the endpoint upper bound (+1 merge slack) holds.
                let cap = self.invariant.budget_upper(before as f64, rmin as f64, n) + 1.0;
                ensure(
                    (t.g + t.delta) as f64 <= cap + 1e-6,
                    ALG,
                    "ckms.gap_budget",
                    || {
                        format!(
                            "tuple {i}: g+Δ = {} exceeds rank-budget bound {cap:.1}",
                            t.g + t.delta
                        )
                    },
                )?;
            }
        }
        ensure(
            self.tuples.is_empty() || rmin == folded,
            ALG,
            "ckms.g_sum",
            || format!("Σg = {rmin} ≠ folded element count {folded}"),
        )?;
        let ends_pinned = self.tuples.first().is_none_or(|t| t.delta == 0)
            && self.tuples.last().is_none_or(|t| t.delta == 0);
        ensure(ends_pinned, ALG, "ckms.ends_pinned", || {
            "extreme tuples must carry Δ = 0".to_string()
        })
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for Ckms<T> {
    fn insert(&mut self, x: T) {
        self.n += 1;
        self.buffer.push(x);
        if self.buffer.len() >= self.batch {
            self.flush();
            // Keep the sweep amortized against the summary size.
            self.batch = self.tuples.len().max(128);
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        self.flush();
        let mut rmin = 0u64;
        let mut best = 0u64;
        for t in &self.tuples {
            if t.v > x {
                break;
            }
            rmin += t.g;
            best = rmin + t.delta / 2;
        }
        best.saturating_sub(1)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        self.flush();
        if self.tuples.is_empty() {
            return None;
        }
        let n = self.n as f64;
        let target = (phi * n).floor() + 1.0;
        let margin = self.invariant.budget(target, n) / 2.0;
        let mut rmin = 0u64;
        let mut prev = self.tuples[0].v;
        for t in &self.tuples {
            rmin += t.g;
            if rmin as f64 + t.delta as f64 > target + margin {
                return Some(prev);
            }
            prev = t.v;
        }
        Some(prev)
    }

    fn name(&self) -> &'static str {
        "CKMS"
    }
}

impl<T> SpaceUsage for Ckms<T> {
    fn space_bytes(&self) -> usize {
        words(self.tuples.len() * 3 + self.buffer.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::ExactQuantiles;
    use sqs_util::rng::Xoshiro256pp;

    fn stream(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n).map(|_| rng.next_below(1 << 30)).collect()
    }

    #[test]
    fn high_biased_is_tight_in_the_tail() {
        let eps = 0.05;
        let data = stream(100_000, 1);
        let oracle = ExactQuantiles::new(data.clone());
        let mut s = Ckms::high_biased(eps);
        for &x in &data {
            s.insert(x);
        }
        for phi in [0.9, 0.99, 0.999] {
            let q = s.quantile(phi).unwrap();
            let err = oracle.quantile_error(phi, q);
            let allowed = 2.0 * eps * (1.0 - phi) + 1e-4; // relative budget
            assert!(err <= allowed, "phi={phi}: err {err} > {allowed}");
        }
    }

    #[test]
    fn low_biased_is_tight_at_the_bottom() {
        let eps = 0.05;
        let data = stream(100_000, 2);
        let oracle = ExactQuantiles::new(data.clone());
        let mut s = Ckms::low_biased(eps);
        for &x in &data {
            s.insert(x);
        }
        for phi in [0.001, 0.01, 0.1] {
            let q = s.quantile(phi).unwrap();
            let err = oracle.quantile_error(phi, q);
            let allowed = 2.0 * eps * phi + 1e-4;
            assert!(err <= allowed, "phi={phi}: err {err} > {allowed}");
        }
    }

    #[test]
    fn targeted_hits_its_targets() {
        let targets = [(0.5, 0.02), (0.99, 0.002)];
        let data = stream(200_000, 3);
        let oracle = ExactQuantiles::new(data.clone());
        let mut s = Ckms::targeted(&targets);
        for &x in &data {
            s.insert(x);
        }
        for &(phi, eps) in &targets {
            let q = s.quantile(phi).unwrap();
            let err = oracle.quantile_error(phi, q);
            assert!(err <= 2.0 * eps, "phi={phi}: err {err} > {}", 2.0 * eps);
        }
    }

    #[test]
    fn targeted_uses_less_space_than_uniform_tightest() {
        // A tight p99 target should not force tight-ε space everywhere.
        let data = stream(200_000, 4);
        let mut targeted = Ckms::targeted(&[(0.99, 0.001)]);
        let mut uniform = crate::gk::GkArray::new(0.001);
        for &x in &data {
            targeted.insert(x);
            uniform.insert(x);
        }
        let t = targeted.tuple_count();
        let u = uniform.tuples().len();
        assert!(t * 2 < u, "targeted {t} vs uniform {u} tuples");
    }

    #[test]
    fn sorted_and_duplicate_streams() {
        let mut s = Ckms::high_biased(0.1);
        for x in 0..50_000u64 {
            s.insert(x % 100);
        }
        let oracle = ExactQuantiles::new((0..50_000u64).map(|x| x % 100).collect());
        let q = s.quantile(0.99).unwrap();
        assert!(oracle.quantile_error(0.99, q) <= 0.01);
    }

    #[test]
    fn empty_and_singleton() {
        let mut s = Ckms::<u64>::low_biased(0.1);
        assert_eq!(s.quantile(0.5), None);
        s.insert(5);
        assert_eq!(s.quantile(0.5), Some(5));
        assert_eq!(s.n(), 1);
    }

    #[test]
    #[should_panic(expected = "no targets")]
    fn rejects_empty_targets() {
        Ckms::<u64>::targeted(&[]);
    }

    #[test]
    fn space_stays_sublinear() {
        let mut s = Ckms::high_biased(0.01);
        for x in stream(300_000, 5) {
            s.insert(x);
        }
        assert!(s.tuple_count() < 30_000, "tuples = {}", s.tuple_count());
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    fn filled() -> Ckms<u64> {
        let mut s = Ckms::high_biased(0.05);
        for x in 0..20_000u64 {
            s.insert(x % 4_999);
        }
        s.flush();
        s
    }

    #[test]
    fn auditor_catches_mass_drift() {
        let mut s = filled();
        s.tuples[0].g += 5;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "CKMS");
        assert_eq!(err.invariant, "ckms.g_sum");
    }

    #[test]
    fn auditor_catches_unpinned_extremes() {
        let mut s = filled();
        s.tuples.last_mut().expect("nonempty").delta = 3;
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "ckms.ends_pinned"
        );
    }
}
