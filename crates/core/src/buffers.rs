//! Shared buffer-merge machinery for the sampling-based summaries
//! (`Random`, `MRL99`, `MRL98`).
//!
//! All three algorithms reduce to the same two primitives over sorted
//! buffers of weighted samples:
//!
//! * [`merge_equal_level`] — the `Random` rule (§2.2): merge two
//!   sorted, equal-weight buffers and keep either the odd or the even
//!   positions of the combined sequence, each with probability 1/2.
//! * [`weighted_collapse`] — the MRL COLLAPSE: merge any number of
//!   sorted buffers with arbitrary integer weights into `out_size`
//!   samples, selecting the elements whose *expanded* positions (each
//!   element repeated `weight` times) hit an arithmetic progression of
//!   targets with a chosen offset. A random offset gives the MRL99
//!   unbiased collapse; the fixed midpoint offset gives the
//!   deterministic MRL98 collapse.
//!
//! plus the weighted rank/quantile queries over the union of all live
//! buffers.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

/// Merges two sorted equal-weight buffers, keeping odd (`take_odd`)
/// or even positions of the merged sequence (0-indexed).
///
/// With `|a| = |b| = s` the result has exactly `s` elements and
/// represents the union at twice the weight.
pub fn merge_equal_level<T: Ord + Copy>(a: &[T], b: &[T], take_odd: bool) -> Vec<T> {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let total = a.len() + b.len();
    let mut out = Vec::with_capacity(total / 2 + 1);
    let (mut i, mut j) = (0usize, 0usize);
    let mut pos = 0usize;
    let want = usize::from(take_odd);
    while i < a.len() || j < b.len() {
        let x = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        if pos % 2 == want {
            out.push(x);
        }
        pos += 1;
    }
    out
}

/// Collapses sorted buffers with per-buffer integer weights into
/// `out_size` samples.
///
/// Conceptually each buffer's elements are expanded `weight`-fold and
/// the combined expanded sequence (length `W = Σ weight_i · len_i`) is
/// sampled at positions `offset + ⌊j·W/out_size⌋` for
/// `j = 0..out_size`. `offset` must be in `[0, W/out_size)`; draw it
/// uniformly for the unbiased MRL99 collapse, or pass
/// `W/(2·out_size)` for the deterministic MRL98 midpoint rule.
///
/// Returns the sampled elements (sorted) and the total expanded weight
/// `W`; each output element represents `W/out_size` of the input mass.
///
/// # Panics
/// Panics if `out_size == 0`, all buffers are empty, or `offset` is
/// out of range.
pub fn weighted_collapse<T: Ord + Copy>(
    bufs: &[(&[T], u64)],
    out_size: usize,
    offset: u64,
) -> (Vec<T>, u64) {
    assert!(out_size > 0, "weighted_collapse: out_size must be positive");
    let total_w: u64 = bufs.iter().map(|(d, w)| d.len() as u64 * w).sum();
    assert!(total_w > 0, "weighted_collapse: no input mass");
    let stride = total_w / out_size as u64;
    assert!(
        offset < stride.max(1),
        "weighted_collapse: offset {offset} out of range (stride {stride})"
    );

    // Flatten to (value, weight) and sort by value; buffer sizes are
    // small (O(1/ε·polylog)), so the O(N log N) flatten is the paper's
    // own cost model for a collapse.
    let mut items: Vec<(T, u64)> = Vec::with_capacity(bufs.iter().map(|(d, _)| d.len()).sum());
    for (data, w) in bufs {
        debug_assert!(data.windows(2).all(|x| x[0] <= x[1]));
        items.extend(data.iter().map(|&v| (v, *w)));
    }
    items.sort_unstable_by_key(|x| x.0);

    let mut out = Vec::with_capacity(out_size);
    let mut cum = 0u64; // expanded positions consumed so far
    let mut j = 0u64; // next target index
    for (v, w) in items {
        let hi = cum + w;
        // Emit every target position falling inside [cum, hi).
        while j < out_size as u64 {
            let target = offset + (j * total_w) / out_size as u64;
            if target < hi {
                out.push(v);
                j += 1;
            } else {
                break;
            }
        }
        cum = hi;
        if j == out_size as u64 {
            break;
        }
    }
    debug_assert_eq!(out.len(), out_size);
    (out, total_w)
}

/// Estimated rank of `x` over weighted sample buffers: the summed
/// weight of all sampled elements strictly smaller than `x`.
pub fn weighted_rank<T: Ord + Copy>(bufs: &[(&[T], u64)], x: T) -> u64 {
    bufs.iter()
        .map(|(data, w)| data.partition_point(|&v| v < x) as u64 * w)
        .sum()
}

/// φ-quantile over weighted sample buffers: the sampled element whose
/// estimated rank is closest to `φ · W` (§2.2), found by a sweep over
/// the sorted union.
pub fn weighted_quantile<T: Ord + Copy>(bufs: &[(&[T], u64)], phi: f64) -> Option<T> {
    let total_w: u64 = bufs.iter().map(|(d, w)| d.len() as u64 * w).sum();
    if total_w == 0 {
        return None;
    }
    let mut items: Vec<(T, u64)> = Vec::with_capacity(bufs.iter().map(|(d, _)| d.len()).sum());
    for (data, w) in bufs {
        items.extend(data.iter().map(|&v| (v, *w)));
    }
    items.sort_unstable_by_key(|x| x.0);

    // §2.2: report the element whose estimated rank r̂(v) — the mass
    // strictly before it — is closest to φ·W.
    let target = phi * total_w as f64;
    let mut cum = 0u64;
    let mut best = items[0].0;
    let mut best_dist = f64::INFINITY;
    for (v, w) in items {
        let rank = cum as f64;
        let dist = (rank - target).abs();
        if dist < best_dist {
            best_dist = dist;
            best = v;
        } else if rank > target {
            break; // ranks only move away from the target now
        }
        cum += w;
    }
    Some(best)
}

/// Answers an ascending φ-grid in a single pass over the sorted
/// weighted union (the per-query [`weighted_quantile`] sorts the union
/// each time; grids of `1/ε − 1` probes need this batched form).
pub fn weighted_quantile_grid<T: Ord + Copy>(bufs: &[(&[T], u64)], phis: &[f64]) -> Vec<(f64, T)> {
    let total_w: u64 = bufs.iter().map(|(d, w)| d.len() as u64 * w).sum();
    if total_w == 0 || phis.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        phis.windows(2).all(|w| w[0] <= w[1]),
        "grid must be ascending"
    );
    let mut items: Vec<(T, u64)> = Vec::with_capacity(bufs.iter().map(|(d, _)| d.len()).sum());
    for (data, w) in bufs {
        items.extend(data.iter().map(|&v| (v, *w)));
    }
    items.sort_unstable_by_key(|x| x.0);

    let mut out = Vec::with_capacity(phis.len());
    let mut cum = 0u64;
    let mut idx = 0usize;
    for &phi in phis {
        let target = phi * total_w as f64;
        // Advance while the next item's rank is strictly closer to the
        // target (ties keep the earlier item, matching the pointwise
        // query's first-minimum rule).
        while idx + 1 < items.len() {
            let here = (cum as f64 - target).abs();
            let next_rank = cum + items[idx].1;
            let there = (next_rank as f64 - target).abs();
            if there < here {
                cum += items[idx].1;
                idx += 1;
            } else {
                break;
            }
        }
        out.push((phi, items[idx].0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_level_merge_parity() {
        let a = [1u64, 3, 5, 7];
        let b = [2u64, 4, 6, 8];
        assert_eq!(merge_equal_level(&a, &b, false), vec![1, 3, 5, 7]);
        assert_eq!(merge_equal_level(&a, &b, true), vec![2, 4, 6, 8]);
    }

    #[test]
    fn equal_level_merge_with_duplicates() {
        let a = [1u64, 1, 2];
        let b = [1u64, 2, 3];
        let evens = merge_equal_level(&a, &b, false);
        let odds = merge_equal_level(&a, &b, true);
        assert_eq!(evens.len(), 3);
        assert_eq!(odds.len(), 3);
        // Union of both picks = full merged sequence.
        let mut all = evens.clone();
        all.extend(&odds);
        all.sort_unstable();
        assert_eq!(all, vec![1, 1, 1, 2, 2, 3]);
    }

    #[test]
    fn collapse_uniform_weights_is_spread() {
        // 2 buffers of 4 elements, weight 1 each → W=8, out 4, stride 2.
        let a = [0u64, 2, 4, 6];
        let b = [1u64, 3, 5, 7];
        let (out, w) = weighted_collapse(&[(&a, 1), (&b, 1)], 4, 0);
        assert_eq!(w, 8);
        assert_eq!(out, vec![0, 2, 4, 6]);
        let (out, _) = weighted_collapse(&[(&a, 1), (&b, 1)], 4, 1);
        assert_eq!(out, vec![1, 3, 5, 7]);
    }

    #[test]
    fn collapse_respects_weights() {
        // One heavy element should dominate the output.
        let heavy = [5u64];
        let light = [1u64, 9];
        let (out, w) = weighted_collapse(&[(&heavy, 8), (&light, 1)], 5, 0);
        assert_eq!(w, 10);
        // Expanded: 1, 5×8, 9 → targets 0,2,4,6,8 → 1,5,5,5,5
        assert_eq!(out, vec![1, 5, 5, 5, 5]);
    }

    #[test]
    fn collapse_output_sorted_and_sized() {
        let a = [3u64, 6, 9, 12];
        let b = [1u64, 5, 8];
        let c = [2u64, 4];
        let (out, _) = weighted_collapse(&[(&a, 2), (&b, 3), (&c, 5)], 6, 1);
        assert_eq!(out.len(), 6);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn collapse_rejects_bad_offset() {
        let a = [1u64, 2];
        weighted_collapse(&[(&a, 1)], 2, 5);
    }

    #[test]
    fn weighted_rank_counts_mass() {
        let a = [1u64, 3, 5];
        let b = [2u64, 4];
        let bufs: Vec<(&[u64], u64)> = vec![(&a, 2), (&b, 3)];
        assert_eq!(weighted_rank(&bufs, 0), 0);
        assert_eq!(weighted_rank(&bufs, 3), 2 + 3); // {1}·2 + {2}·3
        assert_eq!(weighted_rank(&bufs, 100), 6 + 6);
    }

    #[test]
    fn weighted_quantile_median_of_uniform() {
        let a: Vec<u64> = (0..100).collect();
        let bufs: Vec<(&[u64], u64)> = vec![(&a, 1)];
        let med = weighted_quantile(&bufs, 0.5).unwrap();
        assert!((45..=55).contains(&med), "median = {med}");
        // Exact convention: rank ⌊0.01·100⌋ = 1 → value 1.
        assert_eq!(weighted_quantile(&bufs, 0.01).unwrap(), 1);
        assert_eq!(weighted_quantile(&bufs, 0.999).unwrap(), 99);
    }

    #[test]
    fn grid_matches_pointwise_weighted_queries() {
        let a: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..200).map(|i| i * 7 + 1).collect();
        let bufs: Vec<(&[u64], u64)> = vec![(&a, 2), (&b, 5)];
        let phis: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
        let grid = weighted_quantile_grid(&bufs, &phis);
        assert_eq!(grid.len(), phis.len());
        for (phi, v) in grid {
            assert_eq!(Some(v), weighted_quantile(&bufs, phi), "phi={phi}");
        }
    }

    #[test]
    fn weighted_quantile_empty_is_none() {
        let bufs: Vec<(&[u64], u64)> = vec![];
        assert_eq!(weighted_quantile(&bufs, 0.5), None);
    }
}
