//! The portable wire codec for mergeable summaries.
//!
//! The mergeable-summary property (Agarwal et al., PODS'12) is only
//! useful across process boundaries if a summary can be shipped as
//! bytes and reconstructed remotely — the deployment model of both the
//! sensor-network q-digest (Shrivastava et al.) and DataSketches-style
//! serving systems. This module defines that byte form once, for every
//! mergeable summary in the crate:
//!
//! * a common **frame**: magic, version, a summary-kind tag, a
//!   little-endian length-prefixed body, and a trailing FNV-1a-64
//!   checksum over everything before it;
//! * the [`WireCodec`] trait: each summary contributes only its
//!   `encode_body`/`decode_body`, and inherits framed
//!   [`to_bytes`](WireCodec::to_bytes) /
//!   [`from_bytes`](WireCodec::from_bytes);
//! * a **validating decode path**: `from_bytes` verifies the checksum,
//!   bounds every length it reads against the actual byte count, and
//!   finally runs the summary's own
//!   [`CheckInvariants`](sqs_util::audit::CheckInvariants) audit — a
//!   corrupt or adversarial frame yields a [`CodecError`], never a
//!   panic and never a structurally-invalid summary.
//!
//! Implementors: [`RandomSketch<u64>`](crate::random::RandomSketch),
//! [`QDigest`](crate::qdigest::QDigest) (the frame body is its
//! pre-existing compact byte form), and
//! [`ReservoirQuantiles<u64>`](crate::sampled::ReservoirQuantiles).
//! Randomized summaries serialize their PRNG state
//! ([`Xoshiro256pp::state`](sqs_util::rng::Xoshiro256pp::state)), so a
//! decoded summary continues the sender's random choices exactly —
//! encode→decode→insert behaves identically to never serializing.
//!
//! Byte-layout tables for the frame and each body live in
//! `docs/SERVICE.md`.

use std::fmt;

use sqs_util::audit::{CheckInvariants, InvariantViolation};

/// Frame magic: the four bytes `SQSC` (Streaming Quantile Summary
/// Codec).
pub const WIRE_MAGIC: [u8; 4] = *b"SQSC";

/// Current frame version. Bumped on any layout change; decoders reject
/// other versions rather than guessing.
pub const WIRE_VERSION: u8 = 1;

/// Kind tag of [`RandomSketch<u64>`](crate::random::RandomSketch).
pub const KIND_RANDOM: u8 = 1;
/// Kind tag of [`QDigest`](crate::qdigest::QDigest).
pub const KIND_QDIGEST: u8 = 2;
/// Kind tag of
/// [`ReservoirQuantiles<u64>`](crate::sampled::ReservoirQuantiles).
pub const KIND_RESERVOIR: u8 = 3;
/// Kind tag of the Dyadic Count-Sketch turnstile summary
/// (`sqs_turnstile::TurnstileSummary<CountSketch>` — implemented in
/// `sqs-turnstile` to keep this crate free of the sketch dependency).
pub const KIND_DCS: u8 = 4;

/// Fixed frame header length: magic(4) + version(1) + kind(1) +
/// reserved(2) + body length(8).
pub const FRAME_HEADER_LEN: usize = 16;

/// FNV-1a 64-bit hash — the frame checksum. Not cryptographic; it
/// exists to catch truncation, bit rot and framing bugs, while staying
/// dependency-free and branch-free per byte.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_concat(&[bytes])
}

/// [`fnv1a64`] over the concatenation of `parts`, without building the
/// concatenation. FNV-1a is byte-serial, so hashing the spans in order
/// is identical to hashing one contiguous buffer — this is how the
/// service protocol checksums a frame header and its payload in place.
#[must_use]
pub fn fnv1a64_concat(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Why a byte frame failed to decode into a summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The byte stream ends before a declared field or length.
    Truncated,
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame declares an unsupported version.
    BadVersion(u8),
    /// The frame carries a different summary kind than requested.
    BadKind {
        /// The kind tag the decoder was asked to produce.
        expected: u8,
        /// The kind tag found in the frame.
        got: u8,
    },
    /// The trailing FNV-1a-64 checksum does not match the frame bytes.
    ChecksumMismatch,
    /// Bytes remain after the declared body — a framing bug or splice.
    TrailingBytes,
    /// A field value is structurally impossible (described by the
    /// static message).
    Malformed(&'static str),
    /// The decoded summary failed its own structural-invariant audit
    /// (`CheckInvariants`) — bytes that parse but describe an invalid
    /// state are rejected the same way corrupt ones are.
    Invariant(InvariantViolation),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadKind { expected, got } => {
                write!(f, "summary kind mismatch: expected {expected}, got {got}")
            }
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after frame body"),
            CodecError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            CodecError::Invariant(v) => write!(f, "decoded summary fails audit: {v}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<InvariantViolation> for CodecError {
    fn from(v: InvariantViolation) -> Self {
        CodecError::Invariant(v)
    }
}

/// A bounds-checked little-endian cursor over a byte slice. Every read
/// returns [`CodecError::Truncated`] instead of panicking, which keeps
/// the whole decode path index-free.
#[derive(Debug)]
pub struct Reader<'a> {
    rest: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Takes the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let (head, tail) = self.rest.split_at_checked(n).ok_or(CodecError::Truncated)?;
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        self.bytes(1)?.first().copied().ok_or(CodecError::Truncated)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b: [u8; 4] = self
            .bytes(4)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b: [u8; 8] = self
            .bytes(8)?
            .try_into()
            .map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` and converts it to `usize`, failing
    /// with `Malformed` if it does not fit the platform.
    pub fn read_len(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CodecError::Malformed("length field exceeds the address space"))
    }

    /// Reads a length-prefixed `u64` vector: count, then that many
    /// little-endian words. The count is validated against the bytes
    /// actually present *before* any allocation, so a forged length
    /// cannot request an absurd buffer.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let count = self.read_len()?;
        let byte_len = count.checked_mul(8).ok_or(CodecError::Truncated)?;
        let raw = self.bytes(byte_len)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                u64::from_le_bytes(
                    c.try_into()
                        .expect("Reader invariant: chunks_exact(8) yields 8-byte slices"),
                )
            })
            .collect())
    }

    /// Asserts the cursor consumed everything.
    pub fn done(&self) -> Result<(), CodecError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// Reads the summary-kind tag out of a frame without decoding it:
/// validates the magic, version and trailing checksum, then returns
/// the `KIND_*` byte. This is how kind-generic layers (the durable
/// store, routing code) sanity-check a frame they cannot yet decode —
/// the typed [`WireCodec::from_bytes`] still re-validates everything
/// when the frame is finally consumed.
///
/// # Errors
/// The same structural errors `from_bytes` would report: truncation,
/// bad magic, unsupported version, checksum mismatch.
pub fn frame_kind(bytes: &[u8]) -> Result<u8, CodecError> {
    let framed_len = bytes.len().checked_sub(8).ok_or(CodecError::Truncated)?;
    let (framed, sum_bytes) = bytes
        .split_at_checked(framed_len)
        .ok_or(CodecError::Truncated)?;
    let declared: [u8; 8] = sum_bytes.try_into().map_err(|_| CodecError::Truncated)?;
    if fnv1a64(framed) != u64::from_le_bytes(declared) {
        return Err(CodecError::ChecksumMismatch);
    }
    let mut r = Reader::new(framed);
    if r.bytes(4)? != WIRE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    r.u8()
}

/// Appends a length-prefixed `u64` vector (count, then the words) —
/// the encoder dual of [`Reader::u64_vec`].
pub fn put_u64_slice(out: &mut Vec<u8>, xs: &[u64]) {
    out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// A summary with a portable, versioned byte form.
///
/// Implementors provide only the body codec; the framing (magic,
/// version, kind tag, length prefix, checksum) and the post-decode
/// invariant audit are shared. `encode_body` takes `&mut self` because
/// several summaries flush internal buffers so that equal summaries
/// serialize equally.
pub trait WireCodec: CheckInvariants + Sized {
    /// This summary's kind tag in the frame header (one of the
    /// `KIND_*` constants).
    const WIRE_KIND: u8;

    /// Appends the summary's body bytes (everything inside the frame).
    fn encode_body(&mut self, out: &mut Vec<u8>);

    /// Parses a body produced by
    /// [`encode_body`](WireCodec::encode_body). Implementations must
    /// bounds-check every read (use [`Reader`]) and reject values that
    /// would make later operations panic; structural soundness of the
    /// result is additionally audited by
    /// [`from_bytes`](WireCodec::from_bytes).
    fn decode_body(body: &[u8]) -> Result<Self, CodecError>;

    /// Serializes the summary as one framed, checksummed byte string.
    fn to_bytes(&mut self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 64);
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(Self::WIRE_KIND);
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&0u64.to_le_bytes()); // body length placeholder
        self.encode_body(&mut out);
        let body_len = (out.len() - FRAME_HEADER_LEN) as u64;
        if let Some(slot) = out.get_mut(8..FRAME_HEADER_LEN) {
            slot.copy_from_slice(&body_len.to_le_bytes());
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Reconstructs a summary from [`to_bytes`](WireCodec::to_bytes)
    /// output, rejecting corrupt, truncated, mis-typed or
    /// invariant-violating frames with an error — this path never
    /// panics on untrusted input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let framed_len = bytes.len().checked_sub(8).ok_or(CodecError::Truncated)?;
        let (framed, sum_bytes) = bytes
            .split_at_checked(framed_len)
            .ok_or(CodecError::Truncated)?;
        let declared: [u8; 8] = sum_bytes.try_into().map_err(|_| CodecError::Truncated)?;
        if fnv1a64(framed) != u64::from_le_bytes(declared) {
            return Err(CodecError::ChecksumMismatch);
        }
        let mut r = Reader::new(framed);
        if r.bytes(4)? != WIRE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let kind = r.u8()?;
        if kind != Self::WIRE_KIND {
            return Err(CodecError::BadKind {
                expected: Self::WIRE_KIND,
                got: kind,
            });
        }
        let _reserved = r.bytes(2)?;
        let body_len = r.read_len()?;
        if body_len != r.remaining() {
            // The length prefix must account for exactly the rest of
            // the frame; anything else is a splice or truncation.
            return Err(if body_len > r.remaining() {
                CodecError::Truncated
            } else {
                CodecError::TrailingBytes
            });
        }
        let body = r.bytes(body_len)?;
        let decoded = Self::decode_body(body)?;
        decoded.check_invariants()?;
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_values() {
        // Public FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8(), Ok(1));
        assert_eq!(r.u32(), Err(CodecError::Truncated));
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.bytes(2), Ok(&[2u8, 3][..]));
        assert!(r.done().is_ok());
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn u64_vec_rejects_forged_count_before_allocating() {
        // Declares u64::MAX elements with only 4 bytes behind it.
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        let mut r = Reader::new(&bytes);
        assert!(r.u64_vec().is_err());
    }

    #[test]
    fn u64_slice_roundtrip() {
        let xs = [7u64, 0, u64::MAX, 42];
        let mut out = Vec::new();
        put_u64_slice(&mut out, &xs);
        let mut r = Reader::new(&out);
        assert_eq!(r.u64_vec().expect("roundtrip"), xs.to_vec());
        assert!(r.done().is_ok());
    }
}
