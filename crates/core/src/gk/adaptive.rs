//! `GKAdaptive` — the variant of GK its authors actually implemented
//! (§2.1.1): insert `(v, 1, g_i + Δ_i − 1)` before the successor, then
//! try to remove *one* removable tuple, located with a min-heap keyed
//! by `g_i + g_{i+1} + Δ_{i+1}`.
//!
//! The heap key of a tuple depends on its successor, so insertions and
//! removals invalidate neighbours' keys. We use the classic *lazy
//! versioned heap*: every key change bumps the tuple's version and
//! pushes a fresh entry; stale entries are discarded when popped.
//! Tuples live in a slab arena threaded as a doubly-linked list, with
//! a `BTreeMap` ordered index for successor search — the pointer-
//! chasing structure whose cache behaviour §4.2.3 of the paper
//! dissects (the "big speed loss when space exceeds the CPU cache").

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use super::{query_quantile, query_quantile_grid, query_rank, threshold, Tuple};
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<T> {
    v: T,
    g: u64,
    delta: u64,
    prev: u32,
    next: u32,
    /// Bumped whenever this tuple's heap key changes; stale heap
    /// entries carry an old version and are dropped at pop time.
    version: u32,
    /// Never-reused insertion sequence number: the ordered-index
    /// tie-breaker among equal element values. Slot ids are recycled
    /// through the free list, so they cannot serve as the tie-breaker —
    /// among equal values, BTreeMap order must equal list order, which
    /// insertion order provides (new duplicates always append after
    /// their equals).
    seq: u64,
    alive: bool,
}

/// The heap-based adaptive Greenwald–Khanna summary (deterministic,
/// comparison-based; heuristic space, empirically excellent).
#[derive(Debug, Clone)]
pub struct GkAdaptive<T: Ord + Copy> {
    eps: f64,
    n: u64,
    arena: Vec<Slot<T>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    next_seq: u64,
    /// Ordered index for successor search, keyed by (value, insertion
    /// seq) so that equal values sort in list order.
    index: BTreeMap<(T, u64), u32>,
    /// Min-heap of (key, slot, version); key = g_i + g_{i+1} + Δ_{i+1}.
    heap: BinaryHeap<Reverse<(u64, u32, u32)>>,
}

impl<T: Ord + Copy> GkAdaptive<T> {
    /// Creates a summary with error guarantee ε.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        Self {
            eps,
            n: 0,
            arena: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            next_seq: 0,
            index: BTreeMap::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Number of tuples currently held.
    pub fn tuple_count(&self) -> usize {
        self.len
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Materializes the tuples in sorted order (queries, tests).
    pub fn tuples(&self) -> Vec<Tuple<T>> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            let s = &self.arena[cur as usize];
            out.push(Tuple {
                v: s.v,
                g: s.g,
                delta: s.delta,
            });
            cur = s.next;
        }
        out
    }

    fn alloc(&mut self, v: T, g: u64, delta: u64) -> u32 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(id) = self.free.pop() {
            let s = &mut self.arena[id as usize];
            s.v = v;
            s.g = g;
            s.delta = delta;
            s.prev = NIL;
            s.next = NIL;
            s.version = s.version.wrapping_add(1);
            s.seq = seq;
            s.alive = true;
            id
        } else {
            let id = self.arena.len() as u32;
            self.arena.push(Slot {
                v,
                g,
                delta,
                prev: NIL,
                next: NIL,
                version: 0,
                seq,
                alive: true,
            });
            id
        }
    }

    /// Pushes a fresh heap entry for `id` (must have a successor).
    fn push_key(&mut self, id: u32) {
        let s = &self.arena[id as usize];
        debug_assert!(s.alive);
        if s.next == NIL {
            return; // the max tuple has no key and is never removed
        }
        let succ = &self.arena[s.next as usize];
        let key = s.g + succ.g + succ.delta;
        self.heap.push(Reverse((key, id, s.version)));
    }

    /// Bumps a slot's version (invalidating old heap entries) and
    /// pushes its recomputed key.
    fn refresh_key(&mut self, id: u32) {
        if id == NIL {
            return;
        }
        let s = &mut self.arena[id as usize];
        if !s.alive {
            return;
        }
        s.version = s.version.wrapping_add(1);
        self.push_key(id);
    }

    /// Unlinks `id`, folding its `g` into the successor, and refreshes
    /// the affected neighbour keys.
    fn remove(&mut self, id: u32) {
        let (prev, next, g) = {
            let s = &self.arena[id as usize];
            (s.prev, s.next, s.g)
        };
        debug_assert!(next != NIL, "only tuples with a successor are removable");
        let (v, seq) = {
            let s = &self.arena[id as usize];
            (s.v, s.seq)
        };
        self.index.remove(&(v, seq));
        self.arena[next as usize].g += g;
        self.arena[next as usize].prev = prev;
        if prev == NIL {
            self.head = next;
        } else {
            self.arena[prev as usize].next = next;
        }
        self.arena[id as usize].alive = false;
        self.arena[id as usize].version = self.arena[id as usize].version.wrapping_add(1);
        self.free.push(id);
        self.len -= 1;
        // Keys depending on the changed g/links: predecessor (new
        // successor & its g) and the successor itself (its own g grew).
        self.refresh_key(prev);
        self.refresh_key(next);
    }

    /// Pops stale heap entries and removes the top tuple if its key is
    /// within the capacity threshold. Returns whether a removal
    /// happened.
    fn try_remove_one(&mut self, cap: u64) -> bool {
        while let Some(&Reverse((key, id, version))) = self.heap.peek() {
            let s = &self.arena[id as usize];
            // Head and tail are never removed: the summary keeps the
            // exact minimum and maximum, which the query guarantee needs.
            if !s.alive || s.version != version || s.next == NIL || id == self.head {
                self.heap.pop();
                continue;
            }
            if key <= cap {
                self.heap.pop();
                self.remove(id);
                self.maybe_shrink_heap();
                return true;
            }
            return false;
        }
        false
    }

    /// Rebuilds the heap when stale entries dominate (keeps the heap
    /// O(|L|) so space accounting stays honest).
    fn maybe_shrink_heap(&mut self) {
        if self.heap.len() > 4 * self.len.max(16) {
            let mut fresh = BinaryHeap::with_capacity(self.len);
            for e in self.heap.drain() {
                let Reverse((_, id, version)) = e;
                let s = &self.arena[id as usize];
                if s.alive && s.version == version && s.next != NIL {
                    fresh.push(e);
                }
            }
            self.heap = fresh;
        }
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for GkAdaptive<T> {
    /// GKAdaptive invariants (§2.1.1): the GK tuple invariants over the
    /// materialized list, plus the arena bookkeeping — doubly-linked
    /// list consistency (prev/next symmetry, head/tail sentinels, live
    /// count), the ordered index mirroring the list one-to-one, and the
    /// lazy heap staying within its rebuild bound.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "GKAdaptive";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "gk.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        // Walk the list, checking link symmetry and liveness.
        let mut count = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            ensure(count <= self.len, ALG, "gkadaptive.list_cycle", || {
                format!("list walk exceeded len {} — cycle suspected", self.len)
            })?;
            let s = &self.arena[cur as usize];
            ensure(s.alive, ALG, "gkadaptive.dead_slot_linked", || {
                format!("slot {cur} is linked but not alive")
            })?;
            ensure(s.prev == prev, ALG, "gkadaptive.link_symmetry", || {
                format!("slot {cur}: prev = {} but walked from {prev}", s.prev)
            })?;
            ensure(
                self.index.get(&(s.v, s.seq)) == Some(&cur),
                ALG,
                "gkadaptive.index_mirror",
                || format!("slot {cur} missing from (or misfiled in) the ordered index"),
            )?;
            count += 1;
            prev = cur;
            cur = s.next;
        }
        ensure(prev == self.tail, ALG, "gkadaptive.tail_sentinel", || {
            format!("list ends at slot {prev}, but tail = {}", self.tail)
        })?;
        ensure(count == self.len, ALG, "gkadaptive.len_count", || {
            format!("walked {count} live slots, len says {}", self.len)
        })?;
        ensure(
            count == self.index.len(),
            ALG,
            "gkadaptive.index_size",
            || {
                format!(
                    "index holds {} entries for {count} live slots",
                    self.index.len()
                )
            },
        )?;
        ensure(
            self.heap.len() <= 4 * self.len.max(16) + self.len + 1,
            ALG,
            "gkadaptive.heap_bound",
            || {
                format!(
                    "lazy heap holds {} entries for {} tuples — rebuild bound breached",
                    self.heap.len(),
                    self.len
                )
            },
        )?;
        super::audit_tuples(&self.tuples(), self.eps, self.n, ALG)
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for GkAdaptive<T> {
    /// Bulk insert with a sort-then-insert fast path: the batch is
    /// sorted once, so each element's successor search hits the
    /// ordered index in a warm, nearby position and the one-removal
    /// heuristic prunes along a single left-to-right sweep. The
    /// summary differs structurally from itemwise arrival order (GK
    /// summaries are order-sensitive) but carries the identical
    /// `g+Δ ≤ ⌊2εn⌋` guarantee, so rank answers agree within `ε·n`.
    fn insert_batch(&mut self, xs: &[T]) {
        let mut sorted = xs.to_vec();
        sorted.sort_unstable();
        for &x in &sorted {
            self.insert(x);
        }
    }

    fn insert(&mut self, x: T) {
        self.n += 1;
        let cap = threshold(self.eps, self.n);

        // Successor: smallest v_i with v_i > x (duplicates insert after
        // their equals, matching §2.1's "find its successor" rule).
        let succ = self
            .index
            .range((x, u64::MAX)..)
            .next()
            .map(|(_, &id)| id)
            .unwrap_or(NIL);

        let delta = if succ == NIL || self.len == 0 || succ == self.head {
            // New maximum, first element, or new minimum: its true rank
            // is known exactly, so pin it (Δ = 0). Pinning the extremes
            // is what makes a two-sided-valid tuple exist for every
            // target rank (see `query_quantile`).
            0
        } else {
            let sc = &self.arena[succ as usize];
            (sc.g + sc.delta).saturating_sub(1)
        };
        let id = self.alloc(x, 1, delta);
        // Link before succ (or at tail).
        if succ == NIL {
            let old_tail = self.tail;
            self.arena[id as usize].prev = old_tail;
            if old_tail != NIL {
                self.arena[old_tail as usize].next = id;
            } else {
                self.head = id;
            }
            self.tail = id;
        } else {
            let prev = self.arena[succ as usize].prev;
            self.arena[id as usize].prev = prev;
            self.arena[id as usize].next = succ;
            self.arena[succ as usize].prev = id;
            if prev == NIL {
                self.head = id;
            } else {
                self.arena[prev as usize].next = id;
            }
        }
        let seq = self.arena[id as usize].seq;
        self.index.insert((x, seq), id);
        self.len += 1;

        // New tuple's key, and the predecessor's (its successor changed).
        self.push_key(id);
        let prev = self.arena[id as usize].prev;
        self.refresh_key(prev);
        // The old tail gained a successor when appending at the end.
        if succ == NIL && prev != NIL {
            // refresh_key(prev) above already covered it.
        }

        // §2.1.1 step 2: first check the new tuple itself, then the
        // heap top; remove at most one tuple.
        let removable_self = id != self.head && {
            let s = &self.arena[id as usize];
            s.next != NIL && {
                let sc = &self.arena[s.next as usize];
                s.g + sc.g + sc.delta <= cap
            }
        };
        if removable_self {
            self.remove(id);
        } else {
            self.try_remove_one(cap);
        }
        self.maybe_shrink_heap();
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        query_rank(&self.tuples(), x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        query_quantile(&self.tuples(), self.n, self.eps, phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        query_quantile_grid(
            &self.tuples(),
            self.n,
            self.eps,
            &sqs_util::exact::probe_phis(eps),
        )
    }

    fn name(&self) -> &'static str {
        "GKAdaptive"
    }
}

impl<T: Ord + Copy> SpaceUsage for GkAdaptive<T> {
    fn space_bytes(&self) -> usize {
        // Per live tuple: v,g,Δ (3 words) + prev/next pointers (2) +
        // index entry (key word + 2 tree pointers = 3). The lazy heap
        // adds 2 words (key + slot ref) per entry.
        words(self.len * (3 + 2 + 3) + self.heap.len() * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gk::check_invariants;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
    use sqs_util::rng::Xoshiro256pp;

    fn check_errors(eps: f64, data: Vec<u64>) {
        let mut s = GkAdaptive::new(eps);
        for &x in &data {
            s.insert(x);
        }
        check_invariants(&s.tuples(), eps, s.n()).unwrap();
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "max error {max_err} > eps {eps}");
    }

    #[test]
    fn errors_within_eps_random_order() {
        let mut rng = Xoshiro256pp::new(2);
        let data: Vec<u64> = (0..20_000).map(|_| rng.next_below(1 << 24)).collect();
        check_errors(0.02, data);
    }

    #[test]
    fn insert_batch_is_rank_equivalent_to_itemwise() {
        // The sort-then-insert path produces a structurally different
        // summary (GK is arrival-order-sensitive) under the same
        // `g+Δ ≤ ⌊2εn⌋` invariant, so both sides must rank every probe
        // within ε·n of the truth — and hence within 2ε·n of each other.
        let eps = 0.02;
        let mut rng = Xoshiro256pp::new(92);
        let data: Vec<u64> = (0..30_000).map(|_| rng.next_below(1 << 24)).collect();
        let mut itemwise = GkAdaptive::new(eps);
        for &x in &data {
            itemwise.insert(x);
        }
        let mut batched = GkAdaptive::new(eps);
        for chunk in data.chunks(1511) {
            batched.insert_batch(chunk);
        }
        assert_eq!(itemwise.n(), batched.n());
        check_invariants(&batched.tuples(), eps, batched.n()).unwrap();
        let slack = (2.0 * eps * data.len() as f64) as u64;
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, batched.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "batched max error {max_err} > eps {eps}");
        for x in [1u64 << 20, 1 << 22, 1 << 23] {
            let (ri, rb) = (itemwise.rank_estimate(x), batched.rank_estimate(x));
            assert!(ri.abs_diff(rb) <= slack, "x={x}: {ri} vs {rb}");
        }
    }

    #[test]
    fn errors_within_eps_sorted() {
        check_errors(0.05, (0..10_000u64).collect());
    }

    #[test]
    fn errors_within_eps_reverse_sorted() {
        check_errors(0.05, (0..10_000u64).rev().collect());
    }

    #[test]
    fn errors_within_eps_duplicates() {
        check_errors(0.05, (0..10_000u64).map(|i| i % 13).collect());
    }

    #[test]
    fn linked_list_stays_consistent() {
        let mut rng = Xoshiro256pp::new(3);
        let mut s = GkAdaptive::new(0.1);
        for _ in 0..5_000 {
            s.insert(rng.next_below(1000));
        }
        let tuples = s.tuples();
        assert_eq!(tuples.len(), s.tuple_count());
        // Sorted and g-sums match n.
        for w in tuples.windows(2) {
            assert!(w[0].v <= w[1].v);
        }
        assert_eq!(tuples.iter().map(|t| t.g).sum::<u64>(), 5_000);
    }

    #[test]
    fn space_is_sublinear_and_bounded_heap() {
        let mut rng = Xoshiro256pp::new(4);
        let mut s = GkAdaptive::new(0.01);
        for _ in 0..100_000u64 {
            s.insert(rng.next_below(1 << 30));
        }
        assert!(s.tuple_count() < 10_000, "tuples = {}", s.tuple_count());
        // Lazy heap must stay within its rebuild bound.
        assert!(s.heap.len() <= 4 * s.tuple_count().max(16) + s.tuple_count());
    }

    #[test]
    fn singleton_and_empty() {
        let mut s = GkAdaptive::<u64>::new(0.1);
        assert_eq!(s.quantile(0.5), None);
        s.insert(7);
        assert_eq!(s.quantile(0.5), Some(7));
        assert_eq!(s.rank_estimate(100), 0);
    }

    #[test]
    fn all_equal_stream_collapses() {
        let mut s = GkAdaptive::new(0.01);
        for _ in 0..10_000 {
            s.insert(5u64);
        }
        assert_eq!(s.quantile(0.5), Some(5));
        assert!(s.tuple_count() < 200, "tuples = {}", s.tuple_count());
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    fn filled() -> GkAdaptive<u64> {
        let mut s = GkAdaptive::new(0.02);
        for x in 0..10_000u64 {
            s.insert(x % 1_009);
        }
        s
    }

    #[test]
    fn auditor_catches_len_drift() {
        let mut s = filled();
        s.len += 1;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "GKAdaptive");
        assert_eq!(err.invariant, "gkadaptive.len_count");
    }

    #[test]
    fn auditor_catches_index_desync() {
        let mut s = filled();
        let key = *s.index.keys().next().expect("nonempty index");
        s.index.remove(&key);
        let err = s.check_invariants().unwrap_err();
        assert!(
            err.invariant == "gkadaptive.index_mirror" || err.invariant == "gkadaptive.index_size",
            "unexpected invariant {}",
            err.invariant
        );
    }
}
