//! `GKArray` — the journal version's new buffered GK variant (§2.1.2).
//!
//! Instead of a pointer-based search structure, tuples live in a flat
//! array and incoming elements are collected in a buffer of size
//! Θ(|L|). When the buffer fills it is sorted and merged into the
//! tuple array in a single linear pass; during the merge each buffered
//! element receives its `(v, 1, g_i + Δ_i − 1)` tuple from its
//! original successor and every tuple (old or new) that has become
//! removable is folded into its successor on the spot. Sorting and
//! merging are cache-friendly, which is the entire point: same
//! pruning rule as [`GkAdaptive`](super::GkAdaptive), much faster in
//! practice (Figures 5e/5f).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use super::{query_quantile, query_quantile_grid, query_rank, threshold, Tuple};
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

/// Minimum buffer capacity (the Θ(|L|) sizing needs a floor while the
/// summary is still tiny).
const MIN_BUFFER: usize = 64;

/// The buffered, array-backed Greenwald–Khanna summary
/// (deterministic, comparison-based; amortized O(log |L|) update).
///
/// # Example
///
/// ```
/// use sqs_core::{gk::GkArray, QuantileSummary};
///
/// let mut s = GkArray::new(0.01); // ±1% rank error, guaranteed
/// for x in 0..100_000u64 {
///     s.insert(x);
/// }
/// let median = s.quantile(0.5).unwrap();
/// assert!((49_000..=51_000).contains(&median));
/// ```

#[derive(Debug, Clone)]
pub struct GkArray<T> {
    eps: f64,
    n: u64,
    tuples: Vec<Tuple<T>>,
    buffer: Vec<T>,
    buffer_cap: usize,
    /// Buffer size as a multiple of |L| (1.0 = the paper's Θ(|L|);
    /// swept by the ablation experiment).
    buffer_factor: f64,
}

impl<T: Ord + Copy> GkArray<T> {
    /// Creates a summary with error guarantee ε.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64) -> Self {
        Self::with_buffer_factor(eps, 1.0)
    }

    /// Creates a summary whose buffer holds `factor · |L|` elements
    /// instead of the default `|L|` — the knob behind the buffer-size
    /// ablation (DESIGN.md). Small factors approach GKAdaptive's
    /// per-element behaviour; large factors amortize harder at the
    /// cost of staler summaries between flushes.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `factor > 0`.
    pub fn with_buffer_factor(eps: f64, factor: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(factor > 0.0, "buffer factor must be positive");
        Self {
            eps,
            n: 0,
            tuples: Vec::new(),
            buffer: Vec::with_capacity(MIN_BUFFER),
            buffer_cap: MIN_BUFFER,
            buffer_factor: factor,
        }
    }

    /// Number of tuples currently held (excluding buffered elements).
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Tuples after flushing the buffer (tests and inspection).
    pub fn tuples(&mut self) -> &[Tuple<T>] {
        self.flush();
        &self.tuples
    }

    /// Sorts the buffer and merges it into the tuple array (§2.1.2
    /// steps 1–3). A no-op on an empty buffer.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable();
        let p = threshold(self.eps, self.n);

        let old = std::mem::take(&mut self.tuples);
        let mut out: Vec<Tuple<T>> = Vec::with_capacity(old.len() + self.buffer.len());
        // `pending` is the last tuple produced but not yet emitted: when
        // the next tuple arrives we either fold `pending` into it
        // (removability rule g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋) or emit it.
        let mut pending: Option<Tuple<T>> = None;
        let emit = |out: &mut Vec<Tuple<T>>, pending: &mut Option<Tuple<T>>, mut cur: Tuple<T>| {
            if let Some(prev) = pending.take() {
                // Never fold the overall first tuple (keeps the minimum
                // pinned); the last is safe because it ends as pending.
                if !out.is_empty() && prev.g + cur.g + cur.delta <= p {
                    cur.g += prev.g;
                } else {
                    out.push(prev);
                }
            }
            *pending = Some(cur);
        };

        let mut li = 0; // cursor into old tuples
        for &v in &self.buffer {
            // Emit all existing tuples with element ≤ v first (the
            // successor of v is the smallest tuple element > v).
            while li < old.len() && old[li].v <= v {
                emit(&mut out, &mut pending, old[li]);
                li += 1;
            }
            let delta = if li < old.len() && !(out.is_empty() && pending.is_none()) {
                (old[li].g + old[li].delta).saturating_sub(1)
            } else {
                0 // new maximum, or new minimum of an empty summary
            };
            emit(&mut out, &mut pending, Tuple { v, g: 1, delta });
        }
        while li < old.len() {
            emit(&mut out, &mut pending, old[li]);
            li += 1;
        }
        if let Some(last) = pending {
            out.push(last);
        }
        self.tuples = out;
        self.buffer.clear();
        // §2.1.2: the buffer tracks Θ(|L|).
        self.buffer_cap =
            ((self.tuples.len() as f64 * self.buffer_factor) as usize).max(MIN_BUFFER);
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for GkArray<T> {
    /// GKArray invariants (§2.1.2): sorted tuple array with
    /// `g+Δ ≤ ⌊2εn⌋` and `Σg` equal to the folded element count, plus
    /// the buffer/segment bookkeeping — the buffer never exceeds its
    /// Θ(|L|) capacity and the capacity tracks the tuple count.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "GKArray";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "gk.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        ensure(
            self.buffer.len() <= self.buffer_cap,
            ALG,
            "gkarray.buffer_bound",
            || {
                format!(
                    "{} buffered > capacity {}",
                    self.buffer.len(),
                    self.buffer_cap
                )
            },
        )?;
        ensure(
            self.buffer_cap
                >= ((self.tuples.len() as f64 * self.buffer_factor) as usize).max(MIN_BUFFER),
            ALG,
            "gkarray.buffer_tracks_tuples",
            || {
                format!(
                    "buffer capacity {} below Θ(|L|) sizing for {} tuples",
                    self.buffer_cap,
                    self.tuples.len()
                )
            },
        )?;
        let folded = self.n - self.buffer.len() as u64;
        super::audit_tuples(&self.tuples, self.eps, folded, ALG)
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for GkArray<T> {
    fn insert(&mut self, x: T) {
        self.n += 1;
        self.buffer.push(x);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    /// Bulk insert: copies whole slices into the element buffer and
    /// flushes exactly at the itemwise flush boundaries (the flush
    /// sorts, so pre-sorting here would be redundant work). The
    /// resulting summary state is identical to element-wise insertion.
    fn insert_batch(&mut self, xs: &[T]) {
        let mut rest = xs;
        while !rest.is_empty() {
            let room = self.buffer_cap - self.buffer.len();
            let take = room.min(rest.len()).max(1);
            let (chunk, tail) = rest.split_at(take);
            self.buffer.extend_from_slice(chunk);
            self.n += take as u64;
            rest = tail;
            if self.buffer.len() >= self.buffer_cap {
                self.flush();
            }
        }
        #[cfg(any(test, feature = "audit"))]
        sqs_util::audit::CheckInvariants::assert_invariants(self);
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        self.flush();
        query_rank(&self.tuples, x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        self.flush();
        query_quantile(&self.tuples, self.n, self.eps, phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        self.flush();
        query_quantile_grid(
            &self.tuples,
            self.n,
            self.eps,
            &sqs_util::exact::probe_phis(eps),
        )
    }

    fn name(&self) -> &'static str {
        "GKArray"
    }
}

impl<T> SpaceUsage for GkArray<T> {
    fn space_bytes(&self) -> usize {
        // 3 words per tuple + 1 word per buffer slot (capacity, since
        // the buffer is pre-sized to Θ(|L|)).
        words(self.tuples.len() * 3 + self.buffer_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gk::check_invariants;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
    use sqs_util::rng::Xoshiro256pp;

    #[test]
    fn insert_batch_is_rank_equivalent_to_itemwise() {
        // Bulk insertion hits the same flush boundaries as itemwise
        // insertion, so the tuple arrays are identical.
        let mut rng = Xoshiro256pp::new(81);
        let data: Vec<u64> = (0..60_000).map(|_| rng.next_below(1 << 20)).collect();
        let mut itemwise = GkArray::new(0.01);
        let mut batched = GkArray::new(0.01);
        for &x in &data {
            itemwise.insert(x);
        }
        for chunk in data.chunks(769) {
            batched.insert_batch(chunk);
        }
        assert_eq!(itemwise.n(), batched.n());
        assert_eq!(itemwise.tuples(), batched.tuples());
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(itemwise.quantile(phi), batched.quantile(phi));
        }
    }

    fn check_errors(eps: f64, data: Vec<u64>) {
        let mut s = GkArray::new(eps);
        for &x in &data {
            s.insert(x);
        }
        let n = s.n();
        check_invariants(s.tuples(), eps, n).unwrap();
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "max error {max_err} > eps {eps}");
    }

    #[test]
    fn errors_within_eps_random_order() {
        let mut rng = Xoshiro256pp::new(5);
        let data: Vec<u64> = (0..30_000).map(|_| rng.next_below(1 << 24)).collect();
        check_errors(0.02, data);
    }

    #[test]
    fn errors_within_eps_sorted() {
        check_errors(0.05, (0..10_000u64).collect());
    }

    #[test]
    fn errors_within_eps_reverse_sorted() {
        check_errors(0.05, (0..10_000u64).rev().collect());
    }

    #[test]
    fn errors_within_eps_semi_sorted_runs() {
        // MPCAT-like arrival: sorted chunks of varying length.
        let mut rng = Xoshiro256pp::new(6);
        let mut data = Vec::new();
        while data.len() < 20_000 {
            let run = 10 + rng.next_below(500) as usize;
            let base = rng.next_below(1 << 20);
            data.extend((0..run as u64).map(|i| base + i));
        }
        check_errors(0.02, data);
    }

    #[test]
    fn tiny_eps_large_dup_stream() {
        check_errors(0.01, (0..50_000u64).map(|i| i % 101).collect());
    }

    #[test]
    fn query_flushes_buffer() {
        let mut s = GkArray::new(0.1);
        for x in 0..10u64 {
            s.insert(x);
        }
        // Fewer than MIN_BUFFER inserts — everything still buffered.
        assert_eq!(s.tuple_count(), 0);
        // The flush compresses (⌊2εn⌋ = 2), so the answer may be one
        // rank off the exact median; it must stay within ε·n = 1 rank.
        let q = s.quantile(0.5).unwrap();
        assert!((4..=6).contains(&q), "median = {q}");
        assert!(s.tuple_count() > 0);
    }

    #[test]
    fn space_is_sublinear() {
        let mut rng = Xoshiro256pp::new(7);
        let mut s = GkArray::new(0.01);
        for _ in 0..200_000u64 {
            s.insert(rng.next_below(1 << 30));
        }
        s.flush();
        assert!(s.tuple_count() < 10_000, "tuples = {}", s.tuple_count());
    }

    #[test]
    fn agrees_with_adaptive_on_error_magnitude() {
        // Not bit-identical (different removal schedules) but both must
        // stay within ε; sanity-check they land in the same ballpark.
        let mut rng = Xoshiro256pp::new(8);
        let data: Vec<u64> = (0..20_000).map(|_| rng.next_below(1 << 16)).collect();
        let oracle = ExactQuantiles::new(data.clone());
        let eps = 0.02;
        let mut a = GkArray::new(eps);
        let mut b = crate::gk::GkAdaptive::new(eps);
        for &x in &data {
            a.insert(x);
            b.insert(x);
        }
        for phi in [0.1, 0.5, 0.9] {
            assert!(oracle.quantile_error(phi, a.quantile(phi).unwrap()) <= eps);
            assert!(oracle.quantile_error(phi, b.quantile(phi).unwrap()) <= eps);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut s = GkArray::<u64>::new(0.2);
        assert_eq!(s.quantile(0.3), None);
        s.insert(9);
        assert_eq!(s.quantile(0.3), Some(9));
    }

    #[test]
    fn buffer_capacity_tracks_tuples() {
        let mut rng = Xoshiro256pp::new(9);
        let mut s = GkArray::new(0.001);
        for _ in 0..100_000u64 {
            s.insert(rng.next_below(1 << 30));
        }
        s.flush();
        assert_eq!(s.buffer_cap, s.tuple_count().max(MIN_BUFFER));
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_unsorted_tuples() {
        let mut s = GkArray::new(0.02);
        for x in 0..10_000u64 {
            s.insert(x % 499);
        }
        let last = s.tuples.len() - 1;
        s.tuples.swap(0, last);
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "GKArray");
        assert_eq!(err.invariant, "gk.sorted");
    }

    #[test]
    fn auditor_catches_buffer_overrun() {
        let mut s = GkArray::new(0.02);
        for x in 0..5_000u64 {
            s.insert(x);
        }
        s.buffer_cap = 0;
        s.buffer.push(1);
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "gkarray.buffer_bound"
        );
    }
}
