//! The Greenwald–Khanna family of deterministic quantile summaries
//! (§2.1 of the paper).
//!
//! All three variants maintain the same logical object: a sorted list
//! of tuples `(v_i, g_i, Δ_i)` where the `v_i` are stream elements and
//!
//! 1. `Σ_{j≤i} g_j ≤ r(v_i) + 1 ≤ Σ_{j≤i} g_j + Δ_i` — each tuple
//!    brackets the true rank of its element, and
//! 2. `g_i + Δ_i ≤ ⌊2εn⌋` — no rank gap is wide enough to break the
//!    ε guarantee.
//!
//! They differ in *how tuples are removed* to keep the list short:
//!
//! * [`GkTheory`] — the original analyzed algorithm: periodic
//!   COMPRESS sweep over band "subtrees", O((1/ε)·log(εn)) space.
//! * [`GkAdaptive`] — the variant the GK authors actually implemented:
//!   after each insertion remove one removable tuple if any exists,
//!   located with a min-heap (§2.1.1).
//! * [`GkArray`] — the journal version's new variant: buffer incoming
//!   elements and fold them into a flat tuple array with a sort+merge
//!   pass (§2.1.2); algorithmically identical pruning rule, far more
//!   cache-friendly.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

mod adaptive;
mod array;
mod theory;

pub use adaptive::GkAdaptive;
pub use array::GkArray;
pub use theory::GkTheory;

/// One GK tuple: an element `v` with rank-bracketing bookkeeping.
///
/// `g` is the gap from the previous tuple's minimum rank
/// (`rmin_i = Σ_{j≤i} g_j`), and `delta` the extra slack
/// (`rmax_i = rmin_i + Δ_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple<T> {
    /// The element from the stream.
    pub v: T,
    /// Rank-gap to the previous tuple.
    pub g: u64,
    /// Rank slack: `rmax − rmin` for this element.
    pub delta: u64,
}

/// `⌊2εn⌋`, the capacity threshold of invariant (2).
#[inline]
pub(crate) fn threshold(eps: f64, n: u64) -> u64 {
    (2.0 * eps * n as f64).floor() as u64
}

/// Answers a φ-quantile query over a sorted tuple list (shared by all
/// variants); `eps` is the summary's error parameter.
///
/// GK's extraction guarantee (§2.1): for the 1-indexed target rank
/// `r = ⌊φn⌋ + 1`, invariant (2) ensures some tuple satisfies both
/// `rmin_i ≥ r − εn` and `rmax_i ≤ r + εn`, and any such tuple's
/// element has true rank within `εn` of the target (by invariant (1)).
/// Among the tuples satisfying the two-sided condition we return the
/// one whose bracket midpoint is closest to `r`, which makes answers
/// exact on an uncompressed list. If rounding leaves no tuple
/// two-sided-valid we fall back to the closest midpoint overall.
pub(crate) fn query_quantile<T: Ord + Copy>(
    tuples: &[Tuple<T>],
    n: u64,
    eps: f64,
    phi: f64,
) -> Option<T> {
    crate::traits::check_phi(phi);
    if tuples.is_empty() || n == 0 {
        return None;
    }
    let target = (phi * n as f64).floor() + 1.0;
    let margin = eps * n as f64;
    let mut rmin = 0u64;
    let mut best_valid: Option<(f64, T)> = None;
    let mut best_any: Option<(f64, T)> = None;
    for t in tuples {
        rmin += t.g;
        let rmax = rmin + t.delta;
        let mid = rmin as f64 + t.delta as f64 / 2.0;
        let dist = (mid - target).abs();
        if rmin as f64 >= target - margin && rmax as f64 <= target + margin {
            match best_valid {
                Some((d, _)) if d <= dist => {}
                _ => best_valid = Some((dist, t.v)),
            }
        }
        match best_any {
            Some((d, _)) if d <= dist => {}
            _ => best_any = Some((dist, t.v)),
        }
        if rmin as f64 > target + margin {
            break; // every later bracket is farther and invalid
        }
    }
    best_valid.or(best_any).map(|(_, v)| v)
}

/// Answers the whole φ-grid in one pass: precomputes the rank
/// brackets once, then serves each target with a binary search over
/// the (monotone) `rmin` array plus a local validity scan — the same
/// selection rule as [`query_quantile`], amortized for the
/// `1/ε − 1`-probe grids the harness uses (§4.1.2).
pub(crate) fn query_quantile_grid<T: Ord + Copy>(
    tuples: &[Tuple<T>],
    n: u64,
    eps: f64,
    phis: &[f64],
) -> Vec<(f64, T)> {
    if tuples.is_empty() || n == 0 {
        return Vec::new();
    }
    let mut rmin = 0u64;
    let brackets: Vec<(u64, u64, f64, T)> = tuples
        .iter()
        .map(|t| {
            rmin += t.g;
            (
                rmin,
                rmin + t.delta,
                rmin as f64 + t.delta as f64 / 2.0,
                t.v,
            )
        })
        .collect();
    let margin = eps * n as f64;
    phis.iter()
        .map(|&phi| {
            crate::traits::check_phi(phi);
            let target = (phi * n as f64).floor() + 1.0;
            // Window of tuples whose rmin can possibly be valid or
            // closest: rmin ∈ [target − margin − maxgap, target + margin].
            let lo_rank = (target - margin).max(0.0) as u64;
            let hi_rank = (target + margin) as u64;
            let start = brackets
                .partition_point(|b| b.0 < lo_rank)
                .saturating_sub(1);
            let mut best_valid: Option<(f64, T)> = None;
            let mut best_any: Option<(f64, T)> = None;
            for &(rmin, rmax, mid, v) in &brackets[start..] {
                let dist = (mid - target).abs();
                if rmin as f64 >= target - margin && rmax as f64 <= target + margin {
                    match best_valid {
                        Some((d, _)) if d <= dist => {}
                        _ => best_valid = Some((dist, v)),
                    }
                }
                match best_any {
                    Some((d, _)) if d <= dist => {}
                    _ => best_any = Some((dist, v)),
                }
                if rmin > hi_rank {
                    break;
                }
            }
            let v = best_valid
                .or(best_any)
                .map(|(_, v)| v)
                .expect("GK invariant: summary holds at least the sentinel tuples");
            (phi, v)
        })
        .collect()
}

/// Estimated rank of `x` over a sorted tuple list: the midpoint of the
/// rank bracket of the largest tuple element ≤ `x`.
pub(crate) fn query_rank<T: Ord + Copy>(tuples: &[Tuple<T>], x: T) -> u64 {
    let mut rmin = 0u64;
    let mut best = 0u64;
    for t in tuples {
        if t.v > x {
            break;
        }
        rmin += t.g;
        best = rmin + t.delta / 2;
    }
    best.saturating_sub(1)
}

/// Debug/test helper: verifies invariant (2) (`g+Δ ≤ ⌊2εn⌋`) for every
/// tuple except the first (whose `g+Δ` the algorithms pin to exact),
/// and that elements are sorted. Returns a description of the first
/// violation.
pub fn check_invariants<T: Ord + Copy + std::fmt::Debug>(
    tuples: &[Tuple<T>],
    eps: f64,
    n: u64,
) -> Result<(), String> {
    let cap = threshold(eps, n).max(1);
    let mut total_g = 0u64;
    for (i, t) in tuples.iter().enumerate() {
        if i > 0 {
            if t.v < tuples[i - 1].v {
                return Err(format!(
                    "tuples out of order at {i}: {:?} < {:?}",
                    t.v,
                    tuples[i - 1].v
                ));
            }
            if t.g + t.delta > cap {
                return Err(format!(
                    "capacity violated at {i}: g+Δ = {} > ⌊2εn⌋ = {cap}",
                    t.g + t.delta
                ));
            }
        }
        total_g += t.g;
    }
    if total_g != n && !tuples.is_empty() {
        return Err(format!("Σg = {total_g} ≠ n = {n}"));
    }
    Ok(())
}

/// Structured-audit form of [`check_invariants`], shared by the three
/// GK variants' [`sqs_util::audit::CheckInvariants`] impls and by the
/// biased (CKMS) summary. `n` is the *folded* element count — total
/// insertions minus any still-buffered elements.
pub(crate) fn audit_tuples<T: Ord>(
    tuples: &[Tuple<T>],
    eps: f64,
    n: u64,
    algorithm: &'static str,
) -> Result<(), sqs_util::audit::InvariantViolation> {
    use sqs_util::audit::ensure;
    let cap = threshold(eps, n).max(1);
    let mut total_g = 0u64;
    for (i, t) in tuples.iter().enumerate() {
        if i > 0 {
            ensure(tuples[i - 1].v <= t.v, algorithm, "gk.sorted", || {
                format!("tuple {i} is smaller than its predecessor")
            })?;
            ensure(t.g + t.delta <= cap, algorithm, "gk.g_delta_bound", || {
                format!(
                    "tuple {i}: g+Δ = {} > ⌊2εn⌋ = {cap} (n = {n})",
                    t.g + t.delta
                )
            })?;
        }
        total_g += t.g;
    }
    ensure(
        tuples.is_empty() || total_g == n,
        algorithm,
        "gk.g_sum",
        || format!("Σg = {total_g} ≠ folded element count {n}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<Tuple<u64>> {
        // elements 10,20,30,40 with exact ranks (g=1 each, Δ=0)
        vec![
            Tuple {
                v: 10,
                g: 1,
                delta: 0,
            },
            Tuple {
                v: 20,
                g: 1,
                delta: 0,
            },
            Tuple {
                v: 30,
                g: 1,
                delta: 0,
            },
            Tuple {
                v: 40,
                g: 1,
                delta: 0,
            },
        ]
    }

    #[test]
    fn exact_list_answers_exactly() {
        // Exact convention: the φ-quantile is the element of rank ⌊φn⌋.
        let t = toy();
        assert_eq!(query_quantile(&t, 4, 0.25, 0.26), Some(20)); // ⌊1.04⌋ = rank 1
        assert_eq!(query_quantile(&t, 4, 0.25, 0.5), Some(30)); // rank 2
        assert_eq!(query_quantile(&t, 4, 0.25, 0.76), Some(40)); // rank 3
        assert_eq!(query_quantile(&t, 4, 0.25, 0.01), Some(10)); // rank 0
    }

    #[test]
    fn empty_list_returns_none() {
        assert_eq!(query_quantile::<u64>(&[], 0, 0.1, 0.5), None);
    }

    #[test]
    fn rank_query_midpoints() {
        let t = toy();
        assert_eq!(query_rank(&t, 5), 0);
        assert_eq!(query_rank(&t, 10), 0);
        assert_eq!(query_rank(&t, 25), 1);
        assert_eq!(query_rank(&t, 100), 3);
    }

    #[test]
    fn invariant_checker_catches_violations() {
        let mut t = toy();
        assert!(check_invariants(&t, 0.5, 4).is_ok());
        t[2].delta = 100;
        assert!(check_invariants(&t, 0.5, 4).is_err());
        let unsorted = vec![
            Tuple {
                v: 5u64,
                g: 1,
                delta: 0,
            },
            Tuple {
                v: 3,
                g: 1,
                delta: 0,
            },
        ];
        assert!(check_invariants(&unsorted, 0.5, 2).is_err());
    }

    #[test]
    fn grid_matches_pointwise_queries() {
        // The batched grid must agree with per-φ queries exactly.
        let mut rng = sqs_util::rng::Xoshiro256pp::new(123);
        let tuples: Vec<Tuple<u64>> = {
            let mut s = crate::gk::GkArray::new(0.02);
            for _ in 0..20_000 {
                crate::QuantileSummary::insert(&mut s, rng.next_below(1 << 20));
            }
            s.tuples().to_vec()
        };
        let phis = sqs_util::exact::probe_phis(0.02);
        let grid = query_quantile_grid(&tuples, 20_000, 0.02, &phis);
        assert_eq!(grid.len(), phis.len());
        for (phi, v) in grid {
            assert_eq!(
                Some(v),
                query_quantile(&tuples, 20_000, 0.02, phi),
                "phi={phi}"
            );
        }
    }

    #[test]
    fn threshold_matches_formula() {
        assert_eq!(threshold(0.1, 100), 20);
        assert_eq!(threshold(0.01, 49), 0);
        assert_eq!(threshold(0.5, 3), 3);
    }
}
