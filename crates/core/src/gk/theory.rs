//! `GKTheory` — the original Greenwald–Khanna algorithm with the
//! banding COMPRESS procedure, exactly as analyzed in the 2001 paper
//! and summarized in §2.1 of the study.
//!
//! A new element is inserted as `(v, 1, ⌊2εn⌋ − 1)` before its
//! successor, and once every `⌈1/(2ε)⌉` insertions the COMPRESS sweep
//! merges tuples right-to-left according to the *band* hierarchy,
//! which guarantees the `O((1/ε)·log(εn))` space bound.
//!
//! Physically, tuples live in a flat array and incoming elements are
//! buffered for exactly one COMPRESS period, then folded in with a
//! single sorted merge pass immediately before the sweep — the same
//! amortization GK01 obtains from its list+tree representation
//! (O(log |L|) per element), without per-element `memmove`s. The
//! buffered form is bound-preserving: a batched element's `Δ` is
//! computed with the end-of-batch `n`, which can only exceed its
//! arrival-time `⌊2εn⌋ − 1`, keeping invariant (1) safe, while
//! invariant (2) is checked against the monotonically growing `n`.
//! The study found this variant empirically worse than
//! [`GkAdaptive`](super::GkAdaptive) — a finding our harness
//! reproduces — but it is the only GK variant with a proven size
//! bound.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use super::{query_quantile, query_quantile_grid, query_rank, threshold, Tuple};
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

/// The analyzed Greenwald–Khanna summary (deterministic,
/// comparison-based, `O((1/ε)·log(εn))` space).
#[derive(Debug, Clone)]
pub struct GkTheory<T> {
    eps: f64,
    n: u64,
    tuples: Vec<Tuple<T>>,
    /// Elements awaiting the next COMPRESS-period fold-in.
    buffer: Vec<T>,
    /// COMPRESS period: `⌈1/(2ε)⌉` insertions.
    period: usize,
}

/// The GK band of a tuple with slack `delta`, against capacity `p = ⌊2εn⌋`.
///
/// Band 0 holds `Δ = p`; band α ≥ 1 holds all Δ with
/// `2^{α−1} + (p mod 2^{α−1}) ≤ p − Δ < 2^α + (p mod 2^α)`.
/// Higher band = older tuple = more valuable; COMPRESS only merges a
/// tuple into a successor of equal or higher band.
fn band(delta: u64, p: u64) -> u32 {
    debug_assert!(delta <= p, "delta {delta} exceeds capacity {p}");
    if delta == p {
        return 0;
    }
    let diff = p - delta; // ≥ 1
    for alpha in 1..=64u32 {
        let lo = (1u64 << (alpha - 1)) + (p & ((1u64 << (alpha - 1)) - 1));
        let hi = (1u64 << alpha) + (p & ((1u64 << alpha) - 1));
        if lo <= diff && diff < hi {
            return alpha;
        }
    }
    unreachable!("band not found for delta={delta}, p={p}")
}

impl<T: Ord + Copy> GkTheory<T> {
    /// Creates a summary with error guarantee ε.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        let period = (1.0 / (2.0 * eps)).ceil() as usize;
        Self {
            eps,
            n: 0,
            tuples: Vec::new(),
            buffer: Vec::with_capacity(period),
            period,
        }
    }

    /// Number of tuples currently held (after folding the buffer in).
    pub fn tuple_count(&mut self) -> usize {
        self.fold_in();
        self.tuples.len()
    }

    /// The tuples (for invariant checks in tests).
    pub fn tuples(&mut self) -> &[Tuple<T>] {
        self.fold_in();
        &self.tuples
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Merges the buffered period into the tuple array: each element
    /// becomes `(v, 1, ⌊2εn⌋ − 1)` before its successor (extremes
    /// pinned at Δ = 0), in one sorted merge pass.
    fn fold_in(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.buffer.sort_unstable();
        let delta_interior = threshold(self.eps, self.n).saturating_sub(1);
        let old = std::mem::take(&mut self.tuples);
        let mut out: Vec<Tuple<T>> = Vec::with_capacity(old.len() + self.buffer.len());
        let mut li = 0usize;
        for &v in &self.buffer {
            while li < old.len() && old[li].v <= v {
                out.push(old[li]);
                li += 1;
            }
            let delta = if li == old.len() || out.is_empty() {
                0
            } else {
                delta_interior
            };
            out.push(Tuple { v, g: 1, delta });
        }
        out.extend_from_slice(&old[li..]);
        self.tuples = out;
        self.buffer.clear();
    }

    /// The COMPRESS sweep of GK01: scan right-to-left; a tuple whose
    /// band is ≤ its successor's is merged (together with its whole
    /// band-subtree of preceding lower-band tuples) into the successor
    /// whenever the combined tuple respects the capacity `p`.
    fn compress(&mut self) {
        let len = self.tuples.len();
        if len < 3 {
            return;
        }
        let p = threshold(self.eps, self.n);
        let bands: Vec<u32> = self
            .tuples
            .iter()
            .map(|t| band(t.delta.min(p), p))
            .collect();

        // Build the surviving list right-to-left. The last tuple (max
        // element) is never merged away; the first (min) is never part
        // of any subtree (extent stops at index 1).
        let mut out: Vec<Tuple<T>> = Vec::with_capacity(len);
        out.push(self.tuples[len - 1]);
        let mut succ_delta_band = bands[len - 1];
        let mut i = len as isize - 2;
        while i >= 0 {
            let idx = i as usize;
            if idx == 0 {
                out.push(self.tuples[0]);
                break;
            }
            if bands[idx] <= succ_delta_band {
                // Extent of the band-subtree rooted at idx: the maximal
                // run of strictly-lower-band tuples immediately before it.
                let mut g_star = self.tuples[idx].g;
                let mut j = idx as isize - 1;
                while j >= 1 && bands[j as usize] < bands[idx] {
                    g_star += self.tuples[j as usize].g;
                    j -= 1;
                }
                let succ = out
                    .last()
                    .expect("GK invariant: compress output seeded with the max tuple");
                if g_star + succ.g + succ.delta < p {
                    out.last_mut()
                        .expect("GK invariant: compress output stays nonempty")
                        .g += g_star;
                    i = j;
                    continue;
                }
            }
            succ_delta_band = bands[idx];
            out.push(self.tuples[idx]);
            i -= 1;
        }
        out.reverse();
        self.tuples = out;
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for GkTheory<T> {
    /// GK invariants (§2.1): sorted tuples, `g+Δ ≤ ⌊2εn⌋`, `Σg`
    /// matching the folded element count, the buffer bounded by the
    /// COMPRESS period, and band monotonicity (the GK01 band of a
    /// tuple never increases with its `Δ` — the property the COMPRESS
    /// subtree rule depends on).
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "GKTheory";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "gk.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        ensure(
            self.period == (1.0 / (2.0 * self.eps)).ceil() as usize,
            ALG,
            "gk.compress_period",
            || format!("period {} ≠ ⌈1/2ε⌉ for eps {}", self.period, self.eps),
        )?;
        ensure(
            self.buffer.len() <= self.period,
            ALG,
            "gk.buffer_bound",
            || format!("{} buffered > period {}", self.buffer.len(), self.period),
        )?;
        let folded = self.n - self.buffer.len() as u64;
        super::audit_tuples(&self.tuples, self.eps, folded, ALG)?;
        let p = threshold(self.eps, self.n);
        let mut deltas: Vec<u64> = self.tuples.iter().map(|t| t.delta).collect();
        deltas.sort_unstable();
        for w in deltas.windows(2) {
            ensure(
                w[0] > p || band(w[0], p) >= band(w[1].min(p), p),
                ALG,
                "gk.band_monotone",
                || format!("band(Δ={}) < band(Δ={}) at capacity p={p}", w[0], w[1]),
            )?;
        }
        Ok(())
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for GkTheory<T> {
    fn insert(&mut self, x: T) {
        self.n += 1;
        self.buffer.push(x);
        if self.buffer.len() >= self.period {
            self.fold_in();
            self.compress();
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    /// Bulk insert: copies whole slices into the pending buffer and
    /// runs the fold-in/COMPRESS cycle exactly at the itemwise period
    /// boundaries, so the resulting summary state is identical to
    /// element-wise insertion.
    fn insert_batch(&mut self, xs: &[T]) {
        let mut rest = xs;
        while !rest.is_empty() {
            let room = self.period - self.buffer.len();
            let take = room.min(rest.len()).max(1);
            let (chunk, tail) = rest.split_at(take);
            self.buffer.extend_from_slice(chunk);
            self.n += take as u64;
            rest = tail;
            if self.buffer.len() >= self.period {
                self.fold_in();
                self.compress();
            }
        }
        #[cfg(any(test, feature = "audit"))]
        sqs_util::audit::CheckInvariants::assert_invariants(self);
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        self.fold_in();
        query_rank(&self.tuples, x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        self.fold_in();
        query_quantile(&self.tuples, self.n, self.eps, phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        self.fold_in();
        query_quantile_grid(
            &self.tuples,
            self.n,
            self.eps,
            &sqs_util::exact::probe_phis(eps),
        )
    }

    fn name(&self) -> &'static str {
        "GKTheory"
    }
}

impl<T> SpaceUsage for GkTheory<T> {
    fn space_bytes(&self) -> usize {
        // Three words per tuple (v, g, Δ) + one word per buffered
        // element (the buffer is the auxiliary structure here).
        words(self.tuples.len() * 3 + self.buffer.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gk::check_invariants;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
    use sqs_util::rng::Xoshiro256pp;

    fn run_stream(eps: f64, data: &[u64]) -> GkTheory<u64> {
        let mut s = GkTheory::new(eps);
        for &x in data {
            s.insert(x);
        }
        s
    }

    #[test]
    fn insert_batch_is_rank_equivalent_to_itemwise() {
        // Bulk insertion folds at the same period boundaries as
        // itemwise insertion, so the summaries answer identically.
        let mut rng = Xoshiro256pp::new(91);
        let data: Vec<u64> = (0..40_000).map(|_| rng.next_below(1 << 20)).collect();
        let mut itemwise = run_stream(0.02, &data);
        let mut batched = GkTheory::new(0.02);
        for chunk in data.chunks(611) {
            batched.insert_batch(chunk);
        }
        assert_eq!(itemwise.n(), batched.n());
        for phi in [0.1, 0.3, 0.5, 0.7, 0.9] {
            assert_eq!(itemwise.quantile(phi), batched.quantile(phi));
        }
        for x in [1u64 << 16, 1 << 18, 1 << 19] {
            assert_eq!(itemwise.rank_estimate(x), batched.rank_estimate(x));
        }
    }

    #[test]
    fn band_partitions_capacity_range() {
        // Every Δ in [0, p] must land in exactly one band, and Δ = p in
        // band 0, Δ = 0 in the highest.
        for p in [1u64, 2, 3, 7, 8, 100, 1023] {
            let bands: Vec<u32> = (0..=p).map(|d| band(d, p)).collect();
            assert_eq!(*bands.last().unwrap(), 0, "p = {p}");
            let max_band = *bands.iter().max().unwrap();
            assert_eq!(bands[0], max_band, "Δ=0 must be the highest band, p={p}");
            // Bands are non-increasing in Δ.
            for w in bands.windows(2) {
                assert!(w[0] >= w[1], "bands must not increase with Δ, p={p}");
            }
        }
    }

    #[test]
    fn errors_within_eps_random_order() {
        let eps = 0.02;
        let mut rng = Xoshiro256pp::new(1);
        let data: Vec<u64> = (0..20_000).map(|_| rng.next_below(1 << 20)).collect();
        let mut s = run_stream(eps, &data);
        let n = s.n();
        check_invariants(s.tuples(), eps, n).unwrap();
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "max error {max_err} > eps {eps}");
    }

    #[test]
    fn errors_within_eps_sorted_order() {
        let eps = 0.05;
        let data: Vec<u64> = (0..10_000).collect();
        let mut s = run_stream(eps, &data);
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "max error {max_err} > eps {eps}");
    }

    #[test]
    fn errors_within_eps_tight_eps() {
        // The batched fold-in must stay correct at tight ε (this is
        // the regime the per-element Vec insert couldn't reach).
        let eps = 0.001;
        let mut rng = Xoshiro256pp::new(9);
        let data: Vec<u64> = (0..200_000).map(|_| rng.next_below(1 << 30)).collect();
        let mut s = run_stream(eps, &data);
        let n = s.n();
        check_invariants(s.tuples(), eps, n).unwrap();
        let oracle = ExactQuantiles::new(data);
        for phi in [0.01, 0.5, 0.99] {
            let q = s.quantile(phi).unwrap();
            assert!(oracle.quantile_error(phi, q) <= eps, "phi={phi}");
        }
    }

    #[test]
    fn space_is_sublinear_and_within_gk_bound() {
        let eps = 0.01;
        let data: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1_000_003)
            .collect();
        let mut s = run_stream(eps, &data);
        // The bound is (11/2ε)·log(2εn) tuples; assert generous slack.
        let bound = (11.0 / (2.0 * eps)) * (2.0 * eps * 100_000.0).log2().max(1.0);
        let count = s.tuple_count();
        assert!((count as f64) < bound, "tuples {count} vs bound {bound}");
        assert!(count < 20_000, "far smaller than the stream");
    }

    #[test]
    fn duplicate_heavy_stream() {
        let eps = 0.05;
        let data: Vec<u64> = (0..5_000).map(|i| i % 7).collect();
        let mut s = run_stream(eps, &data);
        let oracle = ExactQuantiles::new(data);
        for phi in probe_phis(eps) {
            let q = s.quantile(phi).unwrap();
            assert!(oracle.quantile_error(phi, q) <= eps);
        }
    }

    #[test]
    fn single_element_stream() {
        let mut s = GkTheory::new(0.1);
        s.insert(42u64);
        assert_eq!(s.quantile(0.5), Some(42));
        assert_eq!(s.n(), 1);
    }

    #[test]
    fn empty_returns_none() {
        let mut s = GkTheory::<u64>::new(0.1);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        GkTheory::<u64>::new(1.5);
    }

    #[test]
    fn space_accounting_tracks_tuples_and_buffer() {
        let mut s = run_stream(0.1, &(0..1000u64).collect::<Vec<_>>());
        let tuples = s.tuple_count();
        assert_eq!(s.space_bytes(), (tuples * 3 + s.buffer.capacity()) * 4);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    fn filled(eps: f64, n: u64) -> GkTheory<u64> {
        let mut s = GkTheory::new(eps);
        for x in 0..n {
            s.insert(x % 997);
        }
        s
    }

    #[test]
    fn auditor_catches_inflated_delta() {
        let mut s = filled(0.01, 10_000);
        s.tuples[1].delta += threshold(s.eps, s.n) + 1;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "GKTheory");
        assert_eq!(err.invariant, "gk.g_delta_bound");
    }

    #[test]
    fn auditor_catches_lost_mass() {
        let mut s = filled(0.05, 5_000);
        s.n += 100;
        assert_eq!(s.check_invariants().unwrap_err().invariant, "gk.g_sum");
    }

    #[test]
    fn auditor_catches_unsorted_tuples() {
        let mut s = filled(0.05, 5_000);
        let last = s.tuples.len() - 1;
        s.tuples.swap(0, last);
        assert_eq!(s.check_invariants().unwrap_err().invariant, "gk.sorted");
    }
}
