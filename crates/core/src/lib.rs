//! Cash-register streaming quantile summaries.
//!
//! This crate implements every cash-register algorithm evaluated in
//! *“Quantiles over Data Streams: An Experimental Study”* (§2 of the
//! journal version), plus the baselines the paper compares against:
//!
//! | Type | Paper name | Guarantee | Model |
//! |---|---|---|---|
//! | [`gk::GkTheory`] | GKTheory | deterministic, O((1/ε)·log εn) space | comparison |
//! | [`gk::GkAdaptive`] | GKAdaptive | deterministic, heuristic space | comparison |
//! | [`gk::GkArray`] | GKArray | deterministic, heuristic space, batched | comparison |
//! | [`random::RandomSketch`] | Random | randomized, O((1/ε)·log^1.5(1/ε)) | comparison |
//! | [`mrl99::Mrl99`] | MRL99 | randomized, O((1/ε)·log²(1/ε)) | comparison |
//! | [`mrl98::Mrl98`] | MRL(98) | deterministic, needs n hint | comparison |
//! | [`qdigest::QDigest`] | FastQDigest | deterministic, O((1/ε)·log u), mergeable | fixed universe |
//! | [`sampled::ReservoirQuantiles`] | sampling baseline | randomized, O(1/ε²·log(1/ε)) | comparison |
//! | [`biased::Ckms`] | (extension, [10]) | deterministic biased/targeted quantiles | comparison |
//! | [`sliding::SlidingWindowQuantiles`] | (extension, [3]) | quantiles over the last W elements | comparison |
//!
//! All comparison-model summaries are generic over `T: Ord + Copy`;
//! the q-digest works over `u64` keys in a power-of-two universe (use
//! [`sqs_util::ordkey`] to map floats/signed integers in).
//!
//! Every summary implements [`QuantileSummary`] (streaming insert +
//! rank/quantile queries) and [`sqs_util::SpaceUsage`] (the paper's
//! 4-bytes-per-word accounting). The mergeable summaries (`Random`,
//! `FastQDigest`, the reservoir baseline) additionally implement
//! [`codec::WireCodec`] — a versioned, checksummed byte form so they
//! can be shipped across process boundaries and merged remotely
//! (`sqs-service`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biased;
pub mod buffers;
pub mod codec;
pub mod gk;
pub mod mrl98;
pub mod mrl99;
pub mod qdigest;
pub mod random;
pub mod sampled;
pub mod sliding;
mod traits;

pub use traits::{MergeableSummary, QuantileSummary};
