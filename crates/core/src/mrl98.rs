//! `MRL98` — Manku, Rajagopalan & Lindsay's *deterministic*
//! one-pass summary (SIGMOD'98), the pre-GK state of the art the study
//! cites as "previously demonstrated to be outperformed by the GK
//! algorithm" (§1.2.1). Implemented so that claim is checkable.
//!
//! The framework is NEW/COLLAPSE over `b` buffers of `k` elements,
//! each buffer carrying a *level* (its height in the collapse tree)
//! and a *weight* (how many stream elements each of its samples
//! represents):
//!
//! * **NEW** fills an empty buffer with `k` raw elements (weight 1).
//!   While at least two buffers are empty the new buffer takes level
//!   0; when exactly one is empty it takes the current minimum level —
//!   this is the MRL98 trick that keeps the collapse tree shallow.
//! * **COLLAPSE** (when nothing is empty) merges *all* buffers at the
//!   minimum level into one buffer at that level + 1, weight summed,
//!   selecting elements at the deterministic *midpoint* positions of
//!   the weight-expanded sequence. Determinism is what makes MRL98
//!   deterministic — and what costs it the extra log factor in space
//!   relative to MRL99's randomized offsets.
//!
//! MRL98 needs the stream length in advance to size `(b, k)`: the
//! collapse-tree height `h` it will reach on `n` elements determines
//! the error `≈ (h−2)/(2k)`. Rather than transcribe the paper's
//! binomial capacity lemma, [`tree_height_for`] *simulates* the
//! NEW/COLLAPSE schedule (levels only — O(#fills) time) to find the
//! exact height, and the constructor searches the smallest `b·k` whose
//! height keeps the error within ε. Streams longer than `n_hint` keep
//! working but the guarantee degrades (documented; this awkwardness is
//! why the paper's lineage moved on to MRL99 and GK).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::buffers::{weighted_collapse, weighted_quantile, weighted_quantile_grid, weighted_rank};
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

#[derive(Debug, Clone)]
struct Buffer<T> {
    level: u32,
    weight: u64,
    data: Vec<T>,
    full: bool,
}

/// The deterministic MRL98 summary (comparison-based; requires an
/// a-priori stream-length hint).
#[derive(Debug, Clone)]
pub struct Mrl98<T> {
    eps: f64,
    k: usize,
    buffers: Vec<Buffer<T>>,
    fill: Option<usize>,
    n: u64,
}

/// Simulates the NEW/COLLAPSE level schedule for `fills` leaf-buffer
/// fills with `b` buffers and returns the maximum level any buffer
/// reaches (the collapse-tree height).
fn tree_height_for(b: usize, fills: u64) -> u32 {
    let mut levels: Vec<u32> = Vec::with_capacity(b); // levels of full buffers
    let mut max_level = 0u32;
    let mut remaining = fills;
    while remaining > 0 {
        let empties = b - levels.len();
        if empties >= 2 {
            levels.push(0);
            remaining -= 1;
        } else if empties == 1 {
            let lmin = levels.iter().copied().min().unwrap_or(0);
            levels.push(lmin);
            remaining -= 1;
        } else {
            let lmin = *levels
                .iter()
                .min()
                .expect("MRL98 invariant: collapse sees at least one full buffer");
            levels.retain(|&l| l != lmin);
            levels.push(lmin + 1);
            max_level = max_level.max(lmin + 1);
        }
    }
    max_level
}

/// Searches the smallest-memory `(b, k)` such that the simulated
/// collapse-tree height `h` on `⌈n_hint/k⌉` fills keeps the collapse
/// error within ε. MRL98's analysis bounds the error of their exact
/// policy by `(h−2)/(2k)`; our level-scheduled variant's weights
/// differ slightly, so we budget the conservative `h/(2k)` (verified
/// empirically by the test matrix).
fn size_parameters(eps: f64, n_hint: u64) -> (usize, usize) {
    let mut best: Option<(usize, usize)> = None;
    for b in 3..=30usize {
        // Binary-search the smallest k that satisfies the error bound.
        let (mut lo, mut hi) = (2usize, (n_hint as usize).max(4));
        // Feasibility at hi: 2 fills max → height ≤ 1 → always fine.
        while lo < hi {
            let k = (lo + hi) / 2;
            let fills = n_hint.div_ceil(k as u64);
            let h = tree_height_for(b, fills);
            let err = if h == 0 {
                0.0
            } else {
                h as f64 / (2.0 * k as f64)
            };
            if err <= eps {
                hi = k;
            } else {
                lo = k + 1;
            }
        }
        let k = hi;
        match best {
            Some((bb, bk)) if bb * bk <= b * k => {}
            _ => best = Some((b, k)),
        }
    }
    best.expect("MRL98 invariant: (b, k) sizing search covers every n_hint")
}

impl<T: Ord + Copy> Mrl98<T> {
    /// Creates a summary for error target ε over streams of roughly
    /// `n_hint` elements.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `n_hint > 0`.
    pub fn new(eps: f64, n_hint: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(n_hint > 0, "n_hint must be positive");
        let (b, k) = size_parameters(eps, n_hint);
        Self {
            eps,
            k,
            buffers: (0..b)
                .map(|_| Buffer {
                    level: 0,
                    weight: 1,
                    data: Vec::with_capacity(k),
                    full: false,
                })
                .collect(),
            fill: None,
            n: 0,
        }
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of buffers `b`.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Buffer capacity `k`.
    pub fn buffer_size(&self) -> usize {
        self.k
    }

    /// Deterministic COLLAPSE of all minimum-level buffers at the
    /// midpoint offset; the output moves to that level + 1.
    fn collapse(&mut self) {
        let lmin = self
            .buffers
            .iter()
            .filter(|b| b.full)
            .map(|b| b.level)
            .min()
            .expect("MRL98 invariant: collapse requires \u{2265} 2 full buffers");
        let chosen: Vec<usize> = self
            .buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.full && b.level == lmin)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(
            chosen.len() >= 2,
            "the NEW policy guarantees ≥ 2 at the min level"
        );
        let inputs: Vec<(&[T], u64)> = chosen
            .iter()
            .map(|&i| (self.buffers[i].data.as_slice(), self.buffers[i].weight))
            .collect();
        let total_w: u64 = inputs.iter().map(|(d, w)| d.len() as u64 * w).sum();
        let stride = (total_w / self.k as u64).max(1);
        let (merged, _) = weighted_collapse(&inputs, self.k, stride / 2);
        let new_weight: u64 = chosen.iter().map(|&i| self.buffers[i].weight).sum();
        let target = chosen[0];
        self.buffers[target].data = merged;
        self.buffers[target].weight = new_weight;
        self.buffers[target].level = lmin + 1;
        for &i in &chosen[1..] {
            self.buffers[i].data.clear();
            self.buffers[i].full = false;
            self.buffers[i].weight = 1;
            self.buffers[i].level = 0;
        }
    }

    fn live_buffers(&self) -> Vec<(&[T], u64)> {
        self.buffers
            .iter()
            .filter(|b| !b.data.is_empty())
            .map(|b| (b.data.as_slice(), b.weight))
            .collect()
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for Mrl98<T> {
    /// MRL98 invariants (Manku et al. '98): positive buffer weights,
    /// the `full ⇔ |data| = k` fill discipline, and — because NEW
    /// stores raw elements at weight 1 and the deterministic COLLAPSE
    /// of full buffers conserves `k·Σw` exactly — the represented mass
    /// `Σ weight·|data|` equals the stream length `n` at all times.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "MRL98";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "mrl98.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        ensure(self.buffers.len() >= 3, ALG, "mrl98.buffer_count", || {
            format!(
                "{} buffers — the NEW/COLLAPSE schedule needs ≥ 3",
                self.buffers.len()
            )
        })?;
        ensure(self.k >= 2, ALG, "mrl98.buffer_size", || {
            format!("k = {} below the minimum of 2", self.k)
        })?;
        let mut mass = 0u64;
        for (i, b) in self.buffers.iter().enumerate() {
            ensure(b.weight >= 1, ALG, "mrl98.weight_positive", || {
                format!("buffer {i} has weight 0")
            })?;
            ensure(b.data.len() <= self.k, ALG, "mrl98.buffer_overflow", || {
                format!("buffer {i} holds {} > k = {}", b.data.len(), self.k)
            })?;
            ensure(
                b.full == (b.data.len() == self.k),
                ALG,
                "mrl98.fill_flag",
                || {
                    format!(
                        "buffer {i}: full = {} but |data| = {} (k = {})",
                        b.full,
                        b.data.len(),
                        self.k
                    )
                },
            )?;
            if Some(i) != self.fill && !b.data.is_empty() {
                ensure(
                    b.weight == 1 || b.level >= 1,
                    ALG,
                    "mrl98.collapse_level",
                    || format!("buffer {i}: weight {} > 1 at leaf level 0", b.weight),
                )?;
            }
            mass += b.data.len() as u64 * b.weight;
        }
        ensure(mass == self.n, ALG, "mrl98.mass_conservation", || {
            format!(
                "represented mass {mass} ≠ n = {} — COLLAPSE lost or invented mass",
                self.n
            )
        })?;
        if let Some(idx) = self.fill {
            ensure(idx < self.buffers.len(), ALG, "mrl98.fill_index", || {
                format!("fill index {idx} out of range")
            })?;
            ensure(!self.buffers[idx].full, ALG, "mrl98.fill_not_full", || {
                format!("fill buffer {idx} is already marked full")
            })?;
            ensure(
                self.buffers[idx].weight == 1,
                ALG,
                "mrl98.fill_weight",
                || {
                    format!(
                        "fill buffer {idx} has weight {} ≠ 1 (NEW stores raw elements)",
                        self.buffers[idx].weight
                    )
                },
            )?;
        }
        Ok(())
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for Mrl98<T> {
    fn insert(&mut self, x: T) {
        if self.fill.is_none() {
            let empties: Vec<usize> = self
                .buffers
                .iter()
                .enumerate()
                .filter(|(_, b)| !b.full && b.data.is_empty())
                .map(|(i, _)| i)
                .collect();
            let idx = match empties.len() {
                0 => {
                    self.collapse();
                    self.buffers
                        .iter()
                        .position(|b| !b.full && b.data.is_empty())
                        .expect("MRL98 invariant: collapse always frees a buffer")
                }
                _ => empties[0],
            };
            // NEW policy: level 0 while ≥ 2 empties, else the min level.
            let level = if empties.len() >= 2 {
                0
            } else {
                self.buffers
                    .iter()
                    .filter(|b| b.full)
                    .map(|b| b.level)
                    .min()
                    .unwrap_or(0)
            };
            self.buffers[idx].level = level;
            self.buffers[idx].weight = 1;
            self.fill = Some(idx);
        }
        self.n += 1;
        let idx = self
            .fill
            .expect("MRL98 invariant: fill buffer selected before append");
        self.buffers[idx].data.push(x);
        if self.buffers[idx].data.len() == self.k {
            self.buffers[idx].data.sort_unstable();
            self.buffers[idx].full = true;
            self.fill = None;
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        if let Some(idx) = self.fill {
            self.buffers[idx].data.sort_unstable();
        }
        weighted_rank(&self.live_buffers(), x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        // The partial fill buffer participates with weight 1; it must
        // be sorted for the weighted query.
        if let Some(idx) = self.fill {
            self.buffers[idx].data.sort_unstable();
        }
        weighted_quantile(&self.live_buffers(), phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        if let Some(idx) = self.fill {
            self.buffers[idx].data.sort_unstable();
        }
        weighted_quantile_grid(&self.live_buffers(), &sqs_util::exact::probe_phis(eps))
    }

    fn name(&self) -> &'static str {
        "MRL98"
    }
}

impl<T> SpaceUsage for Mrl98<T> {
    fn space_bytes(&self) -> usize {
        words(self.buffers.len() * (self.k + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};

    #[test]
    fn height_simulation_sane() {
        // Collapse is lazy (triggered by needing an empty buffer), so
        // after exactly b fills the height is still 0; the (b+1)-th
        // fill forces the first collapse.
        assert_eq!(tree_height_for(5, 5), 0);
        assert_eq!(tree_height_for(5, 6), 1);
        // Heights grow slowly (logarithmically-ish) with fills.
        let h1 = tree_height_for(10, 100);
        let h2 = tree_height_for(10, 10_000);
        assert!(h1 < h2);
        assert!(h2 < 25, "h2 = {h2}");
        assert_eq!(tree_height_for(5, 3), 0); // never fills all buffers
    }

    #[test]
    fn sizing_respects_error_bound() {
        for (eps, n) in [(0.1, 50_000u64), (0.05, 200_000), (0.01, 1_000_000)] {
            let (b, k) = size_parameters(eps, n);
            let h = tree_height_for(b, n.div_ceil(k as u64));
            let err = if h == 0 {
                0.0
            } else {
                h as f64 / (2.0 * k as f64)
            };
            assert!(err <= eps, "eps={eps} n={n} b={b} k={k} h={h} err={err}");
        }
    }

    fn max_err(eps: f64, data: Vec<u64>, n_hint: u64) -> f64 {
        let mut s = Mrl98::new(eps, n_hint);
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        observed_errors(&oracle, &answers).0
    }

    #[test]
    fn error_within_eps_random_order() {
        let eps = 0.05;
        let n = 100_000u64;
        let mut rng = sqs_util::rng::Xoshiro256pp::new(8);
        let data: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 26)).collect();
        let e = max_err(eps, data, n);
        assert!(e <= eps, "max err {e} > {eps}");
    }

    #[test]
    fn error_within_eps_sorted_order() {
        let eps = 0.1;
        let data: Vec<u64> = (0..50_000).collect();
        let e = max_err(eps, data, 50_000);
        assert!(e <= eps, "max err {e} > {eps}");
    }

    #[test]
    fn error_within_eps_small_eps() {
        let eps = 0.02;
        let data: Vec<u64> = (0..200_000u64).map(|i| (i * 48271) % 1_000_003).collect();
        let e = max_err(eps, data, 200_000);
        assert!(e <= eps, "max err {e} > {eps}");
    }

    #[test]
    fn deterministic_end_to_end() {
        let data: Vec<u64> = (0..50_000).map(|i| (i * 7919) % 10_007).collect();
        let mut a = Mrl98::new(0.05, 50_000);
        let mut b = Mrl98::new(0.05, 50_000);
        for &x in &data {
            a.insert(x);
            b.insert(x);
        }
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(phi), b.quantile(phi));
        }
    }

    #[test]
    fn survives_stream_beyond_hint() {
        // Beyond its sized capacity the guarantee lapses; the contract
        // is graceful degradation: no panic, exact counts, in-range
        // answers.
        let mut s = Mrl98::new(0.1, 1_000);
        for x in 0..50_000u64 {
            s.insert(x);
        }
        assert_eq!(s.n(), 50_000);
        assert!(s.quantile(0.5).unwrap() < 50_000);
    }

    #[test]
    fn partial_buffer_participates() {
        let mut s = Mrl98::new(0.1, 1_000);
        for x in 0..10u64 {
            s.insert(x);
        }
        assert_eq!(s.quantile(0.5), Some(5));
    }

    #[test]
    fn empty_is_none() {
        let mut s = Mrl98::<u64>::new(0.1, 100);
        assert_eq!(s.quantile(0.5), None);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_weight_tampering() {
        let mut s = Mrl98::<u64>::new(0.05, 20_000);
        for x in 0..20_000u64 {
            s.insert(x);
        }
        let b = s
            .buffers
            .iter_mut()
            .find(|b| b.full && b.weight >= 1)
            .expect("a full buffer");
        b.weight += 1;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "MRL98");
        assert_eq!(err.invariant, "mrl98.mass_conservation");
    }

    #[test]
    fn auditor_catches_fill_flag_lie() {
        let mut s = Mrl98::<u64>::new(0.05, 20_000);
        for x in 0..20_000u64 {
            s.insert(x);
        }
        let b = s
            .buffers
            .iter_mut()
            .find(|b| b.full)
            .expect("a full buffer");
        b.full = false;
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "mrl98.fill_flag"
        );
    }
}
