//! `MRL99` — Manku, Rajagopalan & Lindsay's randomized sampler
//! (SIGMOD'99), the algorithm the paper's `Random` simplifies (§1.2.1).
//!
//! Mechanically, MRL99 differs from `Random` in two ways the study
//! isolates:
//!
//! * **COLLAPSE merges *all* buffers at the minimal weight** (not just
//!   a pair) into one output buffer whose weight is the sum, using the
//!   weighted position-selection rule with a uniformly random offset —
//!   buffer weights are therefore arbitrary integers, not powers of 2.
//! * If only one buffer has the minimal weight, the next-lightest
//!   buffer joins the collapse (the MRL99 policy guarantees ≥ 2
//!   inputs).
//!
//! New buffers are fed by the same active-level sampling as `Random`
//! (one uniformly-chosen element per `2^l` arrivals, giving the buffer
//! weight `2^l`).
//!
//! **Sizing note (recorded in DESIGN.md):** MRL99 chooses `b` and `k`
//! by numerically solving an optimization over its (loose) error
//! bound. The study's finding is that those "details were not actually
//! needed"; to make the comparison isolate the *mechanism* (collapse-
//! all + random offset vs pairwise odd/even), this implementation uses
//! the same `b = h+1`, `k = ⌈(1/ε)√h⌉` sizing as `Random`. The paper's
//! observation that the two perform near-identically is then directly
//! checkable.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::buffers::{weighted_collapse, weighted_quantile, weighted_quantile_grid, weighted_rank};
use crate::QuantileSummary;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

#[derive(Debug, Clone)]
struct Buffer<T> {
    weight: u64,
    data: Vec<T>,
    full: bool,
}

/// The MRL99 randomized quantile summary (comparison-based,
/// `O((1/ε)·log²(1/ε))` space by its original analysis).
#[derive(Debug, Clone)]
pub struct Mrl99<T> {
    eps: f64,
    h: u32,
    k: usize,
    buffers: Vec<Buffer<T>>,
    fill: Option<usize>,
    group_size: u64,
    group_pos: u64,
    group_target: u64,
    group_choice: Option<T>,
    n: u64,
    rng: Xoshiro256pp,
}

impl<T: Ord + Copy> Mrl99<T> {
    /// Creates a summary with error target ε and a PRNG seed.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        let h = (1.0 / eps).log2().ceil().max(1.0) as u32;
        let k = (((1.0 / eps) * (h as f64).sqrt()).ceil() as usize).max(2);
        let b = h as usize + 1;
        Self {
            eps,
            h,
            k,
            buffers: (0..b)
                .map(|_| Buffer {
                    weight: 1,
                    data: Vec::with_capacity(k),
                    full: false,
                })
                .collect(),
            fill: None,
            group_size: 1,
            group_pos: 0,
            group_target: 0,
            group_choice: None,
            n: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Per-buffer capacity.
    pub fn buffer_size(&self) -> usize {
        self.k
    }

    /// Weights of the currently full buffers (inspection/tests).
    pub fn weights(&self) -> Vec<u64> {
        self.buffers
            .iter()
            .filter(|b| b.full)
            .map(|b| b.weight)
            .collect()
    }

    fn active_weight(&self) -> u64 {
        let denom = self.k as f64 * (1u64 << (self.h - 1)) as f64;
        let ratio = self.n as f64 / denom;
        if ratio <= 1.0 {
            1
        } else {
            1u64 << (ratio.log2().ceil() as u32)
        }
    }

    fn start_group(&mut self, weight: u64) {
        self.group_size = weight;
        self.group_pos = 0;
        self.group_choice = None;
        self.group_target = if weight == 1 {
            0
        } else {
            self.rng.next_below(weight)
        };
    }

    /// The MRL99 COLLAPSE: merge all minimal-weight full buffers (at
    /// least two — the second-lightest joins if the minimum is unique)
    /// into one buffer of summed weight.
    fn collapse(&mut self) {
        debug_assert!(self.buffers.iter().all(|b| b.full));
        let min_w = self
            .buffers
            .iter()
            .map(|b| b.weight)
            .min()
            .expect("MRL99 invariant: at least one buffer exists");
        let mut chosen: Vec<usize> = self
            .buffers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.weight == min_w)
            .map(|(i, _)| i)
            .collect();
        if chosen.len() < 2 {
            // Include the next-lightest buffer.
            let next = self
                .buffers
                .iter()
                .enumerate()
                .filter(|(i, _)| !chosen.contains(i))
                .min_by_key(|(_, b)| b.weight)
                .map(|(i, _)| i)
                .expect("MRL99 invariant: collapse requires >= 2 minimum-weight buffers");
            chosen.push(next);
        }
        let inputs: Vec<(&[T], u64)> = chosen
            .iter()
            .map(|&i| (self.buffers[i].data.as_slice(), self.buffers[i].weight))
            .collect();
        let total_w: u64 = inputs.iter().map(|(d, w)| d.len() as u64 * w).sum();
        let stride = (total_w / self.k as u64).max(1);
        let offset = self.rng.next_below(stride);
        let (merged, _) = weighted_collapse(&inputs, self.k, offset);
        let new_weight: u64 = chosen.iter().map(|&i| self.buffers[i].weight).sum();

        let target = chosen[0];
        self.buffers[target].data = merged;
        self.buffers[target].weight = new_weight;
        self.buffers[target].full = true;
        for &i in &chosen[1..] {
            self.buffers[i].data.clear();
            self.buffers[i].full = false;
            self.buffers[i].weight = 1;
        }
    }

    fn live_buffers(&self) -> Vec<(&[T], u64)> {
        self.buffers
            .iter()
            .filter(|b| !b.data.is_empty())
            .map(|b| (b.data.as_slice(), b.weight))
            .collect()
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for Mrl99<T> {
    /// MRL99 invariants (Manku et al. '99, study §1.2.1): `b = h+1`
    /// buffers of capacity `k`, positive integer buffer weights
    /// (arbitrary, not powers of two — the COLLAPSE sums them), the
    /// `full ⇔ |data| = k` fill discipline with full buffers sorted,
    /// represented mass `Σ weight·|data| ≤ n`, and the level sampler
    /// targeting a uniform position inside the current weight-sized
    /// group.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "MRL99";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "mrl99.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        ensure(
            self.buffers.len() == self.h as usize + 1,
            ALG,
            "mrl99.buffer_count",
            || format!("{} buffers ≠ b = h+1 = {}", self.buffers.len(), self.h + 1),
        )?;
        ensure(self.k >= 2, ALG, "mrl99.buffer_size", || {
            format!("k = {} below the minimum of 2", self.k)
        })?;
        let mut mass = 0u64;
        for (i, b) in self.buffers.iter().enumerate() {
            ensure(b.weight >= 1, ALG, "mrl99.weight_positive", || {
                format!("buffer {i} has weight 0")
            })?;
            ensure(b.data.len() <= self.k, ALG, "mrl99.buffer_overflow", || {
                format!("buffer {i} holds {} > k = {}", b.data.len(), self.k)
            })?;
            ensure(
                b.full == (b.data.len() == self.k),
                ALG,
                "mrl99.fill_flag",
                || {
                    format!(
                        "buffer {i}: full = {} but |data| = {} (k = {})",
                        b.full,
                        b.data.len(),
                        self.k
                    )
                },
            )?;
            if b.full {
                ensure(
                    b.data.windows(2).all(|w| w[0] <= w[1]),
                    ALG,
                    "mrl99.full_buffer_sorted",
                    || format!("full buffer {i} at weight {} is not sorted", b.weight),
                )?;
            }
            mass += b.data.len() as u64 * b.weight;
        }
        ensure(mass <= self.n, ALG, "mrl99.mass_bound", || {
            format!("represented mass {mass} exceeds arrivals n = {}", self.n)
        })?;
        ensure(
            self.group_target < self.group_size,
            ALG,
            "mrl99.sampler_target",
            || {
                format!(
                    "sampler target {} outside group of {}",
                    self.group_target, self.group_size
                )
            },
        )?;
        ensure(
            self.group_pos <= self.group_size,
            ALG,
            "mrl99.sampler_pos",
            || {
                format!(
                    "sampler position {} beyond group of {}",
                    self.group_pos, self.group_size
                )
            },
        )?;
        if let Some(idx) = self.fill {
            ensure(idx < self.buffers.len(), ALG, "mrl99.fill_index", || {
                format!("fill index {idx} out of range")
            })?;
            ensure(!self.buffers[idx].full, ALG, "mrl99.fill_not_full", || {
                format!("fill buffer {idx} is already marked full")
            })?;
            ensure(
                self.group_size == self.buffers[idx].weight,
                ALG,
                "mrl99.sampler_weight",
                || {
                    format!(
                        "group size {} ≠ fill buffer weight {}",
                        self.group_size, self.buffers[idx].weight
                    )
                },
            )?;
        }
        Ok(())
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for Mrl99<T> {
    fn insert(&mut self, x: T) {
        if self.fill.is_none() {
            let idx = self
                .buffers
                .iter()
                .position(|b| !b.full && b.data.is_empty())
                .expect("MRL99 invariant: an empty buffer exists after collapsing");
            let w = self.active_weight();
            self.buffers[idx].weight = w;
            self.fill = Some(idx);
            self.start_group(w);
        }
        self.n += 1;

        if self.group_pos == self.group_target {
            self.group_choice = Some(x);
        }
        self.group_pos += 1;
        if self.group_pos == self.group_size {
            let idx = self
                .fill
                .expect("MRL99 invariant: fill buffer selected before append");
            let chosen = self
                .group_choice
                .take()
                .expect("MRL99 invariant: group choice set when targeting a group");
            self.buffers[idx].data.push(chosen);
            if self.buffers[idx].data.len() == self.k {
                self.buffers[idx].data.sort_unstable();
                self.buffers[idx].full = true;
                self.fill = None;
                if self.buffers.iter().all(|b| b.full) {
                    self.collapse();
                }
            } else {
                let w = self.buffers[idx].weight;
                self.start_group(w);
            }
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        weighted_rank(&self.live_buffers(), x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        weighted_quantile(&self.live_buffers(), phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        weighted_quantile_grid(&self.live_buffers(), &sqs_util::exact::probe_phis(eps))
    }

    fn name(&self) -> &'static str {
        "MRL99"
    }
}

impl<T> SpaceUsage for Mrl99<T> {
    fn space_bytes(&self) -> usize {
        // Pre-allocated b·k sample slots + weight/fill word per buffer.
        words(self.buffers.len() * (self.k + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};

    fn observed_max_err(eps: f64, data: &[u64], seed: u64) -> f64 {
        let mut s = Mrl99::new(eps, seed);
        for &x in data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data.to_vec());
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        observed_errors(&oracle, &answers).0
    }

    #[test]
    fn small_stream_exact() {
        let mut s = Mrl99::new(0.1, 1);
        let data: Vec<u64> = (0..40).rev().collect();
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        for phi in [0.2, 0.5, 0.8] {
            assert_eq!(oracle.quantile_error(phi, s.quantile(phi).unwrap()), 0.0);
        }
    }

    #[test]
    fn error_within_eps_with_slack() {
        let mut rng = sqs_util::rng::Xoshiro256pp::new(42);
        let data: Vec<u64> = (0..100_000).map(|_| rng.next_below(1 << 28)).collect();
        let eps = 0.02;
        let errs: Vec<f64> = (0..5)
            .map(|seed| observed_max_err(eps, &data, seed))
            .collect();
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(avg <= eps, "avg max err {avg} > {eps} ({errs:?})");
        assert!(errs.iter().all(|&e| e <= 2.0 * eps), "outlier: {errs:?}");
    }

    #[test]
    fn collapse_produces_summed_weights() {
        let mut s = Mrl99::new(0.2, 7);
        for x in 0..100_000u64 {
            s.insert(x);
        }
        let weights = s.weights();
        assert!(!weights.is_empty());
        // Total represented mass stays close to n (partial groups and
        // the fill buffer account for the gap).
        let mass: u64 = s
            .buffers
            .iter()
            .map(|b| b.data.len() as u64 * b.weight)
            .sum();
        let n = s.n();
        assert!(mass <= n);
        assert!(mass as f64 > 0.8 * n as f64, "mass {mass} vs n {n}");
    }

    #[test]
    fn matches_random_sizing() {
        let m = Mrl99::<u64>::new(0.01, 1);
        let r = crate::random::RandomSketch::<u64>::new(0.01, 1);
        assert_eq!(m.buffer_count(), r.buffer_count());
        assert_eq!(m.buffer_size(), r.buffer_size());
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<u64> = (0..60_000).map(|i| (i * 48271) % 65_536).collect();
        let mut a = Mrl99::new(0.05, 3);
        let mut b = Mrl99::new(0.05, 3);
        for &x in &data {
            a.insert(x);
            b.insert(x);
        }
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn empty_is_none() {
        let mut s = Mrl99::<u64>::new(0.1, 5);
        assert_eq!(s.quantile(0.4), None);
        assert_eq!(s.n(), 0);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_zeroed_weight() {
        let mut s = Mrl99::<u64>::new(0.05, 9);
        for x in 0..20_000u64 {
            s.insert(x);
        }
        s.buffers[0].weight = 0;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "MRL99");
        assert_eq!(err.invariant, "mrl99.weight_positive");
    }

    #[test]
    fn auditor_catches_lost_buffer() {
        let mut s = Mrl99::<u64>::new(0.05, 9);
        for x in 0..20_000u64 {
            s.insert(x);
        }
        s.buffers.pop();
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "mrl99.buffer_count"
        );
    }
}
