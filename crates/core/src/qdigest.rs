//! `FastQDigest` — the q-digest of Shrivastava et al. (SenSys'04) in
//! the buffered, streaming form the study benchmarks (§1.2.1, §4.2.4).
//!
//! The q-digest is the only deterministic **fixed-universe** summary in
//! the study, and the only deterministic *mergeable* one — the reason
//! the paper keeps it relevant despite losing every streaming
//! comparison (§4.2.4). It stores counts on nodes of the dyadic tree
//! over `[u]`, maintaining the digest property that every surviving
//! non-root node together with its sibling and parent outweighs
//! `⌊n/σ⌋`, which caps the node count at `3σ` and the rank error at
//! `log(u)·⌊n/σ⌋`. We size `σ = ⌈log₂(u)/ε⌉` for an `ε·n` rank
//! guarantee.
//!
//! Updates are buffered and applied in batches ("Fast"), with COMPRESS
//! re-run when the node map outgrows `3σ`, giving amortized O(1)-ish
//! updates — the behaviour Figures 5e/5f and 7a measure.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use std::collections::HashMap;

use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

/// Errors from [`QDigest::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic or version.
    BadHeader,
    /// Byte stream ends mid-record.
    Truncated,
    /// A node id is outside the declared universe's tree.
    BadNodeId(u64),
    /// Node counts don't sum to the declared n.
    CountMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "bad magic/version header"),
            DecodeError::Truncated => write!(f, "byte stream truncated"),
            DecodeError::BadNodeId(id) => write!(f, "node id {id} outside tree"),
            DecodeError::CountMismatch => write!(f, "node counts do not sum to n"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: u32 = 0x5144_4731; // "QDG1"

/// A streaming q-digest over the universe `[0, 2^log_u)`.
///
/// # Example
///
/// ```
/// use sqs_core::{qdigest::QDigest, QuantileSummary};
///
/// // Two sensors summarize locally, merge, ship as bytes.
/// let mut a = QDigest::new(0.01, 16);
/// let mut b = QDigest::new(0.01, 16);
/// for x in 0..30_000u64 {
///     a.insert(x % 65_536);
///     b.insert((x * 7) % 65_536);
/// }
/// a.merge(&mut b);
/// let bytes = a.to_bytes();
/// let mut back = QDigest::from_bytes(&bytes).unwrap();
/// assert_eq!(back.n(), 60_000);
/// assert_eq!(back.quantile(0.5), a.quantile(0.5));
/// ```

#[derive(Debug, Clone)]
pub struct QDigest {
    log_u: u32,
    sigma: u64,
    n: u64,
    /// Heap-numbered dyadic node → count. Root is id 1; the leaf for
    /// value `x` is id `u + x`; node `id` has children `2id, 2id+1`.
    counts: HashMap<u64, u64>,
    buffer: Vec<u64>,
    buffer_cap: usize,
}

impl QDigest {
    /// Creates a q-digest for universe size `2^log_u` with rank error
    /// at most `ε·n`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `1 ≤ log_u ≤ 40`.
    pub fn new(eps: f64, log_u: u32) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(
            (1..=40).contains(&log_u),
            "log_u must be in 1..=40, got {log_u}"
        );
        let sigma = ((log_u as f64) / eps).ceil() as u64;
        Self {
            log_u,
            sigma,
            n: 0,
            counts: HashMap::new(),
            buffer: Vec::with_capacity(256),
            buffer_cap: 256,
        }
    }

    /// Universe exponent.
    pub fn log_u(&self) -> u32 {
        self.log_u
    }

    /// Compression factor σ.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Number of tree nodes currently stored (after a flush).
    pub fn node_count(&mut self) -> usize {
        self.flush();
        self.counts.len()
    }

    #[inline]
    fn universe(&self) -> u64 {
        1u64 << self.log_u
    }

    /// Depth of a node id (root = 0, leaves = `log_u`).
    #[inline]
    fn depth(id: u64) -> u32 {
        63 - id.leading_zeros()
    }

    /// Inclusive value range `[lo, hi]` covered by node `id`.
    #[inline]
    fn node_range(&self, id: u64) -> (u64, u64) {
        let level = self.log_u - Self::depth(id);
        let lo = (id << level) - self.universe();
        (lo, lo + (1u64 << level) - 1)
    }

    /// Applies buffered leaf increments.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let u = self.universe();
        let buf = std::mem::take(&mut self.buffer);
        for x in buf {
            *self.counts.entry(u + x).or_insert(0) += 1;
        }
        if self.counts.len() as u64 > 3 * self.sigma {
            self.compress();
        }
    }

    /// The q-digest COMPRESS: bottom-up, merge any child pair whose
    /// combined weight with the parent is within `⌊n/σ⌋`.
    fn compress(&mut self) {
        let threshold = self.n / self.sigma;
        if threshold == 0 {
            return;
        }
        // Bucket node ids by depth so merges feed the next level up.
        let mut by_depth: Vec<Vec<u64>> = vec![Vec::new(); self.log_u as usize + 1];
        for &id in self.counts.keys() {
            by_depth[Self::depth(id) as usize].push(id);
        }
        for d in (1..=self.log_u as usize).rev() {
            let ids = std::mem::take(&mut by_depth[d]);
            for id in ids {
                // Canonicalize to the even child; skip ids already merged.
                let left = id & !1;
                if !self.counts.contains_key(&left) && !self.counts.contains_key(&(left | 1)) {
                    continue;
                }
                let parent = left >> 1;
                let cl = self.counts.get(&left).copied().unwrap_or(0);
                let cr = self.counts.get(&(left | 1)).copied().unwrap_or(0);
                let cp = self.counts.get(&parent).copied().unwrap_or(0);
                if cl + cr + cp <= threshold {
                    self.counts.remove(&left);
                    self.counts.remove(&(left | 1));
                    let existed = self.counts.insert(parent, cl + cr + cp).is_some();
                    if !existed {
                        by_depth[d - 1].push(parent);
                    }
                }
            }
        }
    }

    /// Merges another q-digest into this one (the mergeable-summary
    /// operation of Agarwal et al. the paper highlights in §4.2.4).
    ///
    /// Thin wrapper over [`merge_from`](QDigest::merge_from): takes
    /// `other`'s state and leaves it an empty digest over the same
    /// universe.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn merge(&mut self, other: &mut QDigest) {
        let empty = QDigest {
            log_u: other.log_u,
            sigma: other.sigma,
            n: 0,
            counts: HashMap::new(),
            buffer: Vec::with_capacity(other.buffer_cap),
            buffer_cap: other.buffer_cap,
        };
        self.merge_from(std::mem::replace(other, empty));
    }

    /// Consuming form of [`merge`](QDigest::merge): the primitive the
    /// engine's balanced merge tree folds with
    /// ([`MergeableSummary`](crate::MergeableSummary)).
    ///
    /// COMPRESS runs only when the combined node map actually exceeds
    /// its `3σ` budget, not unconditionally — a k-way merge tree
    /// folding k ε-digests therefore compresses O(k·|digest|/σ) times
    /// total instead of once per internal node (no double-compression
    /// of an already-compact digest).
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn merge_from(&mut self, mut other: QDigest) {
        assert_eq!(self.log_u, other.log_u, "q-digest merge: universe mismatch");
        self.flush();
        other.flush();
        if other.n == 0 {
            return; // merging nothing is the identity
        }
        for (&id, &c) in &other.counts {
            *self.counts.entry(id).or_insert(0) += c;
        }
        self.n += other.n;
        if self.counts.len() as u64 > 3 * self.sigma {
            self.compress();
        }
    }

    /// Serializes the digest to a compact, portable byte form (the
    /// sensor-network deployment the q-digest was designed for ships
    /// digests over the network): a fixed header followed by sorted
    /// `(node id, count)` little-endian u64 pairs. Flushes first, so
    /// equal digests serialize equally.
    pub fn to_bytes(&mut self) -> Vec<u8> {
        self.flush();
        let mut ids: Vec<u64> = self.counts.keys().copied().collect();
        ids.sort_unstable();
        let mut out = Vec::with_capacity(28 + ids.len() * 16);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.log_u.to_le_bytes());
        out.extend_from_slice(&self.sigma.to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
        for id in ids {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&self.counts[&id].to_le_bytes());
        }
        out
    }

    /// Reconstructs a digest from [`QDigest::to_bytes`] output,
    /// validating structure (header, node ids within the declared
    /// tree, counts summing to `n`).
    pub fn from_bytes(bytes: &[u8]) -> Result<QDigest, DecodeError> {
        let take_u32 = |b: &[u8], at: usize| -> Result<u32, DecodeError> {
            b.get(at..at + 4)
                .map(|s| {
                    u32::from_le_bytes(
                        s.try_into()
                            .expect("QDigest invariant: chunks_exact(4) yields 4-byte slices"),
                    )
                })
                .ok_or(DecodeError::Truncated)
        };
        let take_u64 = |b: &[u8], at: usize| -> Result<u64, DecodeError> {
            b.get(at..at + 8)
                .map(|s| {
                    u64::from_le_bytes(
                        s.try_into()
                            .expect("QDigest invariant: chunks_exact(8) yields 8-byte slices"),
                    )
                })
                .ok_or(DecodeError::Truncated)
        };
        if take_u32(bytes, 0)? != MAGIC {
            return Err(DecodeError::BadHeader);
        }
        let log_u = take_u32(bytes, 4)?;
        if !(1..=40).contains(&log_u) {
            return Err(DecodeError::BadHeader);
        }
        let sigma = take_u64(bytes, 8)?;
        let n = take_u64(bytes, 16)?;
        let count = take_u64(bytes, 24)? as usize;
        let mut counts = HashMap::with_capacity(count);
        let max_id = 1u64 << (log_u + 1);
        let mut total_at_some_level = 0u64;
        for i in 0..count {
            let at = 32 + i * 16;
            let id = take_u64(bytes, at)?;
            let c = take_u64(bytes, at + 8)?;
            if id == 0 || id >= max_id {
                return Err(DecodeError::BadNodeId(id));
            }
            // Adversarial counts could overflow the running sum; an
            // overflow can never equal an honest n, so report it as the
            // count mismatch it is instead of panicking.
            total_at_some_level = total_at_some_level
                .checked_add(c)
                .ok_or(DecodeError::CountMismatch)?;
            counts.insert(id, c);
        }
        if total_at_some_level != n {
            return Err(DecodeError::CountMismatch);
        }
        Ok(QDigest {
            log_u,
            sigma: sigma.max(1),
            n,
            counts,
            buffer: Vec::with_capacity(256),
            buffer_cap: 256,
        })
    }

    /// Nodes sorted in the q-digest query order: by right endpoint,
    /// smaller intervals first on ties (post-order of the tree).
    fn ordered_nodes(&self) -> Vec<(u64, u64, u64)> {
        // (hi, lo, count)
        let mut nodes: Vec<(u64, u64, u64)> = self
            .counts
            .iter()
            .map(|(&id, &c)| {
                let (lo, hi) = self.node_range(id);
                (hi, lo, c)
            })
            .collect();
        nodes.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        nodes
    }
}

impl crate::MergeableSummary<u64> for QDigest {
    fn merge_from(&mut self, other: Self) {
        QDigest::merge_from(self, other);
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        self.log_u == other.log_u
    }
}

impl crate::codec::WireCodec for QDigest {
    const WIRE_KIND: u8 = crate::codec::KIND_QDIGEST;

    /// The frame body is exactly the digest's pre-existing compact
    /// byte form ([`QDigest::to_bytes`]); the shared frame adds the
    /// version/kind header and checksum on top.
    fn encode_body(&mut self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bytes());
    }

    fn decode_body(body: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        QDigest::from_bytes(body).map_err(|e| match e {
            DecodeError::Truncated => CodecError::Truncated,
            DecodeError::BadHeader => CodecError::Malformed("q-digest: bad magic/version header"),
            DecodeError::BadNodeId(_) => CodecError::Malformed("q-digest: node id outside tree"),
            DecodeError::CountMismatch => {
                CodecError::Malformed("q-digest: node counts do not sum to n")
            }
        })
    }
}

impl sqs_util::audit::CheckInvariants for QDigest {
    /// q-digest invariants (Shrivastava et al. §3, study §1.2.1):
    /// every stored node id lies inside the dyadic tree over
    /// `[0, 2^log_u)` (so parent/child arithmetic `2id, 2id+1` stays
    /// closed), the node count respects the `3σ` capacity (plus the
    /// buffered-"Fast" slack of one unflushed buffer), and the node
    /// counts plus buffered updates conserve the stream mass `n`.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "FastQDigest";
        ensure(
            (1..=40).contains(&self.log_u),
            ALG,
            "qdigest.log_u_range",
            || format!("log_u = {} outside 1..=40", self.log_u),
        )?;
        ensure(self.sigma >= 1, ALG, "qdigest.sigma_positive", || {
            format!("σ = {} must be ≥ 1", self.sigma)
        })?;
        let max_id = 1u64 << (self.log_u + 1);
        let mut mass = 0u64;
        for (&id, &c) in &self.counts {
            ensure(id >= 1 && id < max_id, ALG, "qdigest.node_in_tree", || {
                format!("node id {id} outside the heap numbering [1, {max_id})")
            })?;
            ensure(
                Self::depth(id) <= self.log_u,
                ALG,
                "qdigest.depth_bound",
                || format!("node id {id} deeper than the leaf level {}", self.log_u),
            )?;
            mass += c;
        }
        ensure(
            mass + self.buffer.len() as u64 == self.n,
            ALG,
            "qdigest.mass_conservation",
            || {
                format!(
                    "node mass {mass} + {} buffered ≠ n = {}",
                    self.buffer.len(),
                    self.n
                )
            },
        )?;
        ensure(
            self.buffer.len() <= self.buffer_cap,
            ALG,
            "qdigest.buffer_bound",
            || {
                format!(
                    "{} buffered > capacity {}",
                    self.buffer.len(),
                    self.buffer_cap
                )
            },
        )?;
        ensure(
            self.counts.len() <= 3 * self.sigma as usize + self.buffer_cap,
            ALG,
            "qdigest.node_capacity",
            || {
                format!(
                    "{} nodes > 3σ = {} (+ {} buffer slack)",
                    self.counts.len(),
                    3 * self.sigma,
                    self.buffer_cap
                )
            },
        )
    }
}

impl QuantileSummary<u64> for QDigest {
    /// Observes `x`, which must lie in `[0, 2^log_u)`.
    fn insert(&mut self, x: u64) {
        assert!(
            x < self.universe(),
            "value {x} outside universe 2^{}",
            self.log_u
        );
        self.n += 1;
        self.buffer.push(x);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    /// Bulk insert: extends the update buffer sliceful-at-a-time and
    /// flushes exactly at the itemwise flush boundaries, so the
    /// resulting digest state is identical to element-wise insertion.
    ///
    /// # Panics
    /// Panics if any element lies outside `[0, 2^log_u)`.
    fn insert_batch(&mut self, xs: &[u64]) {
        let u = self.universe();
        let mut rest = xs;
        while !rest.is_empty() {
            let room = self.buffer_cap - self.buffer.len();
            let take = room.min(rest.len()).max(1);
            let (chunk, tail) = rest.split_at(take);
            for &x in chunk {
                assert!(x < u, "value {x} outside universe 2^{}", self.log_u);
            }
            self.buffer.extend_from_slice(chunk);
            self.n += take as u64;
            rest = tail;
            if self.buffer.len() >= self.buffer_cap {
                self.flush();
            }
        }
        #[cfg(any(test, feature = "audit"))]
        sqs_util::audit::CheckInvariants::assert_invariants(self);
    }

    fn n(&self) -> u64 {
        self.n
    }

    /// The standard q-digest lower-bound rank estimate: total count of
    /// nodes entirely below `x`.
    fn rank_estimate(&mut self, x: u64) -> u64 {
        self.flush();
        self.counts
            .iter()
            .map(|(&id, &c)| {
                let (_, hi) = self.node_range(id);
                if hi < x {
                    c
                } else {
                    0
                }
            })
            .sum()
    }

    fn quantile(&mut self, phi: f64) -> Option<u64> {
        crate::traits::check_phi(phi);
        self.flush();
        if self.n == 0 {
            return None;
        }
        let target = ((phi * self.n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (hi, _lo, c) in self.ordered_nodes() {
            cum += c;
            if cum >= target {
                return Some(hi);
            }
        }
        Some(self.universe() - 1)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, u64)> {
        self.flush();
        if self.n == 0 {
            return Vec::new();
        }
        let nodes = self.ordered_nodes();
        let mut out = Vec::new();
        let mut cum = 0u64;
        let mut idx = 0usize;
        for phi in sqs_util::exact::probe_phis(eps) {
            let target = ((phi * self.n as f64).ceil() as u64).max(1);
            while idx < nodes.len() && cum + nodes[idx].2 < target {
                cum += nodes[idx].2;
                idx += 1;
            }
            let hi = if idx < nodes.len() {
                nodes[idx].0
            } else {
                self.universe() - 1
            };
            out.push((phi, hi));
        }
        out
    }

    fn name(&self) -> &'static str {
        "FastQDigest"
    }
}

impl SpaceUsage for QDigest {
    fn space_bytes(&self) -> usize {
        // Per stored node: id + count + one hash-slot pointer (3 words);
        // plus the update buffer capacity.
        words(self.counts.len() * 3 + self.buffer_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
    use sqs_util::rng::Xoshiro256pp;

    fn check_errors(eps: f64, log_u: u32, data: Vec<u64>) {
        let mut s = QDigest::new(eps, log_u);
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        assert!(max_err <= eps, "max err {max_err} > {eps}");
    }

    #[test]
    fn node_range_geometry() {
        let s = QDigest::new(0.1, 3); // u = 8
        assert_eq!(s.node_range(1), (0, 7)); // root
        assert_eq!(s.node_range(2), (0, 3));
        assert_eq!(s.node_range(3), (4, 7));
        assert_eq!(s.node_range(8), (0, 0)); // first leaf
        assert_eq!(s.node_range(15), (7, 7)); // last leaf
    }

    #[test]
    fn errors_within_eps_uniform() {
        let mut rng = Xoshiro256pp::new(20);
        let data: Vec<u64> = (0..50_000).map(|_| rng.next_below(1 << 16)).collect();
        check_errors(0.02, 16, data);
    }

    #[test]
    fn errors_within_eps_skewed() {
        // Normal-ish pile-up in a narrow band of the universe.
        let mut rng = Xoshiro256pp::new(21);
        let data: Vec<u64> = (0..50_000)
            .map(|_| 30_000 + rng.next_below(200) + rng.next_below(200))
            .collect();
        check_errors(0.02, 16, data);
    }

    #[test]
    fn errors_within_eps_sorted() {
        check_errors(
            0.05,
            20,
            (0..60_000u64).map(|i| i * 17 % (1 << 20)).collect(),
        );
    }

    #[test]
    fn node_count_bounded_by_3_sigma() {
        let mut rng = Xoshiro256pp::new(22);
        let mut s = QDigest::new(0.05, 16);
        for _ in 0..200_000 {
            s.insert(rng.next_below(1 << 16));
        }
        let bound = 3 * s.sigma() as usize + 256; // slack for the post-compress buffer refill
        assert!(s.node_count() <= bound, "{} > {bound}", s.counts.len());
    }

    #[test]
    fn merge_preserves_accuracy() {
        let eps = 0.05;
        let mut rng = Xoshiro256pp::new(23);
        let a_data: Vec<u64> = (0..30_000).map(|_| rng.next_below(1 << 16)).collect();
        let b_data: Vec<u64> = (0..30_000)
            .map(|_| 20_000 + rng.next_below(1 << 14))
            .collect();
        let mut a = QDigest::new(eps, 16);
        let mut b = QDigest::new(eps, 16);
        for &x in &a_data {
            a.insert(x);
        }
        for &x in &b_data {
            b.insert(x);
        }
        a.merge(&mut b);
        assert_eq!(a.n(), 60_000);
        let mut all = a_data;
        all.extend(b_data);
        let oracle = ExactQuantiles::new(all);
        for phi in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let q = a.quantile(phi).unwrap();
            // Merging can double the error constant; 2ε is the
            // mergeable-summary guarantee for a single merge.
            assert!(oracle.quantile_error(phi, q) <= 2.0 * eps, "phi={phi}");
        }
    }

    #[test]
    fn rank_estimate_is_lower_bound() {
        let mut rng = Xoshiro256pp::new(24);
        let data: Vec<u64> = (0..50_000).map(|_| rng.next_below(1 << 12)).collect();
        let mut s = QDigest::new(0.05, 12);
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        for x in [100u64, 1000, 2000, 4000] {
            let est = s.rank_estimate(x);
            let truth = oracle.rank(x);
            assert!(est <= truth, "estimate {est} exceeds true rank {truth}");
            assert!(truth - est <= (0.05 * 50_000.0) as u64 + 1, "x={x}");
        }
    }

    #[test]
    fn duplicates_all_same_value() {
        let mut s = QDigest::new(0.01, 10);
        for _ in 0..10_000 {
            s.insert(512);
        }
        assert_eq!(s.quantile(0.5), Some(512));
        assert!(s.node_count() <= 12, "nodes = {}", s.counts.len());
    }

    #[test]
    fn empty_and_bounds() {
        let mut s = QDigest::new(0.1, 8);
        assert_eq!(s.quantile(0.5), None);
        s.insert(255);
        assert_eq!(s.quantile(0.5), Some(255));
    }

    #[test]
    fn serialization_roundtrips() {
        let mut rng = Xoshiro256pp::new(50);
        let mut d = QDigest::new(0.02, 16);
        for _ in 0..50_000 {
            d.insert(rng.next_below(1 << 16));
        }
        let bytes = d.to_bytes();
        let mut back = QDigest::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.n(), d.n());
        assert_eq!(back.log_u(), d.log_u());
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(back.quantile(phi), d.quantile(phi), "phi={phi}");
        }
        // Deserialized digests keep working as streams and merges.
        back.insert(7);
        assert_eq!(back.n(), d.n() + 1);
    }

    #[test]
    fn deserialization_validates() {
        let mut d = QDigest::new(0.1, 8);
        d.insert(3);
        let good = d.to_bytes();
        assert_eq!(
            QDigest::from_bytes(&good[..10]).err(),
            Some(DecodeError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            QDigest::from_bytes(&bad_magic).err(),
            Some(DecodeError::BadHeader)
        );
        let mut bad_count = good.clone();
        let last = bad_count.len() - 1;
        bad_count[last] ^= 0x01; // corrupt a node count
        assert!(matches!(
            QDigest::from_bytes(&bad_count),
            Err(DecodeError::CountMismatch) | Err(DecodeError::BadNodeId(_))
        ));
        assert_eq!(QDigest::from_bytes(&[]).err(), Some(DecodeError::Truncated));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_universe() {
        let mut s = QDigest::new(0.1, 8);
        s.insert(256);
    }

    #[test]
    fn insert_batch_is_rank_equivalent_to_itemwise() {
        // Bulk insertion hits the same flush boundaries as itemwise
        // insertion, so the digests are byte-for-byte identical.
        let mut rng = Xoshiro256pp::new(60);
        let data: Vec<u64> = (0..80_000).map(|_| rng.next_below(1 << 16)).collect();
        let mut itemwise = QDigest::new(0.02, 16);
        let mut batched = QDigest::new(0.02, 16);
        for &x in &data {
            itemwise.insert(x);
        }
        for chunk in data.chunks(1013) {
            batched.insert_batch(chunk);
        }
        assert_eq!(itemwise.n(), batched.n());
        assert_eq!(itemwise.to_bytes(), batched.to_bytes());
        for x in [100u64, 30_000, 60_000] {
            assert_eq!(itemwise.rank_estimate(x), batched.rank_estimate(x));
        }
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_batch_rejects_out_of_universe() {
        let mut s = QDigest::new(0.1, 8);
        s.insert_batch(&[1, 2, 300]);
    }

    #[test]
    fn merge_from_consuming_matches_wrapper() {
        let build = |step: u64| {
            let mut s = QDigest::new(0.05, 14);
            for x in 0..20_000u64 {
                s.insert((x * step) % (1 << 14));
            }
            s
        };
        let mut via_wrapper = build(7);
        let mut donor = build(13);
        via_wrapper.merge(&mut donor);
        let mut via_consume = build(7);
        via_consume.merge_from(build(13));
        assert_eq!(via_wrapper.n(), via_consume.n());
        assert_eq!(via_wrapper.to_bytes(), via_consume.to_bytes());
        // The drained donor is a usable empty digest over the universe.
        assert_eq!(donor.n(), 0);
        donor.insert(9);
        assert_eq!(donor.quantile(0.5), Some(9));
    }

    #[test]
    fn merge_tree_skips_redundant_compress() {
        // Folding many already-compact digests keeps the node budget
        // without compressing at every internal node: accuracy stays
        // within the k-way merge bound and the capacity invariant holds.
        let mut rng = Xoshiro256pp::new(61);
        let eps = 0.05;
        let mut shards: Vec<QDigest> = Vec::new();
        let mut all = Vec::new();
        for _ in 0..8 {
            let data: Vec<u64> = (0..15_000).map(|_| rng.next_below(1 << 16)).collect();
            let mut s = QDigest::new(eps, 16);
            s.insert_batch(&data);
            all.extend(data);
            shards.push(s);
        }
        while shards.len() > 1 {
            let mut next = Vec::new();
            let mut it = shards.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge_from(b);
                }
                next.push(a);
            }
            shards = next;
        }
        let mut root = shards.pop().expect("one digest remains");
        assert_eq!(root.n(), 120_000);
        sqs_util::audit::CheckInvariants::assert_invariants(&root);
        let oracle = ExactQuantiles::new(all);
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.quantile_error(phi, root.quantile(phi).expect("nonempty"));
            assert!(err <= 2.0 * eps, "phi={phi}: err {err}");
        }
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use crate::QuantileSummary;
    use sqs_util::audit::CheckInvariants;

    fn filled() -> QDigest {
        let mut s = QDigest::new(0.05, 12);
        for x in 0..10_000u64 {
            s.insert(x % 4_096);
        }
        s
    }

    #[test]
    fn auditor_catches_out_of_tree_node() {
        let mut s = filled();
        s.counts.insert(1u64 << (s.log_u + 2), 1);
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "FastQDigest");
        assert_eq!(err.invariant, "qdigest.node_in_tree");
    }

    #[test]
    fn auditor_catches_broken_mass() {
        let mut s = filled();
        *s.counts.values_mut().next().expect("nonempty") += 17;
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "qdigest.mass_conservation"
        );
    }
}
