//! `Random` — the paper's simplified randomized summary (§2.2), a
//! streamlined MRL99 with the new `O((1/ε)·log^1.5(1/ε))` analysis.
//!
//! With `h = ⌈log₂(1/ε)⌉`, the summary keeps `b = h + 1` buffers of
//! `s = ⌈(1/ε)·√h⌉` elements each. An empty buffer is filled at the
//! current *active level* `l = max(0, ⌈log₂(n/(s·2^{h−1}))⌉)` by
//! keeping one uniformly-chosen element out of every `2^l` arrivals.
//! When every buffer is full, the two fullest-at-the-lowest-level
//! buffers are merged: the combined sorted sequence keeps its odd or
//! its even positions, each with probability 1/2, and the result lives
//! one level higher. Ranks are estimated as
//! `r̂(v) = Σ_X 2^{l(X)} · |{y ∈ X : y < v}|`.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::buffers::{
    merge_equal_level, weighted_collapse, weighted_quantile, weighted_quantile_grid, weighted_rank,
};
use crate::QuantileSummary;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

#[derive(Debug, Clone)]
struct Buffer<T> {
    level: u32,
    data: Vec<T>,
    full: bool,
}

/// The `Random` summary (randomized, comparison-based; reports all
/// quantiles within ε with constant probability).
///
/// # Example
///
/// ```
/// use sqs_core::{random::RandomSketch, QuantileSummary};
/// use sqs_util::SpaceUsage;
///
/// let mut s = RandomSketch::new(0.01, /* seed */ 42);
/// let fixed_footprint = s.space_bytes(); // preallocated from ε alone
/// for x in 0..500_000u64 {
///     s.insert(x);
/// }
/// assert_eq!(s.space_bytes(), fixed_footprint); // never grows
/// let p90 = s.quantile(0.9).unwrap();
/// assert!((440_000..=460_000).contains(&p90));
/// ```

#[derive(Debug, Clone)]
pub struct RandomSketch<T> {
    eps: f64,
    /// h = ⌈log₂(1/ε)⌉; the conceptual merge-tree has height ~h.
    h: u32,
    /// Per-buffer capacity s = ⌈(1/ε)·√h⌉.
    s: usize,
    buffers: Vec<Buffer<T>>,
    /// Index of the buffer currently being filled.
    fill: Option<usize>,
    // --- sampling state for the in-progress group of 2^l elements ---
    group_size: u64,
    group_pos: u64,
    group_target: u64,
    group_choice: Option<T>,
    n: u64,
    rng: Xoshiro256pp,
}

impl<T: Ord + Copy> RandomSketch<T> {
    /// Creates a summary with error target ε and a PRNG seed.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        let h = (1.0 / eps).log2().ceil().max(1.0) as u32;
        let s = ((1.0 / eps) * (h as f64).sqrt()).ceil() as usize;
        let s = s.max(2);
        let b = h as usize + 1;
        Self {
            eps,
            h,
            s,
            buffers: (0..b)
                .map(|_| Buffer {
                    level: 0,
                    data: Vec::with_capacity(s),
                    full: false,
                })
                .collect(),
            fill: None,
            group_size: 1,
            group_pos: 0,
            group_target: 0,
            group_choice: None,
            n: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// The configured ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Buffer count `b = h + 1`.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Per-buffer capacity `s`.
    pub fn buffer_size(&self) -> usize {
        self.s
    }

    /// The active level for a buffer started when `n` elements have
    /// been seen: `max(0, ⌈log₂(n/(s·2^{h−1}))⌉)`.
    fn active_level(&self) -> u32 {
        let denom = self.s as f64 * (1u64 << (self.h - 1)) as f64;
        let ratio = self.n as f64 / denom;
        if ratio <= 1.0 {
            0
        } else {
            ratio.log2().ceil() as u32
        }
    }

    /// Begins a new sampling group of `2^level` elements.
    fn start_group(&mut self, level: u32) {
        self.group_size = 1u64 << level;
        self.group_pos = 0;
        self.group_choice = None;
        self.group_target = if self.group_size == 1 {
            0
        } else {
            self.rng.next_below(self.group_size)
        };
    }

    /// Frees one buffer by merging. Prefers the paper's rule (two
    /// buffers at the lowest level with ≥ 2); if every level holds at
    /// most one full buffer, falls back to a weighted collapse of the
    /// two lowest-level buffers (documented deviation — the equal-level
    /// pair exists in all normal schedules, the fallback only guards
    /// adversarial edge cases).
    fn merge_once(&mut self) {
        debug_assert!(self.buffers.iter().all(|b| b.full));
        // Find the lowest level with at least two full buffers.
        let mut by_level: Vec<(u32, usize)> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (b.level, i))
            .collect();
        by_level.sort_unstable();
        let pair = by_level
            .windows(2)
            .find(|w| w[0].0 == w[1].0)
            .map(|w| (w[0].1, w[1].1));
        if let Some((i, j)) = pair {
            let take_odd = self.rng.next_bool();
            let merged = merge_equal_level(&self.buffers[i].data, &self.buffers[j].data, take_odd);
            let lvl = self.buffers[i].level + 1;
            self.buffers[i].data = merged;
            self.buffers[i].level = lvl;
            self.buffers[i].full = true;
            self.buffers[j].data.clear();
            self.buffers[j].full = false;
            self.buffers[j].level = 0;
        } else {
            // All levels distinct: weighted-collapse the two lowest.
            let (i, j) = (by_level[0].1, by_level[1].1);
            let wi = 1u64 << self.buffers[i].level;
            let wj = 1u64 << self.buffers[j].level;
            let total =
                self.buffers[i].data.len() as u64 * wi + self.buffers[j].data.len() as u64 * wj;
            let lvl_out = self.buffers[j].level.max(self.buffers[i].level) + 1;
            // Cap so |out|·2^lvl_out ≤ total (`random.mass_bound`);
            // both buffers are full here, so the cap is ≥ s/2 ≥ 1.
            let out_size = self
                .s
                .min(usize::try_from(total >> lvl_out).unwrap_or(usize::MAX))
                .max(1);
            let stride = (total / out_size as u64).max(1);
            let offset = self.rng.next_below(stride);
            let (merged, _) = weighted_collapse(
                &[(&self.buffers[i].data, wi), (&self.buffers[j].data, wj)],
                out_size,
                offset,
            );
            let lvl = lvl_out;
            self.buffers[i].data = merged;
            self.buffers[i].level = lvl;
            self.buffers[i].full = true;
            self.buffers[j].data.clear();
            self.buffers[j].full = false;
            self.buffers[j].level = 0;
        }
    }

    /// Ensures the sampler has a fill target. Normally some buffer is
    /// empty, but `merge_from` can pack pooled samples into *every*
    /// slot: resume the lowest-level partial at its own level (the
    /// sampler thins each group of `2^level` arrivals to one sample,
    /// exactly that buffer's weight), or — with every slot truly full —
    /// compact once to free one.
    fn ensure_fill_target(&mut self) {
        if self.fill.is_some() {
            return;
        }
        if let Some(idx) = self
            .buffers
            .iter()
            .position(|b| !b.full && b.data.is_empty())
        {
            let lvl = self.active_level();
            self.buffers[idx].level = lvl;
            self.fill = Some(idx);
            self.start_group(lvl);
            return;
        }
        let partial = self
            .buffers
            .iter()
            .enumerate()
            .filter(|&(_, b)| !b.full)
            .min_by_key(|&(_, b)| b.level)
            .map(|(i, _)| i);
        if let Some(idx) = partial {
            self.fill = Some(idx);
            self.start_group(self.buffers[idx].level);
            return;
        }
        self.merge_once();
        let idx = self
            .buffers
            .iter()
            .position(|b| !b.full && b.data.is_empty())
            .expect("RandomSketch invariant: merge_once frees a buffer");
        let lvl = self.active_level();
        self.buffers[idx].level = lvl;
        self.fill = Some(idx);
        self.start_group(lvl);
    }

    /// The live weighted buffers (including the partial fill buffer and
    /// the committed part of the in-progress group).
    fn live_buffers(&self) -> Vec<(&[T], u64)> {
        self.buffers
            .iter()
            .filter(|b| !b.data.is_empty())
            .map(|b| (b.data.as_slice(), 1u64 << b.level))
            .collect()
    }

    /// Current levels of the full buffers (inspection/tests).
    pub fn levels(&self) -> Vec<u32> {
        self.buffers
            .iter()
            .filter(|b| b.full)
            .map(|b| b.level)
            .collect()
    }

    /// Merges another summary into this one — the mergeable-summary
    /// operation of Agarwal et al. [1] that `Random` descends from
    /// (§2.2: "inspired by the algorithm ... that provides the
    /// mergeable property").
    ///
    /// Both summaries' full buffers are pooled; equal-level pairs are
    /// merged with the usual odd/even rule until at most `b` buffers
    /// remain (unpaired stragglers are weighted-collapsed at the end if
    /// still over budget). Partial fill buffers are folded in by
    /// replaying their samples at their buffer's level. The combined
    /// summary keeps the ε guarantee with the usual mergeable-summary
    /// constant.
    ///
    /// # Panics
    /// Panics if the two summaries were built with different ε.
    pub fn merge(&mut self, other: &mut RandomSketch<T>) {
        // Thin wrapper over the consuming form: take `other`'s state,
        // leaving it a fresh empty summary with the same ε (the
        // pre-merge contract — `other` ends up drained either way).
        let eps = other.eps;
        self.merge_from(std::mem::replace(other, RandomSketch::new(eps, 0)));
    }

    /// Consuming form of [`merge`](RandomSketch::merge): the primitive
    /// the engine's balanced merge tree folds with
    /// ([`MergeableSummary`](crate::MergeableSummary)). Taking `other`
    /// by value lets the tree hand summaries down the fold without
    /// leaving drained husks behind, and the pooled equal-level merge
    /// below compacts once per call — no double-compression when the
    /// result immediately feeds the next round.
    ///
    /// # Panics
    /// Panics if the two summaries were built with different ε.
    pub fn merge_from(&mut self, mut other: RandomSketch<T>) {
        assert!(
            (self.eps - other.eps).abs() < 1e-12,
            "RandomSketch merge: eps mismatch ({} vs {})",
            self.eps,
            other.eps
        );
        // Pool all nonempty buffers as (level, sorted samples). Partial
        // buffers participate at their own level; in-progress groups
        // are dropped (bounded by one group each, same as queries).
        let mut pool: Vec<(u32, Vec<T>)> = Vec::new();
        for b in self.buffers.iter_mut().chain(other.buffers.iter_mut()) {
            if !b.data.is_empty() {
                b.data.sort_unstable();
                pool.push((b.level, std::mem::take(&mut b.data)));
            }
            b.full = false;
            b.level = 0;
        }
        self.n += other.n;
        self.fill = None;

        // Repeatedly merge the lowest equal-level pair until we fit.
        let budget = self.buffers.len();
        loop {
            pool.sort_by_key(|(l, _)| *l);
            if pool.len() <= budget {
                break;
            }
            let pair = pool.windows(2).position(|w| w[0].0 == w[1].0);
            match pair {
                Some(i) => {
                    let (lvl, a) = pool.remove(i);
                    let (_, b) = pool.remove(i);
                    // Pad odd-sized partial buffers implicitly: the
                    // odd/even rule works on any sorted pair.
                    let mut merged = merge_equal_level(&a, &b, self.rng.next_bool());
                    // An odd combined size with the even rule keeps
                    // ⌈m/2⌉ samples, which at weight 2^(l+1) would
                    // represent one group more than actually arrived;
                    // drop a uniform sample to preserve the
                    // `random.mass_bound` invariant Σ 2^level·|data| ≤ n.
                    if merged.len() * 2 > a.len() + b.len() {
                        let drop = self.rng.next_below(merged.len() as u64) as usize;
                        merged.remove(drop);
                    }
                    pool.push((lvl + 1, merged));
                }
                None => {
                    // All levels distinct but still over budget:
                    // weighted-collapse the two lowest.
                    let (l0, a) = pool.remove(0);
                    let (l1, b) = pool.remove(0);
                    let (wa, wb) = (1u64 << l0, 1u64 << l1);
                    let total = a.len() as u64 * wa + b.len() as u64 * wb;
                    // Cap the output so |out|·2^(l1+1) ≤ total: the
                    // collapse must not represent more mass than its
                    // inputs did (`random.mass_bound`). When the two
                    // buffers hold less than one merged-level group,
                    // drop them outright — a loss bounded by one
                    // group, same as the in-progress groups above.
                    let cap = usize::try_from(total >> (l1 + 1)).unwrap_or(usize::MAX);
                    if cap == 0 {
                        continue;
                    }
                    let out_size = self.s.min(cap);
                    let stride = (total / out_size as u64).max(1);
                    let offset = self.rng.next_below(stride);
                    let (merged, _) = weighted_collapse(&[(&a, wa), (&b, wb)], out_size, offset);
                    pool.push((l1 + 1, merged));
                }
            }
        }
        for (slot, (lvl, data)) in self.buffers.iter_mut().zip(pool) {
            slot.level = lvl;
            slot.full = data.len() >= self.s;
            slot.data = data;
        }
    }
}

impl<T: Ord + Copy> crate::MergeableSummary<T> for RandomSketch<T> {
    fn merge_from(&mut self, other: Self) {
        RandomSketch::merge_from(self, other);
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        (self.eps - other.eps).abs() < 1e-12
    }
}

impl crate::codec::WireCodec for RandomSketch<u64> {
    const WIRE_KIND: u8 = crate::codec::KIND_RANDOM;

    /// Body layout (little-endian): ε bits `u64`, `h u32`, `s u64`,
    /// `n u64`, fill index `u64` (`u64::MAX` = none), sampler
    /// `group_size`/`group_pos`/`group_target` `u64`×3, group-choice
    /// flag `u8` + value `u64`, RNG state `u64`×4, buffer count `u64`,
    /// then per buffer: `level u32`, full flag `u8`, length-prefixed
    /// samples. Serializing the sampler and RNG state makes the decoded
    /// summary *stream-identical* to the original: further inserts make
    /// exactly the random choices the sender would have made.
    fn encode_body(&mut self, out: &mut Vec<u8>) {
        // Between buffers (`fill == None` — e.g. an insert just filled
        // one) the sampler sits in a completed-group state: choice
        // handed off, position parked at the end of the group. That
        // state is dormant — the next insert starts a fresh group
        // before touching it — but it violates the decoder's mid-group
        // invariants, so park it in the canonical dormant state `new()`
        // uses instead. The next insert draws from the serialized RNG
        // either way, so sender and decoded summary stay
        // stream-identical.
        if self.fill.is_none() {
            self.group_size = 1;
            self.group_pos = 0;
            self.group_target = 0;
            self.group_choice = None;
        }
        out.extend_from_slice(&self.eps.to_bits().to_le_bytes());
        out.extend_from_slice(&self.h.to_le_bytes());
        out.extend_from_slice(&(self.s as u64).to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        let fill = self.fill.map_or(u64::MAX, |i| i as u64);
        out.extend_from_slice(&fill.to_le_bytes());
        out.extend_from_slice(&self.group_size.to_le_bytes());
        out.extend_from_slice(&self.group_pos.to_le_bytes());
        out.extend_from_slice(&self.group_target.to_le_bytes());
        out.push(u8::from(self.group_choice.is_some()));
        out.extend_from_slice(&self.group_choice.unwrap_or(0).to_le_bytes());
        for w in self.rng.state() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(self.buffers.len() as u64).to_le_bytes());
        for b in &self.buffers {
            out.extend_from_slice(&b.level.to_le_bytes());
            out.push(u8::from(b.full));
            crate::codec::put_u64_slice(out, &b.data);
        }
    }

    fn decode_body(body: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{CodecError, Reader};
        let mut r = Reader::new(body);
        let eps = f64::from_bits(r.u64()?);
        let h = r.u32()?;
        // h bounds the `1 << (h-1)` in `active_level`; the per-buffer
        // levels bound the `<< level` mass shifts. Anything past 63
        // would overflow, so it is rejected here rather than audited.
        if !(1..=63).contains(&h) {
            return Err(CodecError::Malformed("Random: h outside 1..=63"));
        }
        let s = usize::try_from(r.u64()?)
            .map_err(|_| CodecError::Malformed("Random: buffer size exceeds address space"))?;
        let n = r.u64()?;
        let fill_raw = r.u64()?;
        let group_size = r.u64()?;
        let group_pos = r.u64()?;
        let group_target = r.u64()?;
        let has_choice = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Malformed("Random: group-choice flag not 0/1")),
        };
        let choice_val = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let buf_count = r.read_len()?;
        // Each buffer costs at least 13 header bytes, so an honest
        // count never exceeds the room the body actually has.
        if buf_count > r.remaining() / 13 {
            return Err(CodecError::Truncated);
        }
        let mut buffers = Vec::with_capacity(buf_count);
        for _ in 0..buf_count {
            let level = r.u32()?;
            if level > 63 {
                return Err(CodecError::Malformed("Random: buffer level exceeds 63"));
            }
            let full = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::Malformed("Random: full flag not 0/1")),
            };
            let data = r.u64_vec()?;
            buffers.push(Buffer { level, data, full });
        }
        r.done()?;
        let fill =
            if fill_raw == u64::MAX {
                None
            } else {
                Some(usize::try_from(fill_raw).map_err(|_| {
                    CodecError::Malformed("Random: fill index exceeds address space")
                })?)
            };
        // The itemwise sampler assumes a choice is pending exactly when
        // the position has passed the target, and that the position
        // stays inside the group between inserts; frames violating
        // either would make a later insert panic.
        if has_choice != (group_pos > group_target) {
            return Err(CodecError::Malformed(
                "Random: sampler choice/position disagree",
            ));
        }
        if group_size == 0 || group_pos >= group_size {
            return Err(CodecError::Malformed(
                "Random: sampler position outside group",
            ));
        }
        Ok(Self {
            eps,
            h,
            s,
            buffers,
            fill,
            group_size,
            group_pos,
            group_target,
            group_choice: has_choice.then_some(choice_val),
            n,
            rng: Xoshiro256pp::from_state(rng_state),
        })
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for RandomSketch<T> {
    /// `Random` invariants (§2.2): the `b = h+1` / `s = ⌈(1/ε)√h⌉`
    /// sizing formulas, per-buffer fill discipline (`full ⇔ |data| = s`,
    /// full buffers sorted), the level sampler drawing its target
    /// uniformly inside the current `2^l` group, and the represented
    /// mass `Σ 2^level·|data|` never exceeding the arrivals `n`.
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "Random";
        ensure(
            self.eps > 0.0 && self.eps < 1.0,
            ALG,
            "random.eps_range",
            || format!("eps = {} outside (0,1)", self.eps),
        )?;
        ensure(
            self.buffers.len() == self.h as usize + 1,
            ALG,
            "random.buffer_count",
            || format!("{} buffers ≠ b = h+1 = {}", self.buffers.len(), self.h + 1),
        )?;
        ensure(
            self.s >= 2 && self.s >= (1.0 / self.eps).floor() as usize,
            ALG,
            "random.buffer_size",
            || {
                format!(
                    "s = {} below the ⌈(1/ε)√h⌉ sizing for eps {}",
                    self.s, self.eps
                )
            },
        )?;
        let mut mass = 0u64;
        for (i, b) in self.buffers.iter().enumerate() {
            ensure(
                b.data.len() <= self.s,
                ALG,
                "random.buffer_overflow",
                || format!("buffer {i} holds {} > s = {}", b.data.len(), self.s),
            )?;
            ensure(
                b.full == (b.data.len() == self.s),
                ALG,
                "random.fill_flag",
                || {
                    format!(
                        "buffer {i}: full = {} but |data| = {} (s = {})",
                        b.full,
                        b.data.len(),
                        self.s
                    )
                },
            )?;
            if b.full {
                ensure(
                    b.data.windows(2).all(|w| w[0] <= w[1]),
                    ALG,
                    "random.full_buffer_sorted",
                    || format!("full buffer {i} at level {} is not sorted", b.level),
                )?;
            }
            mass += (b.data.len() as u64) << b.level;
        }
        ensure(mass <= self.n, ALG, "random.mass_bound", || {
            format!("represented mass {mass} exceeds arrivals n = {}", self.n)
        })?;
        ensure(
            self.group_size.is_power_of_two(),
            ALG,
            "random.group_size_pow2",
            || {
                format!(
                    "sampling group size {} is not a power of two",
                    self.group_size
                )
            },
        )?;
        ensure(
            self.group_target < self.group_size,
            ALG,
            "random.sampler_target",
            || {
                format!(
                    "sampler target {} outside group of {}",
                    self.group_target, self.group_size
                )
            },
        )?;
        ensure(
            self.group_pos <= self.group_size,
            ALG,
            "random.sampler_pos",
            || {
                format!(
                    "sampler position {} beyond group of {}",
                    self.group_pos, self.group_size
                )
            },
        )?;
        if let Some(idx) = self.fill {
            ensure(idx < self.buffers.len(), ALG, "random.fill_index", || {
                format!("fill index {idx} out of range")
            })?;
            ensure(!self.buffers[idx].full, ALG, "random.fill_not_full", || {
                format!("fill buffer {idx} is already marked full")
            })?;
            ensure(
                self.group_size == 1u64 << self.buffers[idx].level,
                ALG,
                "random.sampler_level",
                || {
                    format!(
                        "group size {} ≠ 2^level for fill buffer at level {}",
                        self.group_size, self.buffers[idx].level
                    )
                },
            )?;
        }
        Ok(())
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for RandomSketch<T> {
    fn insert(&mut self, x: T) {
        // Ensure a fill target exists before consuming the element.
        self.ensure_fill_target();
        self.n += 1;

        if self.group_pos == self.group_target {
            self.group_choice = Some(x);
        }
        self.group_pos += 1;
        if self.group_pos == self.group_size {
            let idx = self
                .fill
                .expect("RandomSketch invariant: fill buffer selected before append");
            let chosen = self
                .group_choice
                .take()
                .expect("RandomSketch invariant: group choice set when targeting a group");
            self.buffers[idx].data.push(chosen);
            if self.buffers[idx].data.len() == self.s {
                self.buffers[idx].data.sort_unstable();
                self.buffers[idx].full = true;
                self.fill = None;
                if self.buffers.iter().all(|b| b.full) {
                    self.merge_once();
                }
            } else {
                let lvl = self.buffers[idx].level;
                self.start_group(lvl);
            }
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    /// Bulk insert. While the active sampling level is 0 every group
    /// has size one and every arrival is kept, so whole slices are
    /// appended to the fill buffer directly — the same state itemwise
    /// insertion would produce, without the per-element sampler
    /// bookkeeping. Once the sampler is subsampling (level ≥ 1)
    /// elements go through the itemwise path, which is already O(1)
    /// amortized.
    fn insert_batch(&mut self, xs: &[T]) {
        let mut rest = xs;
        while !rest.is_empty() {
            self.ensure_fill_target();
            if self.group_size != 1 {
                // Sampled regime: fall back to the itemwise sampler.
                let (&x, tail) = rest
                    .split_first()
                    .expect("RandomSketch invariant: loop guard ensures a nonempty slice");
                self.insert(x);
                rest = tail;
                continue;
            }
            let idx = self
                .fill
                .expect("RandomSketch invariant: fill buffer selected before append");
            let room = self.s - self.buffers[idx].data.len();
            let take = room.min(rest.len());
            self.buffers[idx].data.extend_from_slice(
                rest.get(..take)
                    .expect("RandomSketch invariant: take is bounded by the slice length"),
            );
            self.n += take as u64;
            rest = rest.get(take..).unwrap_or(&[]);
            if self.buffers[idx].data.len() == self.s {
                self.buffers[idx].data.sort_unstable();
                self.buffers[idx].full = true;
                self.fill = None;
                if self.buffers.iter().all(|b| b.full) {
                    self.merge_once();
                }
            } else {
                // Leave the level-0 sampler exactly as itemwise
                // insertion would: at the start of a fresh group.
                let lvl = self.buffers[idx].level;
                self.start_group(lvl);
            }
        }
        #[cfg(any(test, feature = "audit"))]
        sqs_util::audit::CheckInvariants::assert_invariants(self);
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        weighted_rank(&self.live_buffers(), x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        weighted_quantile(&self.live_buffers(), phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        weighted_quantile_grid(&self.live_buffers(), &sqs_util::exact::probe_phis(eps))
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

impl<T> SpaceUsage for RandomSketch<T> {
    fn space_bytes(&self) -> usize {
        // §4.2.5: "the buffers are pre-allocated according to ε", so
        // the footprint is the constant b·s elements plus per-buffer
        // level/fill bookkeeping.
        words(self.buffers.len() * (self.s + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};

    fn observed_max_err(eps: f64, data: Vec<u64>, seed: u64) -> f64 {
        let mut s = RandomSketch::new(eps, seed);
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .into_iter()
            .map(|p| (p, s.quantile(p).unwrap()))
            .collect();
        observed_errors(&oracle, &answers).0
    }

    #[test]
    fn parameters_match_formulas() {
        let s = RandomSketch::<u64>::new(0.01, 1);
        assert_eq!(s.h, 7); // ⌈log₂ 100⌉
        assert_eq!(s.buffer_count(), 8);
        assert_eq!(s.buffer_size(), (100.0 * 7f64.sqrt()).ceil() as usize);
    }

    #[test]
    fn small_stream_is_exact() {
        // While n ≤ b·s every element is retained at level 0, so
        // queries are exact.
        let mut s = RandomSketch::new(0.1, 2);
        let data: Vec<u64> = (0..50).collect();
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_eq!(oracle.quantile_error(phi, s.quantile(phi).unwrap()), 0.0);
        }
    }

    #[test]
    fn error_within_eps_with_slack_random_data() {
        let mut rng = sqs_util::rng::Xoshiro256pp::new(77);
        let data: Vec<u64> = (0..100_000).map(|_| rng.next_below(1 << 30)).collect();
        // Randomized guarantee: check against 1.5ε over a few seeds and
        // require the *average* within ε (the observed error in the
        // paper is far below ε).
        let eps = 0.02;
        let errs: Vec<f64> = (0..5)
            .map(|seed| observed_max_err(eps, data.clone(), seed))
            .collect();
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(avg <= eps, "avg of max errors {avg} > eps {eps} ({errs:?})");
        assert!(errs.iter().all(|&e| e <= 2.0 * eps), "outlier: {errs:?}");
    }

    #[test]
    fn error_within_eps_sorted_data() {
        let data: Vec<u64> = (0..100_000).collect();
        let e = observed_max_err(0.02, data, 3);
        assert!(e <= 0.04, "err = {e}");
    }

    #[test]
    fn levels_grow_with_stream() {
        let mut s = RandomSketch::new(0.05, 4);
        for x in 0..200_000u64 {
            s.insert(x);
        }
        let max_lvl = s.levels().into_iter().max().unwrap_or(0);
        assert!(max_lvl >= 2, "max level = {max_lvl}");
        // Sampling keeps the space fixed regardless.
        assert_eq!(
            s.space_bytes(),
            s.buffer_count() * (s.buffer_size() + 2) * 4
        );
    }

    #[test]
    fn n_is_counted_exactly() {
        let mut s = RandomSketch::new(0.1, 5);
        for x in 0..12_345u64 {
            s.insert(x);
        }
        assert_eq!(s.n(), 12_345);
    }

    #[test]
    fn deterministic_given_seed() {
        let data: Vec<u64> = (0..50_000).map(|i| (i * 2654435761) % 99_991).collect();
        let mut a = RandomSketch::new(0.05, 9);
        let mut b = RandomSketch::new(0.05, 9);
        for &x in &data {
            a.insert(x);
            b.insert(x);
        }
        for phi in [0.2, 0.5, 0.8] {
            assert_eq!(a.quantile(phi), b.quantile(phi));
        }
    }

    #[test]
    fn rank_estimates_are_monotone_enough() {
        let mut s = RandomSketch::new(0.05, 10);
        for x in 0..50_000u64 {
            s.insert(x);
        }
        let r1 = s.rank_estimate(10_000);
        let r2 = s.rank_estimate(40_000);
        assert!(r1 < r2);
        assert!((r1 as f64) < 0.3 * 50_000.0);
        assert!((r2 as f64) > 0.6 * 50_000.0);
    }

    #[test]
    fn empty_returns_none() {
        let mut s = RandomSketch::<u64>::new(0.1, 11);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn merge_combines_two_streams() {
        let eps = 0.05;
        let mut rng = sqs_util::rng::Xoshiro256pp::new(21);
        let a_data: Vec<u64> = (0..80_000).map(|_| rng.next_below(1 << 20)).collect();
        let b_data: Vec<u64> = (0..80_000)
            .map(|_| (1 << 19) + rng.next_below(1 << 20))
            .collect();
        let mut a = RandomSketch::new(eps, 1);
        let mut b = RandomSketch::new(eps, 2);
        for &x in &a_data {
            a.insert(x);
        }
        for &x in &b_data {
            b.insert(x);
        }
        a.merge(&mut b);
        assert_eq!(a.n(), 160_000);
        let mut all = a_data;
        all.extend(b_data);
        let oracle = ExactQuantiles::new(all);
        for phi in [0.1, 0.5, 0.9] {
            let q = a.quantile(phi).unwrap();
            let err = oracle.quantile_error(phi, q);
            // Mergeable-summary constant: allow 2ε.
            assert!(err <= 2.0 * eps, "phi={phi}: err {err}");
        }
    }

    #[test]
    fn merge_tree_of_many_shards() {
        let eps = 0.05;
        let mut shards: Vec<RandomSketch<u64>> = Vec::new();
        let mut all = Vec::new();
        for i in 0..8u64 {
            let mut rng = sqs_util::rng::Xoshiro256pp::new(100 + i);
            let data: Vec<u64> = (0..20_000).map(|_| rng.next_below(1 << 16)).collect();
            let mut s = RandomSketch::new(eps, i);
            for &x in &data {
                s.insert(x);
            }
            all.extend(data);
            shards.push(s);
        }
        while shards.len() > 1 {
            let mut next = Vec::new();
            let mut it = shards.into_iter();
            while let (Some(mut a), Some(mut b)) = (it.next(), it.next()) {
                a.merge(&mut b);
                next.push(a);
            }
            shards = next;
        }
        let mut root = shards.pop().unwrap();
        assert_eq!(root.n(), 160_000);
        let oracle = ExactQuantiles::new(all);
        for phi in [0.25, 0.5, 0.75] {
            let err = oracle.quantile_error(phi, root.quantile(phi).unwrap());
            assert!(err <= 2.5 * eps, "phi={phi}: err {err}");
        }
    }

    #[test]
    fn merge_with_empty_keeps_answers_valid() {
        let mut a = RandomSketch::new(0.1, 5);
        for x in 0..10_000u64 {
            a.insert(x);
        }
        let mut empty = RandomSketch::new(0.1, 6);
        a.merge(&mut empty);
        assert_eq!(a.n(), 10_000);
        let q = a.quantile(0.5).unwrap();
        assert!((4_000..6_000).contains(&q), "median {q}");
    }

    #[test]
    #[should_panic(expected = "eps mismatch")]
    fn merge_rejects_mismatched_eps() {
        let mut a = RandomSketch::<u64>::new(0.1, 1);
        let mut b = RandomSketch::<u64>::new(0.2, 2);
        a.merge(&mut b);
    }

    #[test]
    fn insert_batch_is_rank_equivalent_to_itemwise() {
        // The bulk path replays the itemwise sampler exactly (level-0
        // appends keep every element; higher levels fall back), so the
        // two states answer every probe identically.
        let mut rng = sqs_util::rng::Xoshiro256pp::new(31);
        let data: Vec<u64> = (0..120_000).map(|_| rng.next_below(1 << 24)).collect();
        let mut itemwise = RandomSketch::new(0.02, 9);
        let mut batched = RandomSketch::new(0.02, 9);
        for &x in &data {
            itemwise.insert(x);
        }
        for chunk in data.chunks(997) {
            batched.insert_batch(chunk);
        }
        assert_eq!(itemwise.n(), batched.n());
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            assert_eq!(itemwise.quantile(phi), batched.quantile(phi), "phi={phi}");
        }
        for x in [1u64 << 20, 1 << 22, 1 << 23] {
            assert_eq!(itemwise.rank_estimate(x), batched.rank_estimate(x));
        }
    }

    #[test]
    fn merge_from_consuming_matches_wrapper() {
        let eps = 0.05;
        let build = |seed: u64, lo: u64| {
            let mut s = RandomSketch::new(eps, seed);
            for x in 0..40_000u64 {
                s.insert(lo + (x * 2654435761) % 100_000);
            }
            s
        };
        let mut via_wrapper = build(1, 0);
        let mut donor = build(2, 50_000);
        via_wrapper.merge(&mut donor);
        let mut via_consume = build(1, 0);
        via_consume.merge_from(build(2, 50_000));
        assert_eq!(via_wrapper.n(), via_consume.n());
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(via_wrapper.quantile(phi), via_consume.quantile(phi));
        }
        // The drained donor is a usable empty summary.
        assert_eq!(donor.n(), 0);
        donor.insert(7);
        assert_eq!(donor.quantile(0.5), Some(7));
    }

    #[test]
    fn insert_compacts_when_merge_left_no_buffer_empty() {
        // `merge_from` may pack pooled samples into every slot (the
        // last one partial). Reconstruct that post-merge state and
        // check inserts compact instead of panicking (regression: the
        // durable-store recovery path absorbs a checkpoint and then
        // replays WAL batches into the same sketch).
        let mut s = RandomSketch::new(0.05, 11);
        for x in 0..40_000u64 {
            s.insert((x * 2654435761) % 100_000);
        }
        s.fill = None;
        s.group_size = 1;
        s.group_pos = 0;
        s.group_target = 0;
        s.group_choice = None;
        for b in &mut s.buffers {
            if b.data.is_empty() {
                b.data.push(7);
                b.full = false;
                b.level = 0;
                s.n += 1;
            }
        }
        let before = s.n();
        s.insert(9);
        s.insert_batch(&[1, 2, 3]);
        assert_eq!(s.n(), before + 4);
        assert!(s.quantile(0.5).is_some());
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    fn filled() -> RandomSketch<u64> {
        let mut s = RandomSketch::new(0.05, 7);
        for x in 0..20_000u64 {
            s.insert(20_000 - x);
        }
        s
    }

    #[test]
    fn auditor_catches_unsorted_full_buffer() {
        let mut s = filled();
        let b = s
            .buffers
            .iter_mut()
            .find(|b| b.full && b.data.len() >= 2 && b.data[0] != b.data[b.data.len() - 1])
            .expect("a full buffer with distinct values");
        b.data.reverse();
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "Random");
        assert_eq!(err.invariant, "random.full_buffer_sorted");
    }

    #[test]
    fn auditor_catches_mass_inflation() {
        let mut s = filled();
        let extra = vec![1u64; 3];
        s.buffers
            .iter_mut()
            .filter(|b| b.full)
            .for_each(|b| b.data.extend(&extra));
        let err = s.check_invariants().unwrap_err();
        assert!(
            err.invariant == "random.mass_bound"
                || err.invariant == "random.buffer_overflow"
                || err.invariant == "random.fill_flag"
                || err.invariant == "random.full_buffer_sorted",
            "unexpected invariant {}",
            err.invariant
        );
    }
}
