//! The classic random-sampling baseline (§1.2.1): a uniform sample of
//! `O((1/ε²)·log(1/ε))` elements preserves all quantiles within ε with
//! constant probability (Vapnik–Chervonenkis).
//!
//! The paper notes the original sample-then-summarize scheme needs `n`
//! in advance; a *reservoir* sample removes that requirement while
//! keeping the guarantee, which is the variant implemented here
//! (documented deviation). Queries answer from the exact quantiles of
//! the reservoir. This baseline is what the sophisticated algorithms
//! must beat: its space is quadratic in 1/ε where theirs is linear.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::QuantileSummary;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

/// Cap on the reservoir so tiny ε doesn't demand gigabytes; once the
/// VC bound exceeds the cap the ε guarantee is no longer formal (the
/// harness surfaces this in the error plots, which is the point of a
/// baseline).
const MAX_RESERVOIR: usize = 1 << 23;

/// Reservoir-sampling quantile baseline (randomized, comparison-based).
#[derive(Debug, Clone)]
pub struct ReservoirQuantiles<T> {
    capacity: usize,
    reservoir: Vec<T>,
    sorted: bool,
    n: u64,
    rng: Xoshiro256pp,
}

impl<T: Ord + Copy> ReservoirQuantiles<T> {
    /// Creates the baseline for error target ε: reservoir of
    /// `⌈(1/ε²)·ln(2/ε)⌉` elements (capped at 2^23).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1`.
    pub fn new(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        let want = ((1.0 / (eps * eps)) * (2.0 / eps).ln()).ceil() as usize;
        Self::with_capacity(want.clamp(16, MAX_RESERVOIR), seed)
    }

    /// Creates the baseline with an explicit reservoir capacity.
    pub fn with_capacity(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            capacity,
            reservoir: Vec::with_capacity(capacity.min(1 << 16)),
            sorted: false,
            n: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently held.
    pub fn sample_len(&self) -> usize {
        self.reservoir.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.reservoir.sort_unstable();
            self.sorted = true;
        }
    }

    /// Merges `other` into `self`, consuming it — the sampled fallback
    /// the engine uses where the paper's GK summaries (which are not
    /// mergeable without weakening ε) would otherwise be the backend.
    ///
    /// While both sides still hold every element they have seen, the
    /// union is kept exactly (still a uniform sample). Once either
    /// side is subsampled, the merged reservoir draws each slot from
    /// one of the two parents with probability proportional to the
    /// stream mass its remaining sample represents, without
    /// replacement — the merged sample is uniform over the combined
    /// stream up to the parents' own sampling variance, so the VC
    /// bound behind [`new`](ReservoirQuantiles::new) carries over.
    ///
    /// # Panics
    /// Panics if the two reservoirs were built with different
    /// capacities (i.e. different ε).
    pub fn merge_from(&mut self, mut other: ReservoirQuantiles<T>) {
        assert_eq!(
            self.capacity, other.capacity,
            "Reservoir merge: capacity mismatch"
        );
        if other.n == 0 {
            return;
        }
        let n_total = self.n + other.n;
        if self.n as usize == self.reservoir.len()
            && other.n as usize == other.reservoir.len()
            && self.reservoir.len() + other.reservoir.len() <= self.capacity
        {
            // Both sides exact and the union fits: keep everything.
            self.reservoir.append(&mut other.reservoir);
            self.sorted = false;
            self.n = n_total;
            return;
        }
        // Per-element represented stream mass on each side.
        let wa = self.n as f64 / self.reservoir.len().max(1) as f64;
        let wb = other.n as f64 / other.reservoir.len().max(1) as f64;
        let k = self
            .capacity
            .min(self.reservoir.len() + other.reservoir.len());
        let mut merged = Vec::with_capacity(k);
        let mut a = std::mem::take(&mut self.reservoir);
        let mut b = std::mem::take(&mut other.reservoir);
        for _ in 0..k {
            let (ra, rb) = (a.len() as f64 * wa, b.len() as f64 * wb);
            // A 53-bit uniform draw decides the side by remaining mass.
            let u = (self.rng.next_below(1u64 << 53) as f64) / (1u64 << 53) as f64;
            let side = if b.is_empty() || (!a.is_empty() && u < ra / (ra + rb)) {
                &mut a
            } else {
                &mut b
            };
            if side.is_empty() {
                break;
            }
            let at = self.rng.next_below(side.len() as u64) as usize;
            merged.push(side.swap_remove(at));
        }
        self.reservoir = merged;
        self.sorted = false;
        self.n = n_total;
    }
}

impl<T: Ord + Copy> crate::MergeableSummary<T> for ReservoirQuantiles<T> {
    fn merge_from(&mut self, other: Self) {
        ReservoirQuantiles::merge_from(self, other);
    }

    fn merge_compatible(&self, other: &Self) -> bool {
        self.capacity == other.capacity
    }
}

impl crate::codec::WireCodec for ReservoirQuantiles<u64> {
    const WIRE_KIND: u8 = crate::codec::KIND_RESERVOIR;

    /// Body layout (little-endian): `capacity u64`, `n u64`, sorted
    /// flag `u8`, RNG state `u64`×4, length-prefixed samples. The RNG
    /// state travels with the sample so Algorithm R's replacement draws
    /// resume exactly where the sender stopped.
    fn encode_body(&mut self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.capacity as u64).to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.push(u8::from(self.sorted));
        for w in self.rng.state() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        crate::codec::put_u64_slice(out, &self.reservoir);
    }

    fn decode_body(body: &[u8]) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::{CodecError, Reader};
        let mut r = Reader::new(body);
        let capacity = usize::try_from(r.u64()?)
            .map_err(|_| CodecError::Malformed("Reservoir: capacity exceeds address space"))?;
        let n = r.u64()?;
        let sorted = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Malformed("Reservoir: sorted flag not 0/1")),
        };
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let reservoir = r.u64_vec()?;
        r.done()?;
        // `capacity > 0`, the fill level `|reservoir| = min(n, cap)`,
        // and the sorted-flag/order agreement are all enforced by the
        // `CheckInvariants` audit the framed decode runs afterwards.
        Ok(Self {
            capacity,
            reservoir,
            sorted,
            n,
            rng: Xoshiro256pp::from_state(rng_state),
        })
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for ReservoirQuantiles<T> {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "Reservoir";
        ensure(
            self.capacity > 0,
            ALG,
            "reservoir.capacity_positive",
            || "reservoir capacity is zero".to_string(),
        )?;
        ensure(
            self.reservoir.len() <= self.capacity,
            ALG,
            "reservoir.size_bound",
            || {
                format!(
                    "reservoir holds {} elements, capacity {}",
                    self.reservoir.len(),
                    self.capacity
                )
            },
        )?;
        // Algorithm R keeps the reservoir exactly full once n >= capacity,
        // and exactly n-sized before that.
        let expect = (self.n as usize).min(self.capacity);
        ensure(
            self.reservoir.len() == expect,
            ALG,
            "reservoir.fill_level",
            || {
                format!(
                    "reservoir holds {} elements but n = {} implies {}",
                    self.reservoir.len(),
                    self.n,
                    expect
                )
            },
        )?;
        ensure(
            !self.sorted || self.reservoir.windows(2).all(|w| w[0] <= w[1]),
            ALG,
            "reservoir.sorted_flag",
            || "sorted flag set but reservoir is out of order".to_string(),
        )
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for ReservoirQuantiles<T> {
    fn insert(&mut self, x: T) {
        self.n += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(x);
            self.sorted = false;
        } else {
            // Algorithm R: element n replaces a random slot w.p. cap/n.
            let j = self.rng.next_below(self.n);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = x;
                self.sorted = false;
            }
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        if self.reservoir.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let in_sample = self.reservoir.partition_point(|&v| v < x) as u64;
        // Scale the sample rank back to stream scale.
        (in_sample as f64 / self.reservoir.len() as f64 * self.n as f64) as u64
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        if self.reservoir.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = ((phi * self.reservoir.len() as f64) as usize).min(self.reservoir.len() - 1);
        Some(self.reservoir[idx])
    }

    fn name(&self) -> &'static str {
        "Reservoir"
    }
}

impl<T> SpaceUsage for ReservoirQuantiles<T> {
    fn space_bytes(&self) -> usize {
        words(self.reservoir.len().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::ExactQuantiles;
    use sqs_util::rng::Xoshiro256pp;

    #[test]
    fn below_capacity_is_exact() {
        let mut s = ReservoirQuantiles::with_capacity(1000, 1);
        let data: Vec<u64> = (0..500).rev().collect();
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(oracle.quantile_error(phi, s.quantile(phi).unwrap()), 0.0);
        }
    }

    #[test]
    fn sample_size_never_exceeds_capacity() {
        let mut s = ReservoirQuantiles::with_capacity(100, 2);
        for x in 0..10_000u64 {
            s.insert(x);
        }
        assert_eq!(s.sample_len(), 100);
        assert_eq!(s.n(), 10_000);
    }

    #[test]
    fn sampled_median_is_close() {
        let mut rng = Xoshiro256pp::new(3);
        let mut s = ReservoirQuantiles::new(0.05, 4);
        let data: Vec<u64> = (0..200_000).map(|_| rng.next_below(1_000_000)).collect();
        for &x in &data {
            s.insert(x);
        }
        let oracle = ExactQuantiles::new(data);
        let err = oracle.quantile_error(0.5, s.quantile(0.5).unwrap());
        assert!(err <= 0.05, "err = {err}");
    }

    #[test]
    fn reservoir_is_unbiased_enough() {
        // Mean of reservoir over uniform stream ≈ stream mean.
        let mut s = ReservoirQuantiles::with_capacity(2_000, 5);
        for x in 0..100_000u64 {
            s.insert(x);
        }
        let mean: f64 = s.reservoir.iter().map(|&x| x as f64).sum::<f64>() / s.sample_len() as f64;
        assert!((mean - 50_000.0).abs() < 4_000.0, "mean = {mean}");
    }

    #[test]
    fn eps_sizing_monotone() {
        let a = ReservoirQuantiles::<u64>::new(0.1, 1).capacity();
        let b = ReservoirQuantiles::<u64>::new(0.01, 1).capacity();
        assert!(b > a);
        assert!(b <= MAX_RESERVOIR);
    }

    #[test]
    fn empty_is_none() {
        let mut s = ReservoirQuantiles::<u64>::with_capacity(10, 7);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.rank_estimate(5), 0);
    }

    #[test]
    fn merge_of_exact_reservoirs_keeps_everything() {
        let mut a = ReservoirQuantiles::with_capacity(1_000, 11);
        let mut b = ReservoirQuantiles::with_capacity(1_000, 12);
        for x in 0..300u64 {
            a.insert(x);
            b.insert(1_000 + x);
        }
        a.merge_from(b);
        assert_eq!(a.n(), 600);
        assert_eq!(a.sample_len(), 600);
        sqs_util::audit::CheckInvariants::assert_invariants(&a);
        assert_eq!(
            ExactQuantiles::new((0..300u64).chain(1_000..1_300).collect())
                .quantile_error(0.5, a.quantile(0.5).unwrap()),
            0.0
        );
    }

    #[test]
    fn merge_of_subsampled_reservoirs_stays_accurate() {
        // Two heavily-subsampled streams over disjoint ranges: the
        // merged sample must weight each side by its stream mass, so
        // the median of the (2:1-sized) union lands in the bigger
        // side's range.
        let mut rng = Xoshiro256pp::new(13);
        let mut a = ReservoirQuantiles::with_capacity(4_000, 14);
        let mut b = ReservoirQuantiles::with_capacity(4_000, 15);
        let mut all: Vec<u64> = Vec::new();
        for _ in 0..200_000 {
            let x = rng.next_below(1 << 20);
            a.insert(x);
            all.push(x);
        }
        for _ in 0..100_000 {
            let x = (1 << 20) + rng.next_below(1 << 20);
            b.insert(x);
            all.push(x);
        }
        a.merge_from(b);
        assert_eq!(a.n(), 300_000);
        assert_eq!(a.sample_len(), 4_000);
        sqs_util::audit::CheckInvariants::assert_invariants(&a);
        let oracle = ExactQuantiles::new(all);
        for phi in [0.25, 0.5, 0.75] {
            let err = oracle.quantile_error(phi, a.quantile(phi).unwrap());
            assert!(err <= 0.05, "phi={phi}: err {err}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_mismatched_capacity() {
        let mut a = ReservoirQuantiles::<u64>::with_capacity(10, 1);
        let mut b = ReservoirQuantiles::<u64>::with_capacity(20, 2);
        b.insert(1);
        a.merge_from(b);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_reservoir_overfill() {
        let mut s = ReservoirQuantiles::with_capacity(100, 1);
        for x in 0..5_000u64 {
            s.insert(x);
        }
        s.reservoir.push(0);
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "Reservoir");
        assert_eq!(err.invariant, "reservoir.size_bound");
    }

    #[test]
    fn auditor_catches_false_sorted_flag() {
        let mut s = ReservoirQuantiles::with_capacity(100, 2);
        for x in (0..100u64).rev() {
            s.insert(x);
        }
        s.sorted = true; // reservoir still holds the reversed insertion order
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "reservoir.sorted_flag"
        );
    }
}
