//! Sliding-window quantiles — the extension the study's §1 cites as
//! Arasu & Manku [3]: answer φ-quantiles over (approximately) the most
//! recent `W` stream elements, with old elements aging out implicitly.
//!
//! This is the classic *block* scheme: the window is covered by a ring
//! of `b` blocks of `W/b` elements each. The active block holds raw
//! elements; a block that fills is *sealed* — sorted and sparsified to
//! every `k`-th element carrying weight `k` — and the oldest block is
//! dropped whole when the ring wraps. Queries run the weighted-sample
//! machinery over the sealed blocks plus the raw active block.
//!
//! Guarantees (simple and honest rather than optimal): answers cover a
//! *jumping* window of between `W` and `W + W/b` elements; rank error
//! from sparsification is at most `b·k ≤ εW`. With `b = k = ⌈√(1/ε)·…⌉`
//! chosen below, total space is `O(W/b + b·(W/b)/k) = O(√(W/ε))`-ish —
//! far from Arasu–Manku's `(1/ε)·polylog` optimum but linear-scan
//! simple and allocation-stable. (A production engine would layer
//! GKArray per block; the study's own scope ends at whole-stream
//! summaries, so this stays deliberately minimal.)

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::buffers::{weighted_quantile, weighted_quantile_grid, weighted_rank};
use crate::QuantileSummary;
use sqs_util::space::{words, SpaceUsage};

/// A sealed, sparsified block: every `stride`-th element of the sorted
/// block, each representing `stride` originals.
#[derive(Debug, Clone)]
struct Sealed<T> {
    samples: Vec<T>,
    stride: u64,
}

/// Quantiles over (approximately) the last `W` elements.
///
/// # Example
///
/// ```
/// use sqs_core::{sliding::SlidingWindowQuantiles, QuantileSummary};
///
/// let mut s = SlidingWindowQuantiles::new(0.05, 10_000);
/// for x in 0..100_000u64 {
///     s.insert(x);
/// }
/// // Only (roughly) the last 10k elements are represented.
/// let median = s.quantile(0.5).unwrap();
/// assert!(median > 90_000);
/// ```

#[derive(Debug, Clone)]
pub struct SlidingWindowQuantiles<T> {
    window: usize,
    block_size: usize,
    stride: usize,
    blocks: std::collections::VecDeque<Sealed<T>>,
    active: Vec<T>,
    n: u64,
}

impl<T: Ord + Copy> SlidingWindowQuantiles<T> {
    /// Creates a summary over windows of `window` elements with rank
    /// error about `ε·window`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `window ≥ 16`.
    pub fn new(eps: f64, window: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        assert!(window >= 16, "window too small: {window}");
        // Split the ε budget: half to the block-granularity boundary
        // (b ≥ 2/ε blocks), half to sparsification (b·stride ≤ εW/2).
        let b = ((2.0 / eps).ceil() as usize).clamp(2, window / 2);
        let block_size = window.div_ceil(b);
        let stride = ((eps * window as f64 / (2.0 * b as f64)).floor() as usize).max(1);
        Self {
            window,
            block_size,
            stride,
            blocks: std::collections::VecDeque::with_capacity(b + 1),
            active: Vec::with_capacity(block_size),
            n: 0,
        }
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of elements currently covered (≤ window + one block).
    pub fn covered(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.samples.len() * b.stride as usize)
            .sum::<usize>()
            + self.active.len()
    }

    fn seal_active(&mut self) {
        self.active.sort_unstable();
        let samples: Vec<T> = self
            .active
            .iter()
            .copied()
            .skip(self.stride / 2)
            .step_by(self.stride)
            .collect();
        self.blocks.push_back(Sealed {
            samples,
            stride: self.stride as u64,
        });
        self.active.clear();
        // Expire whole blocks beyond the window.
        let max_blocks = self.window.div_ceil(self.block_size);
        while self.blocks.len() > max_blocks {
            self.blocks.pop_front();
        }
    }

    fn live_buffers(&self) -> Vec<(&[T], u64)> {
        let mut bufs: Vec<(&[T], u64)> = self
            .blocks
            .iter()
            .map(|b| (b.samples.as_slice(), b.stride))
            .collect();
        if !self.active.is_empty() {
            bufs.push((self.active.as_slice(), 1));
        }
        bufs
    }

    fn sort_active(&mut self) {
        self.active.sort_unstable();
    }
}

impl<T: Ord + Copy> sqs_util::audit::CheckInvariants for SlidingWindowQuantiles<T> {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "SlidingWindow";
        ensure(
            self.block_size >= 1 && self.stride >= 1,
            ALG,
            "sliding.config_positive",
            || format!("block_size = {}, stride = {}", self.block_size, self.stride),
        )?;
        ensure(
            self.active.len() < self.block_size,
            ALG,
            "sliding.active_bound",
            || {
                format!(
                    "active block holds {} elements, seals at {}",
                    self.active.len(),
                    self.block_size
                )
            },
        )?;
        let max_blocks = self.window.div_ceil(self.block_size);
        ensure(
            self.blocks.len() <= max_blocks,
            ALG,
            "sliding.ring_bound",
            || {
                format!(
                    "{} sealed blocks exceed ring capacity {max_blocks}",
                    self.blocks.len()
                )
            },
        )?;
        // Every block seals at exactly `block_size` raw elements, so
        // sparsification yields a fixed sample count per block.
        let expect = (self.block_size - self.stride / 2).div_ceil(self.stride);
        for (i, b) in self.blocks.iter().enumerate() {
            ensure(
                b.stride == self.stride as u64,
                ALG,
                "sliding.block_stride",
                || {
                    format!(
                        "block {i} carries stride {}, configured {}",
                        b.stride, self.stride
                    )
                },
            )?;
            ensure(
                b.samples.len() == expect,
                ALG,
                "sliding.block_sample_count",
                || {
                    format!(
                        "block {i} holds {} samples, sparsification yields {expect}",
                        b.samples.len()
                    )
                },
            )?;
            ensure(
                b.samples.windows(2).all(|w| w[0] <= w[1]),
                ALG,
                "sliding.block_sorted",
                || format!("block {i} samples are out of order"),
            )?;
        }
        // Sparsification rounding can credit each block up to `stride`
        // extra elements, so the coverage bounds carry that slack.
        let slack = self.blocks.len() * self.stride;
        ensure(
            self.covered() <= self.window + 2 * self.block_size + slack,
            ALG,
            "sliding.coverage_bound",
            || {
                format!(
                    "covers {} elements, window {} + block {} + rounding slack {slack}",
                    self.covered(),
                    self.window,
                    self.block_size
                )
            },
        )?;
        ensure(
            self.covered() as u64 <= self.n + slack as u64,
            ALG,
            "sliding.coverage_le_n",
            || {
                format!(
                    "covers {} elements but only {} were ever inserted",
                    self.covered(),
                    self.n
                )
            },
        )
    }
}

impl<T: Ord + Copy> QuantileSummary<T> for SlidingWindowQuantiles<T> {
    fn insert(&mut self, x: T) {
        self.n += 1;
        self.active.push(x);
        if self.active.len() >= self.block_size {
            self.seal_active();
        }
        #[cfg(any(test, feature = "audit"))]
        if sqs_util::audit::audit_point(self.n) {
            sqs_util::audit::CheckInvariants::assert_invariants(self);
        }
    }

    /// Total elements *ever seen* (window coverage is [`covered`]).
    ///
    /// [`covered`]: SlidingWindowQuantiles::covered
    fn n(&self) -> u64 {
        self.n
    }

    fn rank_estimate(&mut self, x: T) -> u64 {
        self.sort_active();
        weighted_rank(&self.live_buffers(), x)
    }

    fn quantile(&mut self, phi: f64) -> Option<T> {
        crate::traits::check_phi(phi);
        self.sort_active();
        weighted_quantile(&self.live_buffers(), phi)
    }

    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        self.sort_active();
        weighted_quantile_grid(&self.live_buffers(), &sqs_util::exact::probe_phis(eps))
    }

    fn name(&self) -> &'static str {
        "SlidingWindow"
    }
}

impl<T> SpaceUsage for SlidingWindowQuantiles<T> {
    fn space_bytes(&self) -> usize {
        let sealed: usize = self.blocks.iter().map(|b| b.samples.len() + 1).sum();
        words(sealed + self.active.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::exact::ExactQuantiles;
    use sqs_util::rng::Xoshiro256pp;

    #[test]
    fn tracks_recent_window_only() {
        let w = 10_000;
        let mut s = SlidingWindowQuantiles::new(0.05, w);
        // First half small values, second half large: the window must
        // forget the small ones.
        for x in 0..50_000u64 {
            s.insert(x);
        }
        let med = s.quantile(0.5).unwrap();
        assert!(med >= 40_000, "median {med} should reflect only the tail");
        assert!(s.covered() <= w + s.block_size);
    }

    #[test]
    fn error_within_eps_of_covered_window() {
        let eps = 0.05;
        let w = 20_000;
        let mut rng = Xoshiro256pp::new(1);
        let data: Vec<u64> = (0..100_000).map(|_| rng.next_below(1 << 20)).collect();
        let mut s = SlidingWindowQuantiles::new(eps, w);
        for &x in &data {
            s.insert(x);
        }
        // Ground truth over the covered suffix (jumping-window
        // semantics: covered() tells us exactly which suffix).
        let covered = s.covered();
        let oracle = ExactQuantiles::new(data[data.len() - covered..].to_vec());
        for phi in [0.1, 0.5, 0.9] {
            let q = s.quantile(phi).unwrap();
            let err = oracle.quantile_error(phi, q);
            assert!(err <= eps, "phi={phi}: err {err}");
        }
    }

    #[test]
    fn space_is_sublinear_in_window() {
        // The block scheme's footprint is Θ(b/ε) = Θ(1/ε²) samples, so
        // it only wins when 1/ε² ≪ W; check a representative setting.
        let w = 100_000;
        let mut s = SlidingWindowQuantiles::new(0.03, w);
        for x in 0..300_000u64 {
            s.insert(x);
        }
        assert!(
            s.space_bytes() < w * 4 / 4,
            "space {} not sublinear in window bytes {}",
            s.space_bytes(),
            w * 4
        );
    }

    #[test]
    fn small_stream_is_exact() {
        let mut s = SlidingWindowQuantiles::new(0.1, 1_000);
        for x in [5u64, 1, 9, 3, 7] {
            s.insert(x);
        }
        assert_eq!(s.quantile(0.5), Some(5));
        assert_eq!(s.covered(), 5);
    }

    #[test]
    fn empty_returns_none() {
        let mut s = SlidingWindowQuantiles::<u64>::new(0.1, 100);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn grid_matches_pointwise() {
        let mut s = SlidingWindowQuantiles::new(0.05, 5_000);
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..20_000 {
            s.insert(rng.next_below(1000));
        }
        for (phi, v) in s.quantile_grid(0.05) {
            assert_eq!(Some(v), s.quantile(phi), "phi={phi}");
        }
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    fn filled() -> SlidingWindowQuantiles<u64> {
        let mut s = SlidingWindowQuantiles::new(0.05, 10_000);
        for x in 0..30_000u64 {
            s.insert(x);
        }
        s
    }

    #[test]
    fn auditor_catches_unsorted_block() {
        let mut s = filled();
        let b = s.blocks.front_mut().expect("a sealed block");
        b.samples.reverse();
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "SlidingWindow");
        assert_eq!(err.invariant, "sliding.block_sorted");
    }

    #[test]
    fn auditor_catches_stride_mismatch() {
        let mut s = filled();
        s.blocks.front_mut().expect("a sealed block").stride += 1;
        assert_eq!(
            s.check_invariants().unwrap_err().invariant,
            "sliding.block_stride"
        );
    }
}
