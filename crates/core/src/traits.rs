//! The common interface of every cash-register quantile summary.

use sqs_util::SpaceUsage;

/// A one-pass (cash-register) quantile summary.
///
/// The stream is fed element-by-element through [`insert`]; at any
/// point the summary can answer rank and quantile queries for the data
/// seen so far — the paper's "always ready to stop" requirement (§1).
///
/// Query methods take `&mut self` because several summaries (GKArray,
/// FastQDigest) buffer recent inserts and must flush before answering;
/// flushing never changes the summarized multiset, only its physical
/// representation.
///
/// [`insert`]: QuantileSummary::insert
pub trait QuantileSummary<T: Ord + Copy>: SpaceUsage {
    /// Observes one stream element.
    fn insert(&mut self, x: T);

    /// Number of elements observed so far.
    fn n(&self) -> u64;

    /// Estimated rank of `x`: the approximate number of observed
    /// elements strictly smaller than `x`.
    fn rank_estimate(&mut self, x: T) -> u64;

    /// An ε-approximate φ-quantile of the elements seen so far, or
    /// `None` if the stream is still empty.
    ///
    /// # Panics
    /// Implementations panic if `φ ∉ (0, 1)`.
    fn quantile(&mut self, phi: f64) -> Option<T>;

    /// The algorithm's name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Observes a batch of elements (default: element-wise insert).
    fn extend_from_slice(&mut self, xs: &[T]) {
        for &x in xs {
            self.insert(x);
        }
    }

    /// Observes a batch of elements through the summary's fastest bulk
    /// path.
    ///
    /// The default is element-wise [`insert`]; summaries with a
    /// cheaper bulk route (buffered fold-in, sort-then-insert)
    /// override it. Overrides must summarize the same multiset as
    /// itemwise insertion under the same ε guarantee — rank answers
    /// after a batch stay within `ε·n` of the itemwise answers (the
    /// engine's shard-flush path relies on this; see
    /// `docs/ENGINE.md`).
    ///
    /// [`insert`]: QuantileSummary::insert
    fn insert_batch(&mut self, xs: &[T]) {
        for &x in xs {
            self.insert(x);
        }
    }

    /// Folds several batches through [`insert_batch`] in one call —
    /// the bulk path a propagation stage uses to drain a whole run of
    /// handed-off producer buffers while it holds a shard exactly
    /// once (`sqs-engine`'s propagator). The default simply loops;
    /// summaries that can pre-size for the combined mass may override.
    ///
    /// [`insert_batch`]: QuantileSummary::insert_batch
    fn insert_batches(&mut self, batches: &[&[T]]) {
        for xs in batches {
            self.insert_batch(xs);
        }
    }

    /// A φ-sweep: one quantile per entry of `phis` (each `None` while
    /// the stream is empty).
    ///
    /// The default is a per-φ [`quantile`] loop; summaries with a
    /// cheaper batched read path (the turnstile dyadic structures walk
    /// one shared bisection tree for the whole sorted sweep) override
    /// it. Overrides must return exactly what the per-φ loop would —
    /// answer for answer, not merely within ε.
    ///
    /// # Panics
    /// Implementations panic if any `φ ∉ (0, 1)`.
    ///
    /// [`quantile`]: QuantileSummary::quantile
    fn quantiles(&mut self, phis: &[f64]) -> Vec<Option<T>> {
        phis.iter().map(|&phi| self.quantile(phi)).collect()
    }

    /// Answers the standard probe grid φ = ε, 2ε, …, 1−ε in one call,
    /// returning `(φ, answer)` pairs (empty if the stream is empty).
    fn quantile_grid(&mut self, eps: f64) -> Vec<(f64, T)> {
        sqs_util::exact::probe_phis(eps)
            .into_iter()
            .filter_map(|phi| self.quantile(phi).map(|q| (phi, q)))
            .collect()
    }

    /// The estimated cumulative distribution at `x`:
    /// `rank_estimate(x) / n` — §1's point that quantiles characterize
    /// the cdf, as a direct API. Returns 0 on an empty stream.
    fn cdf(&mut self, x: T) -> f64 {
        let n = self.n();
        if n == 0 {
            return 0.0;
        }
        (self.rank_estimate(x) as f64 / n as f64).clamp(0.0, 1.0)
    }

    /// An equi-depth histogram: `buckets` boundaries splitting the
    /// seen data into equal-mass ranges (the classic downstream use of
    /// quantile summaries). Returns the `buckets − 1` interior
    /// boundaries, or an empty vector on an empty stream.
    ///
    /// # Panics
    /// Panics if `buckets < 2`.
    fn equi_depth_histogram(&mut self, buckets: usize) -> Vec<T> {
        assert!(buckets >= 2, "need at least 2 buckets");
        (1..buckets)
            .filter_map(|i| self.quantile(i as f64 / buckets as f64))
            .collect()
    }
}

/// A quantile summary supporting the *mergeable-summary* operation of
/// Agarwal et al.: two ε-summaries combine into one ε-summary of the
/// union of their streams.
///
/// This is the primitive that makes sharded ingestion sound: N shards
/// each maintain their own summary, and a query folds them with a
/// balanced merge tree (`sqs-engine`). The consuming signature lets a
/// merge tree thread ownership down the fold without re-compressing a
/// summary that was already compacted by a previous round — the
/// borrowed [`merge`]-style APIs on the concrete types are thin
/// wrappers over [`merge_from`].
///
/// Implementors in this crate: [`RandomSketch`](crate::random::RandomSketch)
/// (randomized, comparison model), [`QDigest`](crate::qdigest::QDigest)
/// (deterministic, fixed universe), and
/// [`ReservoirQuantiles`](crate::sampled::ReservoirQuantiles) — the
/// sampled fallback for the GK family, whose tuple summaries are not
/// mergeable without weakening ε.
///
/// [`merge_from`]: MergeableSummary::merge_from
/// [`merge`]: crate::qdigest::QDigest::merge
pub trait MergeableSummary<T: Ord + Copy>: QuantileSummary<T> + Sized {
    /// Merges `other` into `self`, consuming it.
    ///
    /// Both summaries must have been built with the same accuracy
    /// configuration (same ε, and same universe where applicable);
    /// implementations panic on a mismatch.
    fn merge_from(&mut self, other: Self);

    /// Whether [`merge_from`](MergeableSummary::merge_from) would
    /// accept `other`: the two summaries share the accuracy
    /// configuration (ε, universe, capacity — whatever the concrete
    /// type's merge asserts).
    ///
    /// `merge_from` panics on incompatible inputs because a local
    /// mismatch is a programming error; a *remote* summary decoded off
    /// the wire (`sqs-service` `MERGE_SNAPSHOT`) is untrusted input,
    /// and the server uses this check to turn the mismatch into an
    /// error reply instead of a worker panic.
    fn merge_compatible(&self, other: &Self) -> bool;
}

/// Validates a φ argument; shared by all implementations.
#[inline]
pub(crate) fn check_phi(phi: f64) {
    assert!(
        phi > 0.0 && phi < 1.0,
        "phi must be in the open interval (0,1), got {phi}"
    );
}

#[cfg(test)]
mod tests {
    use crate::gk::GkArray;
    use crate::QuantileSummary;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut s = GkArray::new(0.01);
        for x in 0..10_000u64 {
            s.insert(x);
        }
        assert_eq!(s.cdf(0), 0.0);
        let (a, b, c) = (s.cdf(2_500), s.cdf(5_000), s.cdf(7_500));
        assert!(a < b && b < c, "{a} {b} {c}");
        assert!((b - 0.5).abs() < 0.02);
        assert!(s.cdf(1_000_000) >= 0.99);
        let mut empty = GkArray::<u64>::new(0.1);
        assert_eq!(empty.cdf(5), 0.0);
    }

    #[test]
    fn equi_depth_histogram_splits_mass() {
        let mut s = GkArray::new(0.005);
        for x in 0..100_000u64 {
            s.insert(x);
        }
        let bounds = s.equi_depth_histogram(4);
        assert_eq!(bounds.len(), 3);
        for (i, &b) in bounds.iter().enumerate() {
            let target = (i as u64 + 1) * 25_000;
            assert!(b.abs_diff(target) < 1_000, "boundary {i}: {b}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 buckets")]
    fn histogram_needs_buckets() {
        GkArray::<u64>::new(0.1).equi_depth_histogram(1);
    }
}
