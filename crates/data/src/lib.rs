//! Workload generators for the quantile study (§4.1.1 of the paper).
//!
//! The paper evaluates on 2 real and 12 synthetic data sets. The
//! synthetic families (uniform and normal over power-of-two universes,
//! in random or sorted arrival order) are generated directly; the two
//! real data sets are not redistributable, so each is replaced by a
//! *surrogate* that preserves the characteristics the paper identifies
//! as mattering (see DESIGN.md §1.5 for the substitution record):
//!
//! * [`mpcat`] — MPCAT-OBS: 87.7M minor-planet right ascensions,
//!   integers in `[0, 8_639_999]`, non-uniform value distribution
//!   (Fig. 4), arriving as "chunks of ordered data of various lengths"
//!   (observatories track planets in sessions).
//! * [`lidar`] — Neuse River Basin LIDAR: ~100M terrain elevations;
//!   smooth, spatially correlated, heavily duplicated values.
//!
//! [`turnstile`] generates insert/delete workloads that respect the
//! strict turnstile condition (no multiplicity ever goes negative),
//! including the adversarial insert-then-delete patterns of §1.2.2.
//!
//! All generators are deterministic given their seed and implement
//! `Iterator<Item = u64>` so arbitrarily long streams never need to be
//! materialized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lidar;
pub mod mpcat;
pub mod synthetic;
pub mod turnstile;

pub use lidar::Lidar;
pub use mpcat::Mpcat;
pub use synthetic::{Normal, Order, Uniform};
pub use turnstile::Op;

/// Collects the first `n` elements of a generator into a `Vec`
/// (for the error-measuring experiments, which need the ground truth).
pub fn take_n(gen: impl Iterator<Item = u64>, n: usize) -> Vec<u64> {
    gen.take(n).collect()
}
