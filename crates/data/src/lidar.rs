//! Surrogate for the Neuse River Basin LIDAR terrain data set
//! (§4.1.1 of the paper): ~100 million points measuring terrain
//! elevation.
//!
//! Elevation along a LIDAR scan line is *smooth and spatially
//! correlated* — consecutive readings differ by centimetres — and,
//! once quantized to survey precision, heavily duplicated (floodplains
//! are flat). The surrogate is a mean-reverting bounded random walk
//! (Ornstein–Uhlenbeck-like) over a 0–120 m elevation range quantized
//! to centimetres, with occasional scan-line jumps; this reproduces
//! the duplication level and the smooth semi-sorted local structure
//! that distinguish terrain data from i.i.d. streams.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use sqs_util::rng::Xoshiro256pp;

/// Elevation range in centimetres (0–120 m — the Neuse basin is
/// coastal-plain terrain).
pub const LIDAR_UNIVERSE: u64 = 12_000;

/// `⌈log₂(LIDAR_UNIVERSE)⌉`.
pub const LIDAR_LOG_U: u32 = 14;

/// The LIDAR elevation surrogate generator (infinite, seeded).
#[derive(Debug, Clone)]
pub struct Lidar {
    rng: Xoshiro256pp,
    /// Current elevation (cm, floating for the walk).
    elevation: f64,
    /// Local mean the walk reverts to (changes at scan-line jumps).
    local_mean: f64,
    /// Readings left on the current scan line.
    line_left: usize,
}

impl Lidar {
    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        let mut rng = Xoshiro256pp::new(seed);
        let mean = 1_000.0 + rng.next_f64() * 6_000.0;
        Self {
            rng,
            elevation: mean,
            local_mean: mean,
            line_left: 0,
        }
    }

    fn jump_scan_line(&mut self) {
        self.line_left = 2_000 + self.rng.next_below(8_000) as usize;
        // New swath: nearby terrain, so the mean moves but modestly.
        self.local_mean = (self.local_mean + self.rng.next_standard_normal() * 800.0)
            .clamp(100.0, LIDAR_UNIVERSE as f64 - 100.0);
        self.elevation = self.local_mean;
    }
}

impl Iterator for Lidar {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.line_left == 0 {
            self.jump_scan_line();
        }
        self.line_left -= 1;
        // Mean-reverting walk with cm-scale noise.
        self.elevation +=
            0.02 * (self.local_mean - self.elevation) + self.rng.next_standard_normal() * 6.0;
        self.elevation = self.elevation.clamp(0.0, (LIDAR_UNIVERSE - 1) as f64);
        Some(self.elevation as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_universe() {
        assert!(Lidar::new(1).take(100_000).all(|v| v < LIDAR_UNIVERSE));
    }

    #[test]
    fn heavy_duplication() {
        let data: Vec<u64> = Lidar::new(2).take(100_000).collect();
        let mut uniq = data.clone();
        uniq.sort_unstable();
        uniq.dedup();
        // Terrain at cm quantization: far fewer distinct values than
        // readings.
        assert!(uniq.len() * 10 < data.len(), "distinct = {}", uniq.len());
    }

    #[test]
    fn smooth_locally() {
        let data: Vec<u64> = Lidar::new(3).take(50_000).collect();
        let small_steps = data.windows(2).filter(|w| w[0].abs_diff(w[1]) < 30).count();
        assert!(small_steps as f64 > 0.95 * (data.len() - 1) as f64);
    }

    #[test]
    fn wanders_globally() {
        let data: Vec<u64> = Lidar::new(4).take(500_000).collect();
        let min = *data.iter().min().unwrap();
        let max = *data.iter().max().unwrap();
        assert!(max - min > 1_000, "range = {}", max - min);
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = Lidar::new(9).take(1000).collect();
        let b: Vec<u64> = Lidar::new(9).take(1000).collect();
        assert_eq!(a, b);
    }
}
