//! Surrogate for the MPCAT-OBS minor-planet observation archive
//! (§4.1.1 and Fig. 4 of the paper).
//!
//! The real data set holds 87,688,123 optical observation records
//! (1802–2012) whose *right ascensions* — integers in
//! `[0, 8_639_999]` (24 hours at 1/100-second resolution) — form the
//! stream. The paper highlights two characteristics the surrogate
//! reproduces:
//!
//! 1. **Non-uniform value distribution** (Fig. 4): observations pile
//!    up where minor planets live (near the ecliptic's intersection
//!    with the survey fields), modeled here as a mixture of two broad
//!    Gaussian bumps over a uniform background.
//! 2. **Session-structured arrival**: *"the stream values appear to
//!    arrive randomly overall, but consist of chunks of ordered data
//!    of various lengths"* — an observatory tracks one planet through
//!    a session, producing a slowly-advancing (sorted) run, then jumps
//!    to another target. Sessions here have power-law-ish lengths and
//!    emit ascending values drifting from a mixture-drawn start.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use sqs_util::rng::Xoshiro256pp;

/// Universe size of the right-ascension encoding: 24h × 3600s × 100.
pub const MPCAT_UNIVERSE: u64 = 8_640_000;

/// `⌈log₂(MPCAT_UNIVERSE)⌉` — the "log u = 24" the paper quotes for
/// this data set (§4.2.2).
pub const MPCAT_LOG_U: u32 = 24;

/// Number of records in the real archive snapshot the paper used.
pub const MPCAT_FULL_LEN: usize = 87_688_123;

/// The MPCAT-OBS surrogate generator (infinite, seeded).
#[derive(Debug, Clone)]
pub struct Mpcat {
    rng: Xoshiro256pp,
    /// Remaining elements in the current observing session.
    session_left: usize,
    /// Current right ascension within the session.
    cursor: u64,
    /// Per-observation drift bound within a session.
    drift: u64,
}

impl Mpcat {
    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256pp::new(seed),
            session_left: 0,
            cursor: 0,
            drift: 1,
        }
    }

    /// Draws a session start from the Fig. 4-like value mixture:
    /// 45% bump near 5.5h, 30% bump near 16h, 25% uniform background.
    fn draw_start(&mut self) -> u64 {
        let u = MPCAT_UNIVERSE as f64;
        let p = self.rng.next_f64();
        let x = if p < 0.45 {
            0.23 * u + self.rng.next_standard_normal() * 0.07 * u
        } else if p < 0.75 {
            0.67 * u + self.rng.next_standard_normal() * 0.05 * u
        } else {
            self.rng.next_f64() * u
        };
        // Right ascension is circular: wrap rather than clamp, so the
        // bumps keep their shape at the seam.
        x.rem_euclid(u) as u64
    }

    /// Starts a new observing session: power-law-ish length in
    /// [8, ~4096] and a small per-record drift.
    fn start_session(&mut self) {
        // Length 8·2^G with G geometric-ish (bit-count trick): sessions
        // of a few records are common, multi-thousand-record surveys
        // rare.
        let g = (self.rng.next_u64() & 0x1FF).trailing_ones(); // 0..=9
        self.session_left = 8usize << g;
        self.cursor = self.draw_start();
        self.drift = 1 + self.rng.next_below(40);
    }
}

impl Iterator for Mpcat {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.session_left == 0 {
            self.start_session();
        }
        self.session_left -= 1;
        let out = self.cursor;
        self.cursor = (self.cursor + 1 + self.rng.next_below(self.drift)) % MPCAT_UNIVERSE;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_in_universe() {
        assert!(Mpcat::new(1).take(100_000).all(|v| v < MPCAT_UNIVERSE));
    }

    #[test]
    fn distribution_is_non_uniform() {
        // The mixture must produce a clearly non-flat histogram.
        let mut hist = [0usize; 24]; // one bin per hour
        for v in Mpcat::new(2).take(200_000) {
            hist[(v * 24 / MPCAT_UNIVERSE) as usize] += 1;
        }
        let max = *hist.iter().max().unwrap();
        let min = *hist.iter().min().unwrap();
        assert!(max > 3 * min, "hist looks uniform: {hist:?}");
    }

    #[test]
    fn arrival_is_sorted_runs() {
        let data: Vec<u64> = Mpcat::new(3).take(50_000).collect();
        // Most consecutive pairs ascend (sessions), but jumps exist.
        let asc = data.windows(2).filter(|w| w[0] <= w[1]).count();
        let frac = asc as f64 / (data.len() - 1) as f64;
        assert!(frac > 0.90, "ascending fraction = {frac}");
        assert!(frac < 1.0, "must not be globally sorted");
    }

    #[test]
    fn session_lengths_vary() {
        // Detect session boundaries as descents; lengths should span
        // more than one order of magnitude.
        let data: Vec<u64> = Mpcat::new(4).take(200_000).collect();
        let mut lens = Vec::new();
        let mut cur = 1usize;
        for w in data.windows(2) {
            if w[0] <= w[1] {
                cur += 1;
            } else {
                lens.push(cur);
                cur = 1;
            }
        }
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(max > 20 * min, "session lengths too regular: {min}..{max}");
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = Mpcat::new(7).take(1000).collect();
        let b: Vec<u64> = Mpcat::new(7).take(1000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn log_u_covers_universe() {
        // Constant relationship, asserted dynamically through locals so
        // the check runs (and reads) as a test.
        let (u, log_u) = (MPCAT_UNIVERSE, MPCAT_LOG_U);
        assert!(u <= 1 << log_u);
        assert!(u > 1 << (log_u - 1));
    }
}
