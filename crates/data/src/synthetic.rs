//! Synthetic stream families (§4.1.1): uniform and normal value
//! distributions over a power-of-two universe, with controlled arrival
//! order.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use sqs_util::rng::Xoshiro256pp;

/// Uniform values over `[0, 2^log_u)`, random arrival order.
#[derive(Debug, Clone)]
pub struct Uniform {
    rng: Xoshiro256pp,
    universe: u64,
}

impl Uniform {
    /// Creates the generator.
    ///
    /// # Panics
    /// Panics unless `1 ≤ log_u ≤ 63`.
    pub fn new(log_u: u32, seed: u64) -> Self {
        assert!((1..=63).contains(&log_u), "log_u out of range");
        Self {
            rng: Xoshiro256pp::new(seed),
            universe: 1u64 << log_u,
        }
    }
}

impl Iterator for Uniform {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.rng.next_below(self.universe))
    }
}

/// Normal values: mean `u/2`, standard deviation `σ·u`, clamped to
/// `[0, 2^log_u)` — the paper's skewness knob (§4.2.4, §4.3.6 use
/// σ ∈ {0.05, 0.15, 0.25}; smaller σ = more skew/concentration).
#[derive(Debug, Clone)]
pub struct Normal {
    rng: Xoshiro256pp,
    universe: u64,
    sigma: f64,
}

impl Normal {
    /// Creates the generator with relative standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ log_u ≤ 63` and `sigma > 0`.
    pub fn new(log_u: u32, sigma: f64, seed: u64) -> Self {
        assert!((1..=63).contains(&log_u), "log_u out of range");
        assert!(sigma > 0.0, "sigma must be positive");
        Self {
            rng: Xoshiro256pp::new(seed),
            universe: 1u64 << log_u,
            sigma,
        }
    }
}

impl Iterator for Normal {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let u = self.universe as f64;
        let x = u / 2.0 + self.rng.next_standard_normal() * self.sigma * u;
        Some((x.max(0.0) as u64).min(self.universe - 1))
    }
}

/// Arrival orders for materialized streams (§4.1.1's "order (random
/// and sorted)"; Figure 8 compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Leave the generator's order (i.i.d. random).
    Random,
    /// Ascending.
    Sorted,
    /// Descending — the classic adversarial order for GK-family
    /// summaries.
    Reversed,
    /// Sorted runs of random lengths in `[min, max]` — the MPCAT-like
    /// "chunks of ordered data" pattern.
    SortedRuns {
        /// Minimum run length.
        min: usize,
        /// Maximum run length.
        max: usize,
    },
}

impl Order {
    /// Rearranges `data` in place into this order. `seed` drives run
    /// boundaries for [`Order::SortedRuns`].
    pub fn apply(self, data: &mut [u64], seed: u64) {
        match self {
            Order::Random => {}
            Order::Sorted => data.sort_unstable(),
            Order::Reversed => {
                data.sort_unstable();
                data.reverse();
            }
            Order::SortedRuns { min, max } => {
                assert!(min >= 1 && max >= min, "bad run bounds");
                let mut rng = Xoshiro256pp::new(seed);
                let mut i = 0;
                while i < data.len() {
                    let run = min + rng.next_below((max - min + 1) as u64) as usize;
                    let end = (i + run).min(data.len());
                    data[i..end].sort_unstable();
                    i = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_universe_and_spreads() {
        let vals: Vec<u64> = Uniform::new(16, 1).take(10_000).collect();
        assert!(vals.iter().all(|&v| v < 65_536));
        let mean = vals.iter().sum::<u64>() as f64 / vals.len() as f64;
        assert!((mean - 32_768.0).abs() < 2_000.0, "mean = {mean}");
    }

    #[test]
    fn normal_concentrates_with_small_sigma() {
        let narrow: Vec<u64> = Normal::new(20, 0.05, 2).take(10_000).collect();
        let wide: Vec<u64> = Normal::new(20, 0.25, 2).take(10_000).collect();
        let u = (1u64 << 20) as f64;
        let spread = |v: &[u64]| {
            let m = v.iter().sum::<u64>() as f64 / v.len() as f64;
            (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let (sn, sw) = (spread(&narrow), spread(&wide));
        assert!(sn < sw, "{sn} !< {sw}");
        assert!((sn / u - 0.05).abs() < 0.02, "sn/u = {}", sn / u);
    }

    #[test]
    fn normal_clamps_to_universe() {
        let vals: Vec<u64> = Normal::new(8, 1.0, 3).take(10_000).collect();
        assert!(vals.iter().all(|&v| v < 256));
        // With σ = u, clamping hits both edges.
        assert!(vals.contains(&0));
        assert!(vals.contains(&255));
    }

    #[test]
    fn orders_are_permutations() {
        let base: Vec<u64> = Uniform::new(16, 4).take(5_000).collect();
        for order in [
            Order::Sorted,
            Order::Reversed,
            Order::SortedRuns { min: 10, max: 100 },
        ] {
            let mut data = base.clone();
            order.apply(&mut data, 9);
            let mut a = base.clone();
            let mut b = data.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{order:?} must permute, not mutate");
        }
    }

    #[test]
    fn sorted_runs_have_runs() {
        let mut data: Vec<u64> = Uniform::new(16, 5).take(10_000).collect();
        Order::SortedRuns { min: 50, max: 51 }.apply(&mut data, 6);
        // Not globally sorted, but locally ascending within runs.
        assert!(data.windows(2).any(|w| w[0] > w[1]));
        let ascending_pairs = data.windows(2).filter(|w| w[0] <= w[1]).count();
        assert!(ascending_pairs as f64 > 0.9 * (data.len() - 1) as f64);
    }

    #[test]
    fn generators_are_deterministic() {
        let a: Vec<u64> = Uniform::new(20, 7).take(100).collect();
        let b: Vec<u64> = Uniform::new(20, 7).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = Normal::new(20, 0.15, 7).take(100).collect();
        let d: Vec<u64> = Normal::new(20, 0.15, 7).take(100).collect();
        assert_eq!(c, d);
    }
}
