//! Turnstile (insert/delete) workload generators (§1.1, §4.3).
//!
//! The strict turnstile model requires that a deletion never removes
//! an element that is not currently present; every generator here
//! maintains that invariant by construction, which the tests verify
//! with a full multiset replay.
//!
//! §4.3 notes that deletions have no effect on a (linear) sketch's
//! final accuracy — "what matters is only those elements that remain" —
//! so the accuracy experiments feed insert-only streams; these
//! workloads exist to *verify* that property, to exercise the deletion
//! code paths, and to measure update throughput under churn.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use sqs_util::rng::Xoshiro256pp;

/// One turnstile update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert one copy of the element.
    Insert(u64),
    /// Delete one copy of the (currently live) element.
    Delete(u64),
}

/// The adversarial pattern of §1.2.2: insert every element of `data`,
/// then delete all but the `survivors` at the given indices.
///
/// # Panics
/// Panics if any survivor index is out of range or duplicated.
pub fn insert_then_delete_all_but(data: &[u64], survivors: &[usize]) -> Vec<Op> {
    let mut keep = vec![false; data.len()];
    for &i in survivors {
        assert!(i < data.len(), "survivor index {i} out of range");
        assert!(!keep[i], "survivor index {i} duplicated");
        keep[i] = true;
    }
    let mut ops = Vec::with_capacity(2 * data.len() - survivors.len());
    ops.extend(data.iter().map(|&x| Op::Insert(x)));
    ops.extend(
        data.iter()
            .zip(&keep)
            .filter(|(_, &k)| !k)
            .map(|(&x, _)| Op::Delete(x)),
    );
    ops
}

/// Sliding-window churn: insert `data[i]` and, once `i ≥ window`,
/// delete `data[i − window]` — at any moment exactly the last `window`
/// elements are live (the §1 sliding-window motivation, expressed as
/// explicit turnstile updates).
pub fn sliding_window(data: &[u64], window: usize) -> Vec<Op> {
    assert!(window > 0, "window must be positive");
    let mut ops = Vec::with_capacity(2 * data.len());
    for (i, &x) in data.iter().enumerate() {
        ops.push(Op::Insert(x));
        if i >= window {
            ops.push(Op::Delete(data[i - window]));
        }
    }
    ops
}

/// Random churn: feeds `base` as insertions, interleaving a deletion
/// of a uniformly random *live* element with probability
/// `churn` per step. Live tracking makes the strictness invariant
/// hold by construction.
///
/// # Panics
/// Panics unless `0 ≤ churn < 1`.
pub fn random_churn(base: impl Iterator<Item = u64>, churn: f64, seed: u64) -> Vec<Op> {
    assert!((0.0..1.0).contains(&churn), "churn must be in [0,1)");
    let mut rng = Xoshiro256pp::new(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut ops = Vec::new();
    for x in base {
        ops.push(Op::Insert(x));
        live.push(x);
        if !live.is_empty() && rng.next_f64() < churn {
            let j = rng.next_below(live.len() as u64) as usize;
            let victim = live.swap_remove(j);
            ops.push(Op::Delete(victim));
        }
    }
    ops
}

/// Replays a workload against a reference multiset, returning the live
/// elements at the end — the ground truth for turnstile accuracy
/// measurements.
///
/// # Panics
/// Panics if the workload violates the strict turnstile condition.
pub fn replay_live(ops: &[Op]) -> Vec<u64> {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(x) => *counts.entry(x).or_insert(0) += 1,
            Op::Delete(x) => {
                let c = counts
                    .get_mut(&x)
                    .unwrap_or_else(|| panic!("delete of absent element {x}"));
                assert!(*c > 0, "multiplicity of {x} went negative");
                *c -= 1;
            }
        }
    }
    let mut live = Vec::new();
    for (x, c) in counts {
        live.extend(std::iter::repeat_n(x, c as usize));
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Uniform;

    #[test]
    fn insert_delete_all_but_leaves_survivors() {
        let data: Vec<u64> = (0..100).collect();
        let ops = insert_then_delete_all_but(&data, &[7, 42]);
        let mut live = replay_live(&ops);
        live.sort_unstable();
        assert_eq!(live, vec![7, 42]);
    }

    #[test]
    fn sliding_window_keeps_window_live() {
        let data: Vec<u64> = (0..1000).collect();
        let ops = sliding_window(&data, 100);
        let mut live = replay_live(&ops);
        live.sort_unstable();
        assert_eq!(live, (900..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn random_churn_is_strict() {
        let ops = random_churn(Uniform::new(10, 1).take(10_000), 0.6, 2);
        // replay_live panics on any strictness violation.
        let live = replay_live(&ops);
        assert!(!live.is_empty());
        let deletes = ops.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        assert_eq!(live.len(), 10_000 - deletes);
    }

    #[test]
    fn zero_churn_is_insert_only() {
        let ops = random_churn(Uniform::new(8, 3).take(100), 0.0, 4);
        assert_eq!(ops.len(), 100);
        assert!(ops.iter().all(|o| matches!(o, Op::Insert(_))));
    }

    #[test]
    #[should_panic(expected = "delete of absent element")]
    fn replay_catches_violations() {
        replay_live(&[Op::Insert(1), Op::Delete(2)]);
    }

    #[test]
    #[should_panic(expected = "survivor index 5 out of range")]
    fn survivor_bounds_checked() {
        insert_then_delete_all_but(&[1, 2, 3], &[5]);
    }
}
