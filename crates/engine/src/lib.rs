//! A sharded, concurrent ingestion engine over the mergeable quantile
//! summaries of `sqs-core`.
//!
//! The paper studies single-threaded summaries; production collectors
//! ingest from many threads at once. The mergeable-summary property
//! (Agarwal et al., PODS'12 — see `PAPERS.md`) makes the standard
//! scale-out construction sound: run `k` independent ε-summaries, one
//! per *shard*, route each producer thread at a shard, and answer
//! queries by folding the shards with a merge tree. Because merging two
//! ε-summaries yields an ε-summary of the union (for
//! [`RandomSketch`](sqs_core::random::RandomSketch) and
//! [`QDigest`](sqs_core::qdigest::QDigest) this holds at any merge-tree
//! depth),
//! the engine's answers carry the *same* ε guarantee as a single
//! summary over the whole stream — sharding buys concurrency without
//! spending accuracy. See `docs/ENGINE.md` for the error analysis.
//!
//! Three layers keep the hot path cheap:
//!
//! 1. **Striped locks** — each shard is its own
//!    [`OrderedMutex<S>`](sqs_util::sync::OrderedMutex); writers on
//!    different shards never contend. The mutex is rank-badged with the
//!    shard index, so debug builds panic the moment any path would
//!    acquire shard locks out of ascending order — the runtime half of
//!    the lock discipline `sqs-analyze` checks statically. A shard
//!    whose holder panicked is *recovered*, not abandoned: the next
//!    acquisition audits the summary's invariants, clears the poison,
//!    and counts the event in [`EngineStats::lock_recoveries`].
//! 2. **Bounded ingest buffers** — producers write through an
//!    [`IngestHandle`], which batches `batch_capacity` elements in a
//!    plain `Vec` and takes the shard lock once per batch, feeding the
//!    summary through its [`insert_batch`] bulk path. Lock traffic
//!    drops by the batch factor.
//! 3. **Merge-on-query snapshots** — [`ShardedEngine::snapshot`]
//!    clones the shard summaries (holding each lock only for the
//!    clone) and folds the clones with a balanced merge tree off the
//!    ingest path, using the consuming
//!    [`merge_from`](sqs_core::MergeableSummary::merge_from) so no
//!    intermediate is re-compressed needlessly.
//!
//! [`insert_batch`]: sqs_core::QuantileSummary::insert_batch

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

use sqs_core::MergeableSummary;
use sqs_util::audit::{ensure, CheckInvariants, InvariantViolation};
use sqs_util::sync::{next_domain, OrderedMutex, OrderedMutexGuard};

/// Default ingest-buffer capacity (elements per [`IngestHandle`]
/// between shard-lock acquisitions). 1024 amortizes the lock and the
/// summary's per-batch bookkeeping well below a nanosecond per element
/// while keeping at most a few KiB of in-flight data per producer.
pub const DEFAULT_BATCH_CAPACITY: usize = 1024;

/// A point-in-time copy of the engine's operational counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Elements flushed into shard summaries so far (excludes elements
    /// still buffered in live [`IngestHandle`]s).
    pub items: u64,
    /// Number of shard-lock acquisitions taken by buffer flushes.
    pub flushes: u64,
    /// Number of snapshots folded so far.
    pub snapshots: u64,
    /// Merge-tree depth of the most recent snapshot
    /// (`⌈log₂ shards⌉`; 0 before the first snapshot).
    pub last_merge_depth: u32,
    /// Wall-clock nanoseconds spent building the most recent snapshot
    /// (clone + merge tree; 0 before the first snapshot).
    pub last_snapshot_nanos: u64,
    /// Number of poisoned shard locks recovered so far: a producer
    /// panicked while holding a shard, and a later acquisition audited
    /// the summary's invariants, cleared the poison, and carried on.
    /// Nonzero values mean some producer thread died mid-stream — the
    /// engine survived, but whatever that producer still buffered is
    /// gone.
    pub lock_recoveries: u64,
}

/// A concurrent quantile-ingestion engine: `k` striped shards, each a
/// mergeable ε-summary, folded on demand into a queryable snapshot.
///
/// Shared by reference across producer threads; all methods take
/// `&self`. Producers obtain an [`IngestHandle`] (one shard each,
/// assigned round-robin) and push elements through it; readers call
/// [`snapshot`](Self::snapshot) / [`quantile`](Self::quantile) at any
/// time.
///
/// ```
/// use sqs_core::random::RandomSketch;
/// use sqs_engine::ShardedEngine;
///
/// let engine = ShardedEngine::new_with(4, 256, |i| RandomSketch::new(0.05, i as u64));
/// std::thread::scope(|scope| {
///     for t in 0..4u64 {
///         let engine = &engine;
///         scope.spawn(move || {
///             let mut h = engine.handle();
///             for x in 0..10_000u64 {
///                 h.insert(t * 10_000 + x);
///             }
///         });
///     }
/// });
/// let q = engine.quantile(0.5).unwrap();
/// assert!((q as f64 - 20_000.0).abs() <= 0.05 * 40_000.0);
/// ```
pub struct ShardedEngine<T, S> {
    shards: Vec<OrderedMutex<S>>,
    router: AtomicUsize,
    batch_capacity: usize,
    items: AtomicU64,
    flushes: AtomicU64,
    snapshots: AtomicU64,
    last_merge_depth: AtomicU64,
    last_snapshot_nanos: AtomicU64,
    lock_recoveries: AtomicU64,
    _elem: PhantomData<fn(T)>,
}

impl<T: Ord + Copy, S: MergeableSummary<T> + CheckInvariants> ShardedEngine<T, S> {
    /// Builds an engine with `shard_count` shards, constructing each
    /// shard's summary via `make(shard_index)` — the closure is where
    /// per-shard seeds diverge for randomized summaries.
    ///
    /// # Panics
    /// Panics if `shard_count == 0` or `batch_capacity == 0`.
    pub fn new_with(
        shard_count: usize,
        batch_capacity: usize,
        mut make: impl FnMut(usize) -> S,
    ) -> Self {
        assert!(shard_count > 0, "ShardedEngine needs at least one shard");
        assert!(batch_capacity > 0, "batch_capacity must be positive");
        // One ordering domain per engine, shard index as rank: debug
        // builds enforce "shard locks only in ascending order" at
        // runtime, and locks of unrelated engines stay independent.
        let domain = next_domain();
        Self {
            shards: (0..shard_count)
                .map(|i| OrderedMutex::new(domain, i, make(i)))
                .collect(),
            router: AtomicUsize::new(0),
            batch_capacity,
            items: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            last_merge_depth: AtomicU64::new(0),
            last_snapshot_nanos: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
            _elem: PhantomData,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Elements each [`IngestHandle`] buffers between flushes.
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Creates a producer handle bound to the next shard in round-robin
    /// order. One `fetch_add` — producers on different shards never
    /// touch shared state again until their buffers flush. Spawning one
    /// handle per thread gives thread-affine shards whenever the thread
    /// count divides the shard count.
    pub fn handle(&self) -> IngestHandle<'_, T, S> {
        let shard = self.router.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.handle_for(shard)
    }

    /// Creates a producer handle pinned to a specific shard — the
    /// deterministic-assignment variant used by the stress tests (and
    /// by callers that partition producers themselves).
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn handle_for(&self, shard: usize) -> IngestHandle<'_, T, S> {
        assert!(
            shard < self.shards.len(),
            "shard index {shard} out of range (have {})",
            self.shards.len()
        );
        IngestHandle {
            engine: self,
            shard,
            buf: Vec::with_capacity(self.batch_capacity),
        }
    }

    /// Elements flushed into shard summaries so far. Elements still
    /// buffered in live handles are *not* counted until their flush —
    /// callers wanting an exact count drop (or [`flush`]) their handles
    /// first.
    ///
    /// [`flush`]: IngestHandle::flush
    pub fn n(&self) -> u64 {
        self.items.load(Ordering::Acquire)
    }

    /// A copy of the engine's operational counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            items: self.items.load(Ordering::Acquire),
            flushes: self.flushes.load(Ordering::Acquire),
            snapshots: self.snapshots.load(Ordering::Acquire),
            last_merge_depth: u32::try_from(self.last_merge_depth.load(Ordering::Acquire))
                .unwrap_or(u32::MAX),
            last_snapshot_nanos: self.last_snapshot_nanos.load(Ordering::Acquire),
            lock_recoveries: self.lock_recoveries.load(Ordering::Acquire),
        }
    }

    fn lock_shard(&self, shard: usize) -> OrderedMutexGuard<'_, S> {
        let m = self
            .shards
            .get(shard)
            .expect("Engine invariant: shard index within shard count");
        m.lock().unwrap_or_else(|poisoned| {
            // A holder panicked mid-update — necessarily inside the
            // summary's own insert/merge code, since the engine does
            // nothing else under the guard. The summary is safe to keep
            // only if its structural invariants survived the unwind;
            // audit it (panicking loudly if not), then clear the poison
            // so later acquisitions stop paying this path.
            let guard = poisoned.into_inner();
            guard.assert_invariants();
            m.clear_poison();
            self.lock_recoveries.fetch_add(1, Ordering::AcqRel);
            guard
        })
    }

    /// Flushes one producer batch into its shard (called by
    /// [`IngestHandle`]); one lock acquisition per call.
    fn flush_batch(&self, shard: usize, batch: &[T]) {
        if batch.is_empty() {
            return;
        }
        self.lock_shard(shard).insert_batch(batch);
        self.items.fetch_add(batch.len() as u64, Ordering::AcqRel);
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Ingests one caller-assembled batch directly: picks the next
    /// shard round-robin and feeds the whole slice through the shard's
    /// [`insert_batch`] under a single lock acquisition.
    ///
    /// This is the *request-scoped* ingest path: unlike an
    /// [`IngestHandle`], nothing stays buffered engine-side afterwards
    /// — every element is visible to the next snapshot the moment the
    /// call returns. `sqs-service` uses it so a server never holds
    /// client data in limbo (its `INSERT_BATCH` reply means "merged"),
    /// and so graceful shutdown has nothing left to flush.
    ///
    /// [`insert_batch`]: sqs_core::QuantileSummary::insert_batch
    pub fn ingest_batch(&self, xs: &[T]) {
        if xs.is_empty() {
            return;
        }
        let shard = self.router.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.flush_batch(shard, xs);
    }

    /// Merges an externally-built summary (e.g. one decoded off the
    /// wire) into shard 0, adding its mass to the engine's totals.
    /// Returns the summary back as `Err` without touching anything if
    /// its accuracy configuration is incompatible with this engine's
    /// shards — the panic-free gate remote `MERGE_SNAPSHOT` traffic
    /// goes through.
    pub fn try_absorb(&self, other: S) -> Result<(), S> {
        let mass = other.n();
        {
            let mut shard = self.lock_shard(0);
            if !shard.merge_compatible(&other) {
                return Err(other);
            }
            shard.merge_from(other);
        }
        // Count the absorbed mass so `engine.mass_conservation`
        // (Σ shard.n() == items) keeps holding.
        self.items.fetch_add(mass, Ordering::AcqRel);
        Ok(())
    }
}

impl<T: Ord + Copy, S: MergeableSummary<T> + CheckInvariants + Clone> ShardedEngine<T, S> {
    /// Folds the current shard summaries into one queryable summary.
    ///
    /// Each shard lock is held only long enough to clone that shard;
    /// the balanced merge tree then runs entirely off the ingest path.
    /// The result is an ε-summary of every element flushed so far
    /// (elements still buffered in live handles are invisible until
    /// they flush).
    pub fn snapshot(&self) -> S {
        let start = Instant::now();
        let clones: Vec<S> = (0..self.shards.len())
            .map(|i| self.lock_shard(i).clone())
            .collect();
        let (merged, depth) = merge_tree(clones);
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.last_merge_depth
            .store(u64::from(depth), Ordering::Release);
        self.last_snapshot_nanos.store(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Release,
        );
        merged
    }

    /// An ε-approximate φ-quantile of everything flushed so far, via a
    /// fresh [`snapshot`](Self::snapshot). `None` while empty.
    ///
    /// Answering *many* ranks? Use [`quantiles`](Self::quantiles),
    /// which folds the merge tree once instead of once per rank.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.snapshot().quantile(phi)
    }

    /// Answers a whole rank sweep from **one** merged snapshot.
    ///
    /// [`quantile`](Self::quantile) rebuilds the merge tree per call,
    /// so a 100-point sweep pays 100 clone-and-fold rounds; this
    /// materializes the snapshot once and reads every φ from it. The
    /// answers are also mutually consistent — they all describe the
    /// same instant of a live stream, which per-call snapshots cannot
    /// guarantee.
    ///
    /// # Panics
    /// Panics if any `φ ∉ (0, 1)`, matching
    /// [`QuantileSummary::quantile`](sqs_core::QuantileSummary::quantile).
    pub fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        if phis.is_empty() {
            return Vec::new();
        }
        let mut snap = self.snapshot();
        phis.iter().map(|&phi| snap.quantile(phi)).collect()
    }

    /// Estimated rank of `x` over everything flushed so far, via a
    /// fresh [`snapshot`](Self::snapshot).
    pub fn rank_estimate(&self, x: T) -> u64 {
        self.snapshot().rank_estimate(x)
    }
}

/// Folds summaries pairwise, level by level — the balanced merge tree.
/// Returns the fold and its depth (`⌈log₂ k⌉`). Balance keeps every
/// leaf at the same depth, which matters for summaries whose merge
/// guarantee degrades with *tree depth* rather than merge count; for
/// the fully-mergeable summaries in `sqs-core` it simply bounds
/// intermediate sizes.
///
/// # Panics
/// Panics if `layer` is empty.
pub fn merge_tree<T: Ord + Copy, S: MergeableSummary<T>>(mut layer: Vec<S>) -> (S, u32) {
    assert!(!layer.is_empty(), "merge_tree needs at least one summary");
    let mut depth = 0u32;
    while layer.len() > 1 {
        depth += 1;
        let prev = std::mem::take(&mut layer);
        layer.reserve(prev.len().div_ceil(2));
        let mut it = prev.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(b);
            }
            layer.push(a);
        }
    }
    let root = layer
        .pop()
        .expect("Engine invariant: merge tree reduces to one root");
    (root, depth)
}

/// A producer-side ingest buffer bound to one shard of a
/// [`ShardedEngine`].
///
/// `insert` appends to a plain `Vec`; when the buffer reaches the
/// engine's `batch_capacity` it flushes — one shard-lock acquisition
/// feeding the summary's [`insert_batch`] bulk path. Dropping the
/// handle flushes the remainder, so no element is ever lost; call
/// [`flush`](Self::flush) explicitly to publish early.
///
/// Handles are cheap; create one per producer thread.
///
/// [`insert_batch`]: sqs_core::QuantileSummary::insert_batch
pub struct IngestHandle<'a, T: Ord + Copy, S: MergeableSummary<T> + CheckInvariants> {
    engine: &'a ShardedEngine<T, S>,
    shard: usize,
    buf: Vec<T>,
}

impl<T: Ord + Copy, S: MergeableSummary<T> + CheckInvariants> IngestHandle<'_, T, S> {
    /// Buffers one element, flushing to the shard when the buffer
    /// fills.
    #[inline]
    pub fn insert(&mut self, x: T) {
        self.buf.push(x);
        if self.buf.len() >= self.engine.batch_capacity {
            self.flush();
        }
    }

    /// Buffers a slice, flushing at each capacity boundary.
    pub fn insert_slice(&mut self, xs: &[T]) {
        for &x in xs {
            self.insert(x);
        }
    }

    /// Publishes everything buffered so far to the shard (one lock
    /// acquisition) and empties the buffer. A no-op when empty.
    pub fn flush(&mut self) {
        self.engine.flush_batch(self.shard, &self.buf);
        self.buf.clear();
    }

    /// Index of the shard this handle feeds.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// Elements buffered but not yet visible to snapshots.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl<T: Ord + Copy, S: MergeableSummary<T> + CheckInvariants> Drop for IngestHandle<'_, T, S> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<T, S> CheckInvariants for ShardedEngine<T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants,
{
    /// Engine-level invariants on top of each shard's own:
    ///
    /// * `engine.shard_structure` — at least one shard exists and the
    ///   batch capacity is positive (construction-time guarantees that
    ///   must survive);
    /// * every shard's `CheckInvariants` (first violation wins);
    /// * `engine.mass_conservation` — the shards' element counts sum
    ///   exactly to the engine's flushed-items counter: no flush lost
    ///   or double-counted an element.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        ensure(
            !self.shards.is_empty() && self.batch_capacity > 0,
            "ShardedEngine",
            "engine.shard_structure",
            || {
                format!(
                    "shards = {}, batch_capacity = {}",
                    self.shards.len(),
                    self.batch_capacity
                )
            },
        )?;
        let mut shard_mass = 0u64;
        for m in &self.shards {
            // Poison alone is not a violation — `lock_shard` recovers
            // from it by design; what matters is whether the summary's
            // own invariants survived the holder's panic, which the
            // audit below reports directly.
            let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
            guard.check_invariants()?;
            shard_mass = shard_mass.saturating_add(guard.n());
        }
        let counted = self.items.load(Ordering::Acquire);
        ensure(
            shard_mass == counted,
            "ShardedEngine",
            "engine.mass_conservation",
            || format!("Σ shard.n() = {shard_mass} but items counter = {counted}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_core::qdigest::QDigest;
    use sqs_core::random::RandomSketch;
    use sqs_core::sampled::ReservoirQuantiles;
    use sqs_core::QuantileSummary;

    fn random_engine(shards: usize, cap: usize) -> ShardedEngine<u64, RandomSketch<u64>> {
        ShardedEngine::new_with(shards, cap, |i| RandomSketch::new(0.05, 100 + i as u64))
    }

    #[test]
    fn round_robin_assigns_all_shards() {
        let e = random_engine(4, 8);
        let seen: Vec<usize> = (0..8).map(|_| e.handle().shard_index()).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn drop_flushes_partial_buffer() {
        let e = random_engine(2, 1000);
        {
            let mut h = e.handle();
            for x in 0..7u64 {
                h.insert(x);
            }
            assert_eq!(h.buffered(), 7);
            assert_eq!(e.n(), 0, "nothing visible before flush");
        }
        assert_eq!(e.n(), 7, "drop publishes the remainder");
        assert_eq!(e.stats().flushes, 1);
        e.assert_invariants();
    }

    #[test]
    fn flush_cadence_matches_batch_capacity() {
        let e = random_engine(1, 64);
        let mut h = e.handle_for(0);
        for x in 0..256u64 {
            h.insert(x);
        }
        assert_eq!(h.buffered(), 0);
        drop(h);
        let stats = e.stats();
        assert_eq!(stats.items, 256);
        assert_eq!(stats.flushes, 4, "256 elements / 64 per batch");
    }

    #[test]
    fn snapshot_records_depth_and_latency() {
        for (shards, want_depth) in [(1usize, 0u32), (2, 1), (4, 2), (5, 3), (8, 3)] {
            let e = random_engine(shards, 32);
            let mut h = e.handle();
            for x in 0..100u64 {
                h.insert(x);
            }
            drop(h);
            let _ = e.snapshot();
            let stats = e.stats();
            assert_eq!(stats.snapshots, 1);
            assert_eq!(stats.last_merge_depth, want_depth, "shards = {shards}");
            assert!(stats.last_snapshot_nanos > 0);
        }
    }

    #[test]
    fn snapshot_sees_all_flushed_mass() {
        let e = random_engine(4, 16);
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..1_000u64 {
                h.insert(u64::try_from(t).expect("test invariant: t fits u64") * 1_000 + x);
            }
        }
        let mut snap = e.snapshot();
        assert_eq!(snap.n(), 4_000);
        assert_eq!(snap.n(), e.n());
        let q = snap.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_000) <= 200, "median {q}");
        e.assert_invariants();
    }

    #[test]
    fn quantile_and_rank_work_through_the_engine() {
        let e = ShardedEngine::new_with(3, 128, |_| QDigest::new(0.01, 20));
        let mut h = e.handle();
        for x in 0..10_000u64 {
            h.insert(x);
        }
        drop(h);
        let q = e.quantile(0.25).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_500) <= 100, "q1 {q}");
        let r = e.rank_estimate(5_000);
        assert!(r.abs_diff(5_000) <= 100, "rank {r}");
        assert!(e.quantile(0.5).is_some());
        e.assert_invariants();
    }

    #[test]
    fn reservoir_backend_engine_is_sound() {
        let e = ShardedEngine::new_with(4, 64, |i| {
            ReservoirQuantiles::with_capacity(2_000, 40 + i as u64)
        });
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..5_000u64 {
                h.insert(x);
            }
        }
        let mut snap = e.snapshot();
        assert_eq!(snap.n(), 20_000);
        let q = snap.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_500) <= 500, "median {q}");
        e.assert_invariants();
    }

    #[test]
    fn merge_tree_of_one_is_identity() {
        let mut s = RandomSketch::new(0.1, 1);
        for x in 0..100u64 {
            s.insert(x);
        }
        let (merged, depth) = merge_tree(vec![s]);
        assert_eq!(depth, 0);
        assert_eq!(merged.n(), 100);
    }

    #[test]
    fn mass_conservation_violation_is_named() {
        let e = random_engine(2, 16);
        let mut h = e.handle_for(0);
        for x in 0..64u64 {
            h.insert(x);
        }
        drop(h);
        e.assert_invariants();
        // Corrupt the flushed-items counter behind the shards' backs.
        e.items.fetch_add(5, Ordering::AcqRel);
        let err = e.check_invariants().expect_err("corruption must be caught");
        assert_eq!(err.invariant, "engine.mass_conservation");
        assert_eq!(err.algorithm, "ShardedEngine");
    }

    #[test]
    fn quantiles_sweep_matches_single_snapshot() {
        let e = random_engine(4, 64);
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..5_000u64 {
                h.insert(u64::try_from(t).expect("test invariant: t fits u64") * 5_000 + x);
            }
        }
        let phis = [0.1, 0.25, 0.5, 0.75, 0.9];
        let swept = e.quantiles(&phis);
        // One snapshot answers all ranks; the per-φ answers must agree
        // with reading the same snapshot directly.
        let mut snap = e.snapshot();
        let direct: Vec<Option<u64>> = phis.iter().map(|&p| snap.quantile(p)).collect();
        assert_eq!(swept, direct);
        // And it costs exactly one snapshot, not one per φ.
        let before = e.stats().snapshots;
        let _ = e.quantiles(&phis);
        assert_eq!(e.stats().snapshots, before + 1);
        assert_eq!(e.quantiles(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn ingest_batch_is_immediately_visible() {
        let e = random_engine(3, 16);
        let batch: Vec<u64> = (0..1_000).collect();
        e.ingest_batch(&batch);
        assert_eq!(e.n(), 1_000, "no engine-side buffering");
        e.ingest_batch(&[]);
        assert_eq!(e.stats().flushes, 1, "empty batches don't count");
        e.ingest_batch(&batch);
        assert_eq!(e.n(), 2_000);
        e.assert_invariants();
    }

    #[test]
    fn try_absorb_merges_and_conserves_mass() {
        let e = random_engine(2, 16);
        e.ingest_batch(&(0..4_000u64).collect::<Vec<_>>());
        let mut donor = RandomSketch::new(0.05, 999);
        for x in 4_000..8_000u64 {
            donor.insert(x);
        }
        e.try_absorb(donor).expect("same eps must merge");
        assert_eq!(e.n(), 8_000);
        e.assert_invariants(); // engine.mass_conservation holds
        let q = e.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(4_000) <= 400, "median {q}");
    }

    #[test]
    fn try_absorb_rejects_incompatible_config() {
        let e = random_engine(2, 16);
        e.ingest_batch(&[1, 2, 3]);
        let mut donor = RandomSketch::new(0.2, 7); // different eps
        donor.insert(9);
        let back = e.try_absorb(donor).expect_err("eps mismatch must bounce");
        assert_eq!(back.n(), 1, "donor returned untouched");
        assert_eq!(e.n(), 3, "engine untouched");
        e.assert_invariants();
    }

    #[test]
    fn dcs_backend_shards_merge_exactly() {
        use sqs_turnstile::TurnstileSummary;
        // Same seed on every shard → identical hash draws → snapshot
        // merging is *exact*: the engine snapshot is state-identical
        // to one summary fed the whole stream directly.
        let seed = 0xD05;
        let e = ShardedEngine::new_with(4, 64, |_| TurnstileSummary::dcs(0.05, 16, seed));
        let mut direct = TurnstileSummary::dcs(0.05, 16, seed);
        let mut rng = sqs_util::rng::Xoshiro256pp::new(77);
        let data: Vec<u64> = (0..8_000).map(|_| rng.next_below(1 << 16)).collect();
        for chunk in data.chunks(250) {
            e.ingest_batch(chunk);
        }
        direct.insert_batch(&data);
        let snap = e.snapshot();
        assert_eq!(snap, direct, "sharded != direct");
        assert_eq!(e.n(), 8_000);
        e.assert_invariants();
    }

    #[test]
    fn poisoned_shard_is_recovered_and_counted() {
        let e = random_engine(2, 16);
        let mut h = e.handle_for(0);
        h.insert_slice(&(0..100u64).collect::<Vec<_>>());
        h.flush();
        // Kill a "producer" while it holds shard 0: the unwind poisons
        // the shard mutex.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = e.lock_shard(0);
            panic!("producer dies while holding shard 0");
        }));
        assert!(died.is_err());
        assert_eq!(e.stats().lock_recoveries, 0, "nothing recovered yet");
        // The next acquisition audits the summary, clears the poison,
        // and counts the recovery — then ingestion continues as if
        // nothing happened.
        h.insert_slice(&(100..200u64).collect::<Vec<_>>());
        h.flush();
        assert_eq!(e.stats().lock_recoveries, 1);
        assert_eq!(e.n(), 200, "no mass lost to the recovery");
        e.assert_invariants();
        // Poison was cleared: the recovery path ran once, not per lock.
        let _ = e.snapshot();
        assert!(e.quantile(0.5).is_some());
        assert_eq!(e.stats().lock_recoveries, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock order")]
    fn out_of_order_shard_locks_panic_in_debug() {
        let e = random_engine(2, 16);
        let _hi = e.lock_shard(1);
        let _lo = e.lock_shard(0); // descending: OrderedMutex trips
    }

    #[cfg(debug_assertions)]
    #[test]
    fn ascending_shard_locks_are_legal() {
        let e = random_engine(3, 16);
        let _a = e.lock_shard(0);
        let _b = e.lock_shard(2); // ascending: the sanctioned exception
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::<u64, RandomSketch<u64>>::new_with(0, 8, |i| {
            RandomSketch::new(0.1, i as u64)
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn handle_for_checks_bounds() {
        let e = random_engine(2, 8);
        let _ = e.handle_for(2);
    }
}
