//! A wait-free-ingest, epoch-snapshotting concurrent engine over the
//! mergeable quantile summaries of `sqs-core`.
//!
//! The paper studies single-threaded summaries; production collectors
//! ingest from many threads at once. The mergeable-summary property
//! (Agarwal et al., PODS'12 — see `PAPERS.md`) makes the standard
//! scale-out construction sound: run `k` independent ε-summaries, one
//! per *shard*, and answer queries by folding the shards with a merge
//! tree — sharding buys concurrency without spending accuracy.
//!
//! Earlier revisions of this crate took a striped-lock approach:
//! producers batched locally, then flushed **inline** under the shard
//! mutex, and every query sweep re-folded the shards under their
//! locks. That makes the shard mutex the write-throughput ceiling and
//! puts readers on the writers' critical path. This revision rebuilds
//! the ingest pipeline along the lines of **Quancurrent**
//! (Elias-Zada, Rinberg, Keidar — see `PAPERS.md`): thread-local
//! buffers, a propagation stage with brief synchronized handoffs, and
//! relaxed-semantics snapshots versioned by a monotonic epoch. In safe
//! stable Rust (`forbid(unsafe_code)`, atomics + mutex leaves only):
//!
//! 1. **Owned ingest buffers** — [`IngestHandle::insert`] appends to a
//!    buffer the handle *owns*; the hot path touches no shared state
//!    at all. A full buffer is **handed off** whole: one brief push
//!    onto its shard's propagation queue, no folding on the producer's
//!    path.
//! 2. **Per-shard propagation rounds** — each shard has a propagation
//!    token (`AtomicBool`); whoever holds it (a dedicated
//!    [`spawn_propagator`](ShardedEngine::spawn_propagator) thread, or
//!    a producer *cooperatively stealing* the round at handoff) drains
//!    that shard's queue and folds the buffers through
//!    [`insert_batches`], holding the shard's [`OrderedMutex`] once
//!    per round — a short, bounded critical section. Rounds on
//!    different shards run in parallel; folding scales with the shard
//!    count instead of funnelling through one lock. After folding, the
//!    round **publishes** an `Arc` clone of the shard's summary — one
//!    atomic slot swap — and ticks the engine epoch.
//! 3. **Epoch / seqlock snapshots** — the monotonic engine epoch
//!    (`AtomicU64`) counts publications. Readers collect the published
//!    `Arc`s between two equal epoch reads — no publication landed
//!    mid-collection, so the cut is a consistent point in time — and
//!    never touch a shard's live lock, so queries cannot stall
//!    ingestion (nor wait out a fold: the epoch moves only at the
//!    instant of publication). The merged snapshot is cached keyed on
//!    that epoch: repeated query sweeps between writes cost one
//!    cache-mutex acquisition. See `docs/ENGINE.md` for the
//!    memory-ordering argument and the error analysis.
//!
//! [`insert_batches`]: sqs_core::QuantileSummary::insert_batches

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sqs_core::MergeableSummary;
use sqs_util::audit::{ensure, CheckInvariants, InvariantViolation};
use sqs_util::pad::CachePadded;
use sqs_util::sync::{next_domain, OrderedMutex, OrderedMutexGuard};

/// Default ingest-buffer capacity (elements per [`IngestHandle`]
/// between handoffs to the propagation queue). Swept 256..8192
/// against the sketch crate's 1024-element `CHUNK` on the reference
/// box (`results/batch_sweep.csv`, written by `sqs-exp engine`):
/// throughput climbs steeply up to 1024 and then flattens within
/// run-to-run noise; 2048 sits on that plateau while halving
/// queue/handoff traffic vs 1024, at 16 KiB of in-flight `u64`s per
/// producer. Going further (8192) buys ≲10% single-producer
/// throughput for 4× the per-producer memory and 4× the snapshot
/// staleness window (buffered items are invisible to queries until
/// handoff). See docs/PERF.md §4.
pub const DEFAULT_BATCH_CAPACITY: usize = 2048;

/// Most handed-off buffers a single propagation round folds — bounds
/// the shard critical section a round may hold.
const MAX_ROUND_BUFFERS: usize = 32;

/// Per-shard queue depth at which a producer *must* help propagate
/// before continuing, even with a background propagator attached — the
/// engine's bound on handed-off-but-unfolded memory per shard
/// (`MAX_QUEUE_BUFFERS × batch_capacity` elements).
const MAX_QUEUE_BUFFERS: usize = 64;

/// Seqlock read attempts before a reader accepts a possibly-mixed
/// (multi-epoch) cut — the relaxed-semantics escape hatch that keeps
/// readers wait-free under a continuous stream of publications.
const SNAPSHOT_RETRY_LIMIT: usize = 16;

/// A point-in-time copy of the engine's operational counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Elements propagated into shard summaries so far (excludes
    /// elements buffered in live [`IngestHandle`]s and elements handed
    /// off but not yet folded — see [`queued_items`]).
    ///
    /// [`queued_items`]: EngineStats::queued_items
    pub items: u64,
    /// Elements handed off to the propagation queues and not yet
    /// folded into a shard summary.
    pub queued_items: u64,
    /// Buffers handed off to the propagation queues so far.
    pub handoffs: u64,
    /// Publications so far: propagation rounds plus direct folds
    /// ([`ingest_batch`](ShardedEngine::ingest_batch) /
    /// [`try_absorb`](ShardedEngine::try_absorb)). Equals the epoch at
    /// quiescence.
    pub propagations: u64,
    /// Handed-off buffers folded by propagation rounds so far.
    pub propagated_buffers: u64,
    /// Buffers folded by the most recent round — the observed
    /// propagation depth.
    pub last_round_buffers: u64,
    /// Deepest any shard's propagation queue has ever been (buffers).
    pub max_queue_depth: u64,
    /// Queue-to-fold latency of the last buffer propagated:
    /// wall-clock nanoseconds between its handoff and its fold.
    pub last_handoff_latency_nanos: u64,
    /// The engine epoch: one tick per publication. The snapshot
    /// cache's invalidation signal.
    pub epoch: u64,
    /// Merged snapshots rebuilt so far (snapshot-cache misses).
    pub snapshots: u64,
    /// Query sweeps answered from the epoch-keyed snapshot cache
    /// without re-merging.
    pub snapshot_cache_hits: u64,
    /// Seqlock retries readers have paid waiting out concurrent
    /// publications.
    pub snapshot_retries: u64,
    /// Snapshots that gave up retrying and accepted a mixed-epoch
    /// (relaxed-consistency) cut. Zero in every quiescent workload.
    pub snapshots_torn: u64,
    /// Merge-tree depth of the most recent snapshot rebuild
    /// (`⌈log₂ shards⌉`; 0 before the first).
    pub last_merge_depth: u32,
    /// Wall-clock nanoseconds spent on the most recent snapshot
    /// rebuild (publication reads + merge tree; 0 before the first).
    pub last_snapshot_nanos: u64,
    /// Number of poisoned shard locks recovered so far: a propagating
    /// thread panicked while folding into a shard, and a later
    /// acquisition audited the summary's invariants, cleared the
    /// poison, and carried on. Nonzero values mean some thread died
    /// mid-fold — the engine survived, but whatever that thread was
    /// folding and had not yet folded is gone.
    pub lock_recoveries: u64,
}

/// One handed-off producer buffer awaiting propagation.
struct Handoff<T> {
    data: Vec<T>,
    enqueued: Instant,
}

/// One shard: the live summary rounds fold into, the last published
/// clone readers merge from, and the shard's own propagation pipeline.
/// The whole struct sits inside one [`CachePadded`] slot so
/// neighbouring shards' hot words never false-share a cache line.
struct Shard<S, T> {
    live: OrderedMutex<S>,
    published: Mutex<Arc<S>>,
    queue: Mutex<VecDeque<Handoff<T>>>,
    /// Single-propagator-per-shard token: rounds on one shard
    /// serialize; rounds on different shards run in parallel.
    token: AtomicBool,
    /// Buffers handed off to this shard so far (the handoff sequence
    /// number assigned under the queue lock, so it matches FIFO
    /// order).
    handoffs: AtomicU64,
    /// Buffers folded so far. FIFO + serialized rounds make
    /// `completed ≥ seq` exactly "handoff `seq` is folded and
    /// published".
    completed: AtomicU64,
    /// Elements currently sitting in `queue`.
    queued_items: AtomicU64,
}

impl<S, T> Shard<S, T> {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Handoff<T>>> {
        // Nothing queue-structural can be torn by a holder's panic
        // (push/drain are the only mutations); recover and carry on.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The published clone, without touching the live lock.
    fn published(&self) -> Arc<S> {
        Arc::clone(
            &self
                .published
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Replaces the published clone — the single atomic slot swap that
    /// makes a round's effects visible to readers.
    fn publish(&self, snap: Arc<S>) {
        *self
            .published
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = snap;
    }
}

/// The merged snapshot the read path caches between ingest epochs.
struct CachedSnapshot<S> {
    epoch: u64,
    summary: S,
}

/// RAII over one shard's propagation token. On drop — normal
/// completion *or* an unwind out of a panicking summary fold — the
/// token is released, so a dying propagator can never wedge its
/// shard's pipeline.
struct TokenGuard<'a> {
    token: &'a AtomicBool,
}

impl<'a> TokenGuard<'a> {
    /// Tries to become the shard's propagator. `None` if another
    /// thread holds the token.
    fn acquire(token: &'a AtomicBool) -> Option<Self> {
        if token.swap(true, Ordering::Acquire) {
            return None;
        }
        Some(Self { token })
    }
}

impl Drop for TokenGuard<'_> {
    fn drop(&mut self) {
        self.token.store(false, Ordering::Release);
    }
}

/// A concurrent quantile-ingestion engine: `k` cache-padded shards,
/// each a mergeable ε-summary with its own propagation pipeline, fed
/// by wait-free owned-buffer handoffs and folded on demand into an
/// epoch-versioned queryable snapshot.
///
/// Shared by reference across producer threads; all methods take
/// `&self`. Producers obtain an [`IngestHandle`] (one shard each,
/// assigned round-robin) and push elements through it; readers call
/// [`snapshot`](Self::snapshot) / [`quantile`](Self::quantile) /
/// [`quantiles`](Self::quantiles) at any time. Optionally, wrap the
/// engine in an [`Arc`] and call
/// [`spawn_propagator`](Self::spawn_propagator) to move folding onto a
/// background thread.
///
/// ```
/// use sqs_core::random::RandomSketch;
/// use sqs_engine::ShardedEngine;
///
/// let engine = ShardedEngine::new_with(4, 256, |i| RandomSketch::new(0.05, i as u64));
/// std::thread::scope(|scope| {
///     for t in 0..4u64 {
///         let engine = &engine;
///         scope.spawn(move || {
///             let mut h = engine.handle();
///             for x in 0..10_000u64 {
///                 h.insert(t * 10_000 + x);
///             }
///         });
///     }
/// });
/// let q = engine.quantile(0.5).unwrap();
/// assert!((q as f64 - 20_000.0).abs() <= 0.05 * 40_000.0);
/// ```
pub struct ShardedEngine<T, S> {
    shards: Vec<CachePadded<Shard<S, T>>>,
    /// The seqlock epoch: one tick per publication, read by snapshots
    /// as the consistency check and the cache key.
    epoch: CachePadded<AtomicU64>,
    /// Round-robin shard router for new handles / direct batches.
    router: CachePadded<AtomicUsize>,
    /// Propagator-side counters (written once per round / fold).
    items: CachePadded<AtomicU64>,
    propagations: AtomicU64,
    propagated_buffers: AtomicU64,
    last_round_buffers: AtomicU64,
    max_queue_depth: AtomicU64,
    last_handoff_latency_nanos: AtomicU64,
    /// Read-side stats + the epoch-keyed merged-snapshot cache.
    snapshots: AtomicU64,
    cache_hits: AtomicU64,
    snapshot_retries: AtomicU64,
    snapshots_torn: AtomicU64,
    last_merge_depth: AtomicU64,
    last_snapshot_nanos: AtomicU64,
    lock_recoveries: AtomicU64,
    cache: Mutex<Option<CachedSnapshot<S>>>,
    /// Background propagators currently attached (producers steal
    /// eagerly only when this is zero).
    propagator_count: AtomicUsize,
    batch_capacity: usize,
    _elem: PhantomData<fn(T)>,
}

impl<T, S> ShardedEngine<T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants + Clone,
{
    /// Builds an engine with `shard_count` shards, constructing each
    /// shard's summary via `make(shard_index)` — the closure is where
    /// per-shard seeds diverge for randomized summaries.
    ///
    /// # Panics
    /// Panics if `shard_count == 0` or `batch_capacity == 0`.
    pub fn new_with(
        shard_count: usize,
        batch_capacity: usize,
        mut make: impl FnMut(usize) -> S,
    ) -> Self {
        assert!(shard_count > 0, "ShardedEngine needs at least one shard");
        assert!(batch_capacity > 0, "batch_capacity must be positive");
        // One ordering domain per engine, shard index as rank: debug
        // builds enforce "shard locks only in ascending order" at
        // runtime, and locks of unrelated engines stay independent.
        let domain = next_domain();
        Self {
            shards: (0..shard_count)
                .map(|i| {
                    let live = make(i);
                    let published = Mutex::new(Arc::new(live.clone()));
                    CachePadded::new(Shard {
                        live: OrderedMutex::new(domain, i, live),
                        published,
                        queue: Mutex::new(VecDeque::new()),
                        token: AtomicBool::new(false),
                        handoffs: AtomicU64::new(0),
                        completed: AtomicU64::new(0),
                        queued_items: AtomicU64::new(0),
                    })
                })
                .collect(),
            epoch: CachePadded::new(AtomicU64::new(0)),
            router: CachePadded::new(AtomicUsize::new(0)),
            items: CachePadded::new(AtomicU64::new(0)),
            propagations: AtomicU64::new(0),
            propagated_buffers: AtomicU64::new(0),
            last_round_buffers: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            last_handoff_latency_nanos: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            snapshot_retries: AtomicU64::new(0),
            snapshots_torn: AtomicU64::new(0),
            last_merge_depth: AtomicU64::new(0),
            last_snapshot_nanos: AtomicU64::new(0),
            lock_recoveries: AtomicU64::new(0),
            cache: Mutex::new(None),
            propagator_count: AtomicUsize::new(0),
            batch_capacity,
            _elem: PhantomData,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Elements each [`IngestHandle`] buffers between handoffs.
    pub fn batch_capacity(&self) -> usize {
        self.batch_capacity
    }

    /// Creates a producer handle bound to the next shard in round-robin
    /// order. One `fetch_add` — producers never touch shared state
    /// again until a buffer handoff. Spawning one handle per thread
    /// gives thread-affine shards whenever the thread count divides the
    /// shard count.
    pub fn handle(&self) -> IngestHandle<'_, T, S> {
        let shard = self.router.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        self.handle_for(shard)
    }

    /// Creates a producer handle pinned to a specific shard — the
    /// deterministic-assignment variant used by the stress tests (and
    /// by callers that partition producers themselves).
    ///
    /// # Panics
    /// Panics if `shard >= self.shard_count()`.
    pub fn handle_for(&self, shard: usize) -> IngestHandle<'_, T, S> {
        assert!(
            shard < self.shards.len(),
            "shard index {shard} out of range (have {})",
            self.shards.len()
        );
        IngestHandle {
            engine: self,
            shard,
            buf: Vec::with_capacity(self.batch_capacity),
            last_seq: 0,
        }
    }

    /// Elements propagated into shard summaries so far. Elements still
    /// buffered in live handles (or handed off but not yet folded) are
    /// *not* counted — callers wanting an exact count drop (or
    /// [`flush`]) their handles first; both wait for propagation.
    ///
    /// [`flush`]: IngestHandle::flush
    pub fn n(&self) -> u64 {
        self.items.load(Ordering::Acquire)
    }

    /// The current engine epoch (one tick per publication).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A copy of the engine's operational counters.
    pub fn stats(&self) -> EngineStats {
        let mut handoffs = 0u64;
        let mut queued_items = 0u64;
        for s in &self.shards {
            handoffs += s.handoffs.load(Ordering::Acquire);
            queued_items += s.queued_items.load(Ordering::Acquire);
        }
        EngineStats {
            items: self.items.load(Ordering::Acquire),
            queued_items,
            handoffs,
            propagations: self.propagations.load(Ordering::Acquire),
            propagated_buffers: self.propagated_buffers.load(Ordering::Acquire),
            last_round_buffers: self.last_round_buffers.load(Ordering::Acquire),
            max_queue_depth: self.max_queue_depth.load(Ordering::Acquire),
            last_handoff_latency_nanos: self.last_handoff_latency_nanos.load(Ordering::Acquire),
            epoch: self.epoch.load(Ordering::Acquire),
            snapshots: self.snapshots.load(Ordering::Acquire),
            snapshot_cache_hits: self.cache_hits.load(Ordering::Acquire),
            snapshot_retries: self.snapshot_retries.load(Ordering::Acquire),
            snapshots_torn: self.snapshots_torn.load(Ordering::Acquire),
            last_merge_depth: u32::try_from(self.last_merge_depth.load(Ordering::Acquire))
                .unwrap_or(u32::MAX),
            last_snapshot_nanos: self.last_snapshot_nanos.load(Ordering::Acquire),
            lock_recoveries: self.lock_recoveries.load(Ordering::Acquire),
        }
    }

    fn shard(&self, shard: usize) -> &Shard<S, T> {
        self.shards
            .get(shard)
            .expect("Engine invariant: shard index within shard count")
    }

    fn lock_shard(&self, shard: usize) -> OrderedMutexGuard<'_, S> {
        let m = &self.shard(shard).live;
        m.lock().unwrap_or_else(|poisoned| {
            // A holder panicked mid-fold — necessarily inside the
            // summary's own insert/merge code, since the engine does
            // nothing else under the guard. The summary is safe to keep
            // only if its structural invariants survived the unwind;
            // audit it (panicking loudly if not), then clear the poison
            // so later acquisitions stop paying this path.
            let guard = poisoned.into_inner();
            guard.assert_invariants();
            m.clear_poison();
            self.lock_recoveries.fetch_add(1, Ordering::AcqRel);
            guard
        })
    }

    /// Hands one full producer buffer to `shard`'s propagation queue
    /// and returns its handoff sequence number (rounds complete FIFO —
    /// [`wait_propagated`](Self::wait_propagated) on the returned
    /// number waits for exactly this buffer).
    ///
    /// This is the only producer-side synchronization: one brief queue
    /// push. Folding happens on whichever thread runs the shard's next
    /// propagation round — a background propagator if attached,
    /// otherwise a producer stealing the round cooperatively right
    /// here.
    fn handoff(&self, shard: usize, data: Vec<T>) -> u64 {
        let len = data.len() as u64;
        debug_assert!(len > 0, "empty buffers are never handed off");
        let sh = self.shard(shard);
        let (seq, depth) = {
            let mut q = sh.lock_queue();
            q.push_back(Handoff {
                data,
                enqueued: Instant::now(),
            });
            // Sequence numbers are assigned under the queue lock so
            // they match FIFO queue order exactly.
            sh.queued_items.fetch_add(len, Ordering::AcqRel);
            (sh.handoffs.fetch_add(1, Ordering::AcqRel) + 1, q.len())
        };
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::AcqRel);
        if self.propagator_count.load(Ordering::Acquire) == 0 || depth >= MAX_QUEUE_BUFFERS {
            // No background propagator (or it has fallen too far
            // behind): fold cooperatively so queued memory stays
            // bounded. A no-op if another thread already holds this
            // shard's token.
            self.propagate_shard(shard);
        }
        seq
    }

    /// Blocks (helping) until `shard`'s buffer with handoff sequence
    /// number `seq` has been folded and published.
    fn wait_propagated(&self, shard: usize, seq: u64) {
        let sh = self.shard(shard);
        while sh.completed.load(Ordering::Acquire) < seq {
            if !self.propagate_shard(shard) {
                // Another thread holds this shard's round; let it
                // finish rather than burning the core.
                std::thread::yield_now();
            }
        }
    }

    /// Runs one propagation round on `shard`: drains up to
    /// [`MAX_ROUND_BUFFERS`] handed-off buffers, folds them into the
    /// shard summary under one short critical section, publishes the
    /// shard's new clone, and ticks the epoch. Returns `false` without
    /// folding if another thread holds the shard's token or its queue
    /// is empty.
    ///
    /// Rounds on *different* shards run concurrently — folding
    /// throughput scales with the shard count.
    pub fn propagate_shard(&self, shard: usize) -> bool {
        let sh = self.shard(shard);
        let Some(_token) = TokenGuard::acquire(&sh.token) else {
            return false;
        };
        let batch: Vec<Handoff<T>> = {
            let mut q = sh.lock_queue();
            let take = q.len().min(MAX_ROUND_BUFFERS);
            q.drain(..take).collect()
        };
        if batch.is_empty() {
            return false; // token guard drop releases the token
        }
        let folded = batch.len() as u64;
        let mass: u64 = batch.iter().map(|h| h.data.len() as u64).sum();
        let slices: Vec<&[T]> = batch.iter().map(|h| h.data.as_slice()).collect();
        let published = {
            let mut guard = self.lock_shard(shard);
            guard.insert_batches(&slices);
            Arc::new(guard.clone())
        };
        // The live guard is gone (the temporary died with the block);
        // publish and account outside the shard's critical section.
        sh.publish(published);
        self.items.fetch_add(mass, Ordering::AcqRel);
        sh.queued_items.fetch_sub(mass, Ordering::AcqRel);
        let latency = batch
            .iter()
            .map(|h| h.enqueued.elapsed().as_nanos())
            .max()
            .unwrap_or(0);
        self.last_handoff_latency_nanos.store(
            u64::try_from(latency).unwrap_or(u64::MAX),
            Ordering::Release,
        );
        self.last_round_buffers.store(folded, Ordering::Release);
        self.propagations.fetch_add(1, Ordering::AcqRel);
        self.propagated_buffers.fetch_add(folded, Ordering::AcqRel);
        // Completion order: publish first, then `completed`, then the
        // epoch tick. A waiter that sees `completed ≥ seq` therefore
        // sees its data folded *and* published; a reader that sees the
        // epoch tick sees the publication (Release/Acquire pairs on
        // the slot mutex and the counters).
        sh.completed.fetch_add(folded, Ordering::AcqRel);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Runs one propagation round on every shard with queued work.
    /// Returns `true` if any round folded anything — the background
    /// propagator's main loop, also handy in tests.
    pub fn propagate_all(&self) -> bool {
        let mut any = false;
        for i in 0..self.shards.len() {
            any |= self.propagate_shard(i);
        }
        any
    }

    /// Spins until this thread holds `shard`'s token — the entry point
    /// for the *direct* fold paths ([`ingest_batch`](Self::ingest_batch),
    /// [`try_absorb`](Self::try_absorb)) that must mutate a shard
    /// outside the queue pipeline.
    fn acquire_token_blocking(&self, shard: usize) -> TokenGuard<'_> {
        loop {
            if let Some(guard) = TokenGuard::acquire(&self.shard(shard).token) {
                return guard;
            }
            std::thread::yield_now();
        }
    }

    /// Ingests one caller-assembled batch directly: picks the next
    /// shard round-robin and folds the whole slice under a single
    /// critical section, publishing before returning.
    ///
    /// This is the *request-scoped* ingest path: unlike an
    /// [`IngestHandle`], nothing stays buffered or queued engine-side
    /// afterwards — every element is visible to the next snapshot the
    /// moment the call returns. `sqs-service` uses it so a server never
    /// holds client data in limbo (its `INSERT_BATCH` reply means
    /// "merged"), and so graceful shutdown has nothing left to flush.
    pub fn ingest_batch(&self, xs: &[T]) {
        if xs.is_empty() {
            return;
        }
        let shard = self.router.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let _token = self.acquire_token_blocking(shard);
        let published = {
            let mut guard = self.lock_shard(shard);
            guard.insert_batch(xs);
            Arc::new(guard.clone())
        };
        self.shard(shard).publish(published);
        self.items.fetch_add(xs.len() as u64, Ordering::AcqRel);
        self.propagations.fetch_add(1, Ordering::AcqRel);
        self.last_round_buffers.store(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Merges an externally-built summary (e.g. one decoded off the
    /// wire) into shard 0 under a single critical section, adding its
    /// mass to the engine's totals. Returns the summary back as `Err`
    /// without touching anything if its accuracy configuration is
    /// incompatible with this engine's shards — the panic-free gate
    /// remote `MERGE_SNAPSHOT` traffic goes through.
    pub fn try_absorb(&self, other: S) -> Result<(), S> {
        let mass = other.n();
        let _token = self.acquire_token_blocking(0);
        let published = {
            let mut guard = self.lock_shard(0);
            if !guard.merge_compatible(&other) {
                return Err(other); // token guard drop releases the token
            }
            guard.merge_from(other);
            Arc::new(guard.clone())
        };
        self.shard(0).publish(published);
        // Count the absorbed mass so `engine.mass_conservation`
        // (Σ shard.n() == items) keeps holding.
        self.items.fetch_add(mass, Ordering::AcqRel);
        self.propagations.fetch_add(1, Ordering::AcqRel);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Collects a consistent cut of the per-shard published clones —
    /// the seqlock read protocol. Returns the `Arc`s plus the epoch
    /// they correspond to, or `None` as the epoch if the reader
    /// exhausted its retries and accepted a possibly mixed-epoch cut
    /// (relaxed semantics; see `docs/ENGINE.md` §3).
    ///
    /// Never touches a shard's live lock: readers cannot stall
    /// ingestion, and folding cannot stall readers — the epoch moves
    /// only at the instant a round publishes, so a reader retries only
    /// if a publication actually landed mid-collection.
    fn published_cut(&self) -> (Vec<Arc<S>>, Option<u64>) {
        let mut attempts = 0usize;
        loop {
            let e1 = self.epoch.load(Ordering::Acquire);
            let cut: Vec<Arc<S>> = self.shards.iter().map(|s| s.published()).collect();
            let e2 = self.epoch.load(Ordering::Acquire);
            if e1 == e2 {
                return (cut, Some(e1));
            }
            if attempts >= SNAPSHOT_RETRY_LIMIT {
                self.snapshots_torn.fetch_add(1, Ordering::AcqRel);
                return (cut, None);
            }
            attempts += 1;
            self.snapshot_retries.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Rebuilds the merged snapshot from the published cut. Returns
    /// the merge and the epoch it is consistent with (`None` for a
    /// torn cut, which is never cached).
    fn rebuild_snapshot(&self) -> (S, Option<u64>) {
        let start = Instant::now();
        let (cut, epoch) = self.published_cut();
        let clones: Vec<S> = cut.iter().map(|a| S::clone(a)).collect();
        let (merged, depth) = merge_tree(clones);
        self.snapshots.fetch_add(1, Ordering::AcqRel);
        self.last_merge_depth
            .store(u64::from(depth), Ordering::Release);
        self.last_snapshot_nanos.store(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Release,
        );
        (merged, epoch)
    }

    /// Runs `f` against the merged snapshot for the current epoch,
    /// reusing the cached merge when no publication has happened since
    /// it was built — the epoch counter is the invalidation signal, so
    /// repeated query sweeps between writes cost one mutex acquisition
    /// and zero merging.
    fn with_snapshot<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let now = self.epoch.load(Ordering::Acquire);
        {
            let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cached) = cache.as_mut() {
                if cached.epoch == now {
                    self.cache_hits.fetch_add(1, Ordering::AcqRel);
                    return f(&mut cached.summary);
                }
            }
        }
        // Rebuild outside the cache lock (the seqlock cut takes the
        // published-slot locks; holding the cache lock across them
        // would nest guards). A concurrent rebuild racing us is
        // harmless — both are valid snapshots; the newer epoch wins
        // the cache slot.
        let (mut merged, epoch) = self.rebuild_snapshot();
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = epoch {
            let newer = cache.as_ref().is_some_and(|c| c.epoch > e);
            if !newer {
                *cache = Some(CachedSnapshot {
                    epoch: e,
                    summary: merged,
                });
                let cached = cache
                    .as_mut()
                    .expect("Engine invariant: cache slot just filled");
                return f(&mut cached.summary);
            }
        }
        // Torn cut (or a newer cache already present): answer from our
        // private merge without caching it.
        drop(cache);
        f(&mut merged)
    }

    /// Folds the current published shard summaries into one queryable
    /// summary (an ε-summary of every element propagated so far).
    ///
    /// Reads the per-shard publications under the seqlock protocol —
    /// never the shard live locks — and reuses the epoch-keyed cache,
    /// so a burst of snapshots between writes costs one merge.
    /// Elements still buffered in live handles, or handed off but not
    /// yet propagated, are invisible until folded.
    pub fn snapshot(&self) -> S {
        self.with_snapshot(|s| s.clone())
    }

    /// An ε-approximate φ-quantile of everything propagated so far,
    /// answered from the epoch-cached snapshot. `None` while empty.
    ///
    /// Answering *many* ranks? [`quantiles`](Self::quantiles) answers
    /// a whole sweep against one snapshot read.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.with_snapshot(|s| s.quantile(phi))
    }

    /// Answers a whole rank sweep from **one** epoch-consistent
    /// snapshot: every φ reads the same merged summary, so the
    /// answers are mutually consistent, and a sweep between writes
    /// costs no merging at all (cache hit). Rides the summary's
    /// [`quantiles`](sqs_core::QuantileSummary::quantiles) bulk path —
    /// the turnstile backends answer the whole sorted sweep in one
    /// lockstep bisection instead of re-bisecting per φ.
    ///
    /// # Panics
    /// Panics if any `φ ∉ (0, 1)`, matching
    /// [`QuantileSummary::quantile`](sqs_core::QuantileSummary::quantile).
    pub fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        if phis.is_empty() {
            return Vec::new();
        }
        self.with_snapshot(|s| s.quantiles(phis))
    }

    /// Estimated rank of `x` over everything propagated so far,
    /// answered from the epoch-cached snapshot.
    pub fn rank_estimate(&self, x: T) -> u64 {
        self.with_snapshot(|s| s.rank_estimate(x))
    }

    /// Answers a φ-sweep **and** a rank sweep against the *same*
    /// epoch-consistent snapshot in one call — the service's
    /// `QUERY_MANY` op. One snapshot read, one batched quantile sweep,
    /// one rank pass; the two answer vectors are mutually consistent
    /// by construction (no publication can land between them).
    ///
    /// # Panics
    /// Panics if any `φ ∉ (0, 1)`.
    pub fn query_many(&self, phis: &[f64], xs: &[T]) -> (Vec<Option<T>>, Vec<u64>) {
        if phis.is_empty() && xs.is_empty() {
            return (Vec::new(), Vec::new());
        }
        self.with_snapshot(|s| {
            let quantiles = s.quantiles(phis);
            let ranks = xs.iter().map(|&x| s.rank_estimate(x)).collect();
            (quantiles, ranks)
        })
    }
}

impl<T, S> ShardedEngine<T, S>
where
    T: Ord + Copy + Send + 'static,
    S: MergeableSummary<T> + CheckInvariants + Clone + Send + Sync + 'static,
{
    /// Starts a background propagation thread that sweeps the shard
    /// queues so producers almost never fold. Requires the engine in
    /// an [`Arc`] (the thread co-owns it). Several propagators may be
    /// attached; per-shard rounds still serialize on each shard's
    /// token.
    ///
    /// The returned [`PropagatorHandle`] stops and joins the thread on
    /// [`stop`](PropagatorHandle::stop) or drop, draining the queues
    /// on the way out so a stopped propagator never strands handed-off
    /// data. Producers detect the detachment and fall back to
    /// cooperative stealing — the engine keeps working through any
    /// kill/restart sequence.
    pub fn spawn_propagator(self: &Arc<Self>) -> PropagatorHandle {
        let engine = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        self.propagator_count.fetch_add(1, Ordering::AcqRel);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                if !engine.propagate_all() {
                    // Idle: nap briefly instead of spinning. Producers
                    // fold for themselves if a queue hits its depth
                    // bound before the next sweep.
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            // Drain on the way out: nothing handed off before the stop
            // is left to strand.
            while engine.propagate_all() {}
            engine.propagator_count.fetch_sub(1, Ordering::AcqRel);
        });
        PropagatorHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// A running background propagator (see
/// [`ShardedEngine::spawn_propagator`]). Dropping it stops and joins
/// the thread.
pub struct PropagatorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl PropagatorHandle {
    /// Signals the propagator to stop, waits for it to drain the
    /// queues and exit. Idempotent with drop.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PropagatorHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Folds summaries pairwise, level by level — the balanced merge tree.
/// Returns the fold and its depth (`⌈log₂ k⌉`). Balance keeps every
/// leaf at the same depth, which matters for summaries whose merge
/// guarantee degrades with *tree depth* rather than merge count; for
/// the fully-mergeable summaries in `sqs-core` it simply bounds
/// intermediate sizes.
///
/// # Panics
/// Panics if `layer` is empty.
pub fn merge_tree<T: Ord + Copy, S: MergeableSummary<T>>(mut layer: Vec<S>) -> (S, u32) {
    assert!(!layer.is_empty(), "merge_tree needs at least one summary");
    let mut depth = 0u32;
    while layer.len() > 1 {
        depth += 1;
        let prev = std::mem::take(&mut layer);
        layer.reserve(prev.len().div_ceil(2));
        let mut it = prev.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(b);
            }
            layer.push(a);
        }
    }
    let root = layer
        .pop()
        .expect("Engine invariant: merge tree reduces to one root");
    (root, depth)
}

/// A producer-side ingest buffer bound to one shard of a
/// [`ShardedEngine`].
///
/// `insert` appends to a buffer this handle *owns* — the hot path
/// performs no shared-state synchronization of any kind. When the
/// buffer reaches the engine's `batch_capacity` it is **handed off**
/// whole to the shard's propagation queue (one brief queue push; the
/// replacement buffer is a fresh allocation) and the producer
/// continues immediately — folding happens on the propagation stage.
/// Dropping the handle flushes the remainder *and waits for its
/// propagation*, so no element is ever lost and everything a dropped
/// handle ingested is visible to the next snapshot; call
/// [`flush`](Self::flush) explicitly to publish early.
///
/// Handles are cheap; create one per producer thread.
pub struct IngestHandle<'a, T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants + Clone,
{
    engine: &'a ShardedEngine<T, S>,
    shard: usize,
    buf: Vec<T>,
    /// Handoff sequence number of this handle's most recent handoff
    /// (0 before the first) — what `flush` waits on.
    last_seq: u64,
}

impl<T, S> IngestHandle<'_, T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants + Clone,
{
    /// Buffers one element, handing the buffer off to the propagation
    /// stage when it fills.
    #[inline]
    pub fn insert(&mut self, x: T) {
        self.buf.push(x);
        if self.buf.len() >= self.engine.batch_capacity {
            self.handoff();
        }
    }

    /// Buffers a slice, handing off at each capacity boundary.
    pub fn insert_slice(&mut self, xs: &[T]) {
        for &x in xs {
            self.insert(x);
        }
    }

    /// Hands the owned buffer to the shard's propagation queue and
    /// replaces it with a fresh one. Does not wait for the fold.
    fn handoff(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let full = std::mem::replace(
            &mut self.buf,
            Vec::with_capacity(self.engine.batch_capacity),
        );
        self.last_seq = self.engine.handoff(self.shard, full);
    }

    /// Publishes everything this handle has buffered **and waits until
    /// it is folded into the shard summaries** — after `flush`
    /// returns, every element inserted through this handle is visible
    /// to snapshots. The wait is cooperative: if no propagator is
    /// running, this thread folds the queue itself.
    pub fn flush(&mut self) {
        self.handoff();
        if self.last_seq > 0 {
            self.engine.wait_propagated(self.shard, self.last_seq);
        }
    }

    /// Index of the shard this handle feeds.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// Elements buffered in this handle and not yet handed off.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl<T, S> Drop for IngestHandle<'_, T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants + Clone,
{
    fn drop(&mut self) {
        self.flush();
    }
}

impl<T, S> CheckInvariants for ShardedEngine<T, S>
where
    T: Ord + Copy,
    S: MergeableSummary<T> + CheckInvariants + Clone,
{
    /// Engine-level invariants on top of each shard's own:
    ///
    /// * `engine.shard_structure` — at least one shard exists and the
    ///   batch capacity is positive (construction-time guarantees that
    ///   must survive);
    /// * every shard's `CheckInvariants`, live **and** published
    ///   (first violation wins);
    /// * `engine.mass_conservation` — the live shards' element counts
    ///   sum exactly to the engine's propagated-items counter: no fold
    ///   lost or double-counted an element;
    /// * `engine.queue_accounting` — per shard, the handed-off mass
    ///   sitting in the propagation queue matches the shard's
    ///   `queued_items` counter, and its completed-buffers counter
    ///   never exceeds its handoffs (checked only when the shard's
    ///   round token is free);
    /// * `engine.epoch_accounting` — the epoch equals the publication
    ///   count (checked only when every token is free);
    /// * `engine.cache_coherence` — a cached snapshot claiming the
    ///   current epoch carries exactly the propagated mass.
    ///
    /// Meaningful at quiescence (as the audit tests use it): counters
    /// race benignly while rounds are actively folding.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        ensure(
            !self.shards.is_empty() && self.batch_capacity > 0,
            "ShardedEngine",
            "engine.shard_structure",
            || {
                format!(
                    "shards = {}, batch_capacity = {}",
                    self.shards.len(),
                    self.batch_capacity
                )
            },
        )?;
        let mut shard_mass = 0u64;
        let mut all_tokens_free = true;
        for s in &self.shards {
            // Poison alone is not a violation — `lock_shard` recovers
            // from it by design; what matters is whether the summary's
            // own invariants survived the holder's panic, which the
            // audit below reports directly.
            let guard = s.live.lock().unwrap_or_else(PoisonError::into_inner);
            guard.check_invariants()?;
            shard_mass = shard_mass.saturating_add(guard.n());
            drop(guard);
            s.published().check_invariants()?;
            if s.token.load(Ordering::Acquire) {
                all_tokens_free = false;
                continue;
            }
            let queue_mass: u64 = s.lock_queue().iter().map(|h| h.data.len() as u64).sum();
            let queued = s.queued_items.load(Ordering::Acquire);
            ensure(
                queue_mass == queued,
                "ShardedEngine",
                "engine.queue_accounting",
                || format!("queue holds {queue_mass} elements but queued_items = {queued}"),
            )?;
            let (done, sent) = (
                s.completed.load(Ordering::Acquire),
                s.handoffs.load(Ordering::Acquire),
            );
            ensure(
                done <= sent,
                "ShardedEngine",
                "engine.queue_accounting",
                || format!("completed {done} buffers but only {sent} handed off"),
            )?;
        }
        let counted = self.items.load(Ordering::Acquire);
        ensure(
            shard_mass == counted,
            "ShardedEngine",
            "engine.mass_conservation",
            || format!("Σ shard.n() = {shard_mass} but items counter = {counted}"),
        )?;
        if all_tokens_free {
            let (epoch, pubs) = (
                self.epoch.load(Ordering::Acquire),
                self.propagations.load(Ordering::Acquire),
            );
            ensure(
                epoch == pubs,
                "ShardedEngine",
                "engine.epoch_accounting",
                || format!("epoch {epoch} but {pubs} publications at quiescence"),
            )?;
        }
        let cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cached) = cache.as_ref() {
            if cached.epoch == self.epoch.load(Ordering::Acquire) {
                let cached_n = cached.summary.n();
                ensure(
                    cached_n == counted,
                    "ShardedEngine",
                    "engine.cache_coherence",
                    || {
                        format!(
                            "cached snapshot at current epoch holds {cached_n} \
                             elements but items counter = {counted}"
                        )
                    },
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_core::qdigest::QDigest;
    use sqs_core::random::RandomSketch;
    use sqs_core::sampled::ReservoirQuantiles;
    use sqs_core::QuantileSummary;

    fn random_engine(shards: usize, cap: usize) -> ShardedEngine<u64, RandomSketch<u64>> {
        ShardedEngine::new_with(shards, cap, |i| RandomSketch::new(0.05, 100 + i as u64))
    }

    #[test]
    fn round_robin_assigns_all_shards() {
        let e = random_engine(4, 8);
        let seen: Vec<usize> = (0..8).map(|_| e.handle().shard_index()).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn drop_flushes_and_propagates_partial_buffer() {
        let e = random_engine(2, 1000);
        {
            let mut h = e.handle();
            for x in 0..7u64 {
                h.insert(x);
            }
            assert_eq!(h.buffered(), 7);
            assert_eq!(e.n(), 0, "nothing visible before flush");
        }
        assert_eq!(e.n(), 7, "drop hands off and waits for propagation");
        let stats = e.stats();
        assert_eq!(stats.handoffs, 1);
        assert_eq!(stats.propagations, 1);
        assert_eq!(stats.queued_items, 0);
        e.assert_invariants();
    }

    #[test]
    fn handoff_cadence_matches_batch_capacity() {
        let e = random_engine(1, 64);
        let mut h = e.handle_for(0);
        for x in 0..256u64 {
            h.insert(x);
        }
        assert_eq!(h.buffered(), 0);
        drop(h);
        let stats = e.stats();
        assert_eq!(stats.items, 256);
        assert_eq!(stats.handoffs, 4, "256 elements / 64 per buffer");
        assert_eq!(stats.propagated_buffers, 4);
        assert!(stats.propagations >= 1, "at least one round folded them");
        assert_eq!(stats.epoch, stats.propagations, "one tick per round");
    }

    #[test]
    fn epoch_ticks_once_per_publication() {
        let e = random_engine(2, 16);
        assert_eq!(e.epoch(), 0);
        e.ingest_batch(&[1, 2, 3]);
        assert_eq!(e.epoch(), 1, "one direct fold = one publication");
        let mut h = e.handle_for(1);
        h.insert_slice(&(0..64u64).collect::<Vec<_>>());
        h.flush();
        let stats = e.stats();
        assert!(stats.epoch >= 2, "epoch {}", stats.epoch);
        assert_eq!(stats.epoch, stats.propagations);
        e.assert_invariants();
    }

    #[test]
    fn snapshot_records_depth_and_latency() {
        for (shards, want_depth) in [(1usize, 0u32), (2, 1), (4, 2), (5, 3), (8, 3)] {
            let e = random_engine(shards, 32);
            let mut h = e.handle();
            for x in 0..100u64 {
                h.insert(x);
            }
            drop(h);
            let _ = e.snapshot();
            let stats = e.stats();
            assert_eq!(stats.snapshots, 1);
            assert_eq!(stats.last_merge_depth, want_depth, "shards = {shards}");
            assert!(stats.last_snapshot_nanos > 0);
        }
    }

    #[test]
    fn snapshot_sees_all_propagated_mass() {
        let e = random_engine(4, 16);
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..1_000u64 {
                h.insert(u64::try_from(t).expect("test invariant: t fits u64") * 1_000 + x);
            }
        }
        let mut snap = e.snapshot();
        assert_eq!(snap.n(), 4_000);
        assert_eq!(snap.n(), e.n());
        let q = snap.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_000) <= 200, "median {q}");
        e.assert_invariants();
    }

    #[test]
    fn snapshot_cache_hits_between_writes_and_invalidates_on_ingest() {
        let e = random_engine(4, 64);
        e.ingest_batch(&(0..4_000u64).collect::<Vec<_>>());
        let _ = e.snapshot();
        let s1 = e.stats();
        assert_eq!(s1.snapshots, 1);
        assert_eq!(s1.snapshot_cache_hits, 0);
        // Repeated reads between writes: all cache hits, no re-merge.
        let _ = e.quantile(0.5);
        let _ = e.quantiles(&[0.25, 0.5, 0.75]);
        let _ = e.rank_estimate(2_000);
        let s2 = e.stats();
        assert_eq!(s2.snapshots, 1, "no rebuild between writes");
        assert_eq!(s2.snapshot_cache_hits, 3);
        // A write bumps the epoch; the next read rebuilds.
        e.ingest_batch(&[9_999]);
        let _ = e.quantile(0.5);
        let s3 = e.stats();
        assert_eq!(s3.snapshots, 2, "epoch change invalidates the cache");
        e.assert_invariants();
    }

    #[test]
    fn quantile_and_rank_work_through_the_engine() {
        let e = ShardedEngine::new_with(3, 128, |_| QDigest::new(0.01, 20));
        let mut h = e.handle();
        for x in 0..10_000u64 {
            h.insert(x);
        }
        drop(h);
        let q = e.quantile(0.25).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_500) <= 100, "q1 {q}");
        let r = e.rank_estimate(5_000);
        assert!(r.abs_diff(5_000) <= 100, "rank {r}");
        assert!(e.quantile(0.5).is_some());
        e.assert_invariants();
    }

    #[test]
    fn reservoir_backend_engine_is_sound() {
        let e = ShardedEngine::new_with(4, 64, |i| {
            ReservoirQuantiles::with_capacity(2_000, 40 + i as u64)
        });
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..5_000u64 {
                h.insert(x);
            }
        }
        let mut snap = e.snapshot();
        assert_eq!(snap.n(), 20_000);
        let q = snap.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(2_500) <= 500, "median {q}");
        e.assert_invariants();
    }

    #[test]
    fn merge_tree_of_one_is_identity() {
        let mut s = RandomSketch::new(0.1, 1);
        for x in 0..100u64 {
            s.insert(x);
        }
        let (merged, depth) = merge_tree(vec![s]);
        assert_eq!(depth, 0);
        assert_eq!(merged.n(), 100);
    }

    #[test]
    fn mass_conservation_violation_is_named() {
        let e = random_engine(2, 16);
        let mut h = e.handle_for(0);
        for x in 0..64u64 {
            h.insert(x);
        }
        drop(h);
        e.assert_invariants();
        // Corrupt the propagated-items counter behind the shards' backs.
        e.items.fetch_add(5, Ordering::AcqRel);
        let err = e.check_invariants().expect_err("corruption must be caught");
        assert_eq!(err.invariant, "engine.mass_conservation");
        assert_eq!(err.algorithm, "ShardedEngine");
        e.items.fetch_sub(5, Ordering::AcqRel);
        // Corrupt the queue accounting the same way.
        let sh = e.shard(0);
        sh.queued_items.fetch_add(3, Ordering::AcqRel);
        let err = e
            .check_invariants()
            .expect_err("queue drift must be caught");
        assert_eq!(err.invariant, "engine.queue_accounting");
        sh.queued_items.fetch_sub(3, Ordering::AcqRel);
        // And the epoch/publication ledger.
        e.epoch.fetch_add(1, Ordering::AcqRel);
        let err = e
            .check_invariants()
            .expect_err("epoch drift must be caught");
        assert_eq!(err.invariant, "engine.epoch_accounting");
    }

    #[test]
    fn quantiles_sweep_matches_single_snapshot() {
        let e = random_engine(4, 64);
        for t in 0..4 {
            let mut h = e.handle_for(t);
            for x in 0..5_000u64 {
                h.insert(u64::try_from(t).expect("test invariant: t fits u64") * 5_000 + x);
            }
        }
        let phis = [0.1, 0.25, 0.5, 0.75, 0.9];
        let swept = e.quantiles(&phis);
        // One snapshot answers all ranks; the per-φ answers must agree
        // with reading the same snapshot directly.
        let mut snap = e.snapshot();
        let direct: Vec<Option<u64>> = phis.iter().map(|&p| snap.quantile(p)).collect();
        assert_eq!(swept, direct);
        // And repeat sweeps between writes never re-merge.
        let before = e.stats().snapshots;
        let _ = e.quantiles(&phis);
        assert_eq!(e.stats().snapshots, before, "cache hit, no rebuild");
        assert_eq!(e.quantiles(&[]), Vec::<Option<u64>>::new());
    }

    #[test]
    fn query_many_matches_separate_queries_on_one_snapshot() {
        use sqs_turnstile::TurnstileSummary;
        let e = ShardedEngine::new_with(2, 64, |_| TurnstileSummary::dcs(0.05, 16, 0xABC));
        e.ingest_batch(&(0..10_000u64).collect::<Vec<_>>());
        let phis = [0.9, 0.25, 0.5];
        let xs = [0u64, 2_500, 9_999, 70_000];
        let (quantiles, ranks) = e.query_many(&phis, &xs);
        assert_eq!(quantiles, e.quantiles(&phis));
        let direct_ranks: Vec<u64> = xs.iter().map(|&x| e.rank_estimate(x)).collect();
        assert_eq!(ranks, direct_ranks);
        // Degenerate shapes: either side may be empty.
        assert_eq!(e.query_many(&[], &[]), (Vec::new(), Vec::new()));
        let (q_only, r_empty) = e.query_many(&phis, &[]);
        assert_eq!(q_only.len(), 3);
        assert!(r_empty.is_empty());
    }

    #[test]
    fn ingest_batch_is_immediately_visible() {
        let e = random_engine(3, 16);
        let batch: Vec<u64> = (0..1_000).collect();
        e.ingest_batch(&batch);
        assert_eq!(e.n(), 1_000, "no engine-side buffering");
        e.ingest_batch(&[]);
        assert_eq!(e.stats().propagations, 1, "empty batches don't count");
        e.ingest_batch(&batch);
        assert_eq!(e.n(), 2_000);
        e.assert_invariants();
    }

    #[test]
    fn try_absorb_merges_and_conserves_mass() {
        let e = random_engine(2, 16);
        e.ingest_batch(&(0..4_000u64).collect::<Vec<_>>());
        let mut donor = RandomSketch::new(0.05, 999);
        for x in 4_000..8_000u64 {
            donor.insert(x);
        }
        e.try_absorb(donor).expect("same eps must merge");
        assert_eq!(e.n(), 8_000);
        e.assert_invariants(); // engine.mass_conservation holds
        let q = e.quantile(0.5).expect("test invariant: nonempty");
        assert!(q.abs_diff(4_000) <= 400, "median {q}");
    }

    #[test]
    fn try_absorb_rejects_incompatible_config() {
        let e = random_engine(2, 16);
        e.ingest_batch(&[1, 2, 3]);
        let epoch_before = e.epoch();
        let mut donor = RandomSketch::new(0.2, 7); // different eps
        donor.insert(9);
        let back = e.try_absorb(donor).expect_err("eps mismatch must bounce");
        assert_eq!(back.n(), 1, "donor returned untouched");
        assert_eq!(e.n(), 3, "engine untouched");
        assert_eq!(e.epoch(), epoch_before, "no epoch tick on rejection");
        let token_free = !e.shard(0).token.load(Ordering::Acquire);
        assert!(token_free, "token released");
        e.assert_invariants();
    }

    #[test]
    fn dcs_backend_shards_merge_exactly() {
        use sqs_turnstile::TurnstileSummary;
        // Same seed on every shard → identical hash draws → snapshot
        // merging is *exact*: the engine snapshot is state-identical
        // to one summary fed the whole stream directly.
        let seed = 0xD05;
        let e = ShardedEngine::new_with(4, 64, |_| TurnstileSummary::dcs(0.05, 16, seed));
        let mut direct = TurnstileSummary::dcs(0.05, 16, seed);
        let mut rng = sqs_util::rng::Xoshiro256pp::new(77);
        let data: Vec<u64> = (0..8_000).map(|_| rng.next_below(1 << 16)).collect();
        for chunk in data.chunks(250) {
            e.ingest_batch(chunk);
        }
        direct.insert_batch(&data);
        let snap = e.snapshot();
        assert_eq!(snap, direct, "sharded != direct");
        assert_eq!(e.n(), 8_000);
        e.assert_invariants();
    }

    #[test]
    fn poisoned_shard_is_recovered_and_counted() {
        let e = random_engine(2, 16);
        let mut h = e.handle_for(0);
        h.insert_slice(&(0..100u64).collect::<Vec<_>>());
        h.flush();
        // Kill a "propagator" while it holds shard 0: the unwind
        // poisons the shard mutex.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = e.lock_shard(0);
            panic!("propagating thread dies while holding shard 0");
        }));
        assert!(died.is_err());
        assert_eq!(e.stats().lock_recoveries, 0, "nothing recovered yet");
        // The next acquisition audits the summary, clears the poison,
        // and counts the recovery — then ingestion continues as if
        // nothing happened.
        h.insert_slice(&(100..200u64).collect::<Vec<_>>());
        h.flush();
        assert_eq!(e.stats().lock_recoveries, 1);
        assert_eq!(e.n(), 200, "no mass lost to the recovery");
        e.assert_invariants();
        // Poison was cleared: the recovery path ran once, not per lock.
        let _ = e.snapshot();
        assert!(e.quantile(0.5).is_some());
        assert_eq!(e.stats().lock_recoveries, 1);
    }

    #[test]
    fn token_guard_unwind_releases_the_token() {
        let e = random_engine(1, 16);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _token = e.acquire_token_blocking(0);
            panic!("propagator dies mid-round");
        }));
        assert!(died.is_err());
        let token_free = !e.shard(0).token.load(Ordering::Acquire);
        assert!(token_free, "unwind released the token");
        // The engine still ingests and snapshots normally.
        e.ingest_batch(&[1, 2, 3]);
        assert_eq!(e.n(), 3);
        e.assert_invariants();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock order")]
    fn out_of_order_shard_locks_panic_in_debug() {
        let e = random_engine(2, 16);
        let _hi = e.lock_shard(1);
        let _lo = e.lock_shard(0); // descending: OrderedMutex trips
    }

    #[cfg(debug_assertions)]
    #[test]
    fn ascending_shard_locks_are_legal() {
        let e = random_engine(3, 16);
        let _a = e.lock_shard(0);
        let _b = e.lock_shard(2); // ascending: the sanctioned exception
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::<u64, RandomSketch<u64>>::new_with(0, 8, |i| {
            RandomSketch::new(0.1, i as u64)
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn handle_for_checks_bounds() {
        let e = random_engine(2, 8);
        let _ = e.handle_for(2);
    }

    #[test]
    fn background_propagator_folds_without_producer_help() {
        let e = Arc::new(random_engine(2, 32));
        let prop = e.spawn_propagator();
        {
            let mut h = e.handle_for(0);
            for x in 0..10_000u64 {
                h.insert(x);
            }
            // Wait for the propagator to drain everything handed off
            // so far, without this thread ever stealing a round.
            let deadline = Instant::now() + Duration::from_secs(10);
            while e.stats().propagated_buffers < e.stats().handoffs {
                assert!(Instant::now() < deadline, "propagator never caught up");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(e.n() > 0, "propagator folded handed-off buffers");
        }
        prop.stop();
        assert_eq!(e.n(), 10_000);
        assert_eq!(e.stats().queued_items, 0, "stop drained the queues");
        e.assert_invariants();
    }
}
