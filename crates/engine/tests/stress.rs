//! Deterministic multi-thread stress tests for the sharded engine.
//!
//! Each configuration runs `threads == shards` producers, every thread
//! feeding a seeded, reproducible stream into its own pinned shard
//! (`handle_for`), so the merged multiset — and for randomized
//! summaries even each shard's rng consumption — is independent of
//! thread scheduling. After the threads join, the test rebuilds the
//! exact same streams single-threaded, computes true ranks with
//! `ExactQuantiles`, and asserts the engine's merged snapshot answers
//! every probe quantile within the *single-summary* ε bound — the
//! mergeability property the engine's soundness rests on (see
//! `docs/ENGINE.md`). Every post-merge snapshot is also run through the
//! invariant auditor.

use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_core::sampled::ReservoirQuantiles;
use sqs_core::{MergeableSummary, QuantileSummary};
use sqs_engine::ShardedEngine;
use sqs_util::audit::CheckInvariants;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::Xoshiro256pp;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PER_THREAD: usize = 50_000;
const BATCH: usize = 512;

/// The seeded stream thread `t` of a `shards`-way run produces.
/// Skewed on purpose: each thread draws from a different-width range so
/// shard summaries are *not* exchangeable and a broken merge (lost
/// shard, double-counted mass) shifts ranks detectably.
fn stream(shards: usize, t: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(0xE46_1000 + (shards * 100 + t) as u64);
    let width = 1u64 << (20 + (t % 4));
    (0..PER_THREAD).map(|_| rng.next_below(width)).collect()
}

/// Runs the engine concurrently, then checks the merged snapshot
/// against the exact oracle at the probe grid φ = ε, 2ε, …, 1−ε.
fn drive<S, F>(eps: f64, label: &str, make: F)
where
    S: MergeableSummary<u64> + CheckInvariants + Clone + Send,
    F: Fn(usize) -> S,
{
    for &shards in &SHARD_COUNTS {
        let engine = ShardedEngine::new_with(shards, BATCH, &make);
        std::thread::scope(|scope| {
            for t in 0..shards {
                let engine = &engine;
                scope.spawn(move || {
                    let mut h = engine.handle_for(t);
                    h.insert_slice(&stream(shards, t));
                });
            }
        });
        let expected_n = (shards * PER_THREAD) as u64;
        assert_eq!(engine.n(), expected_n, "{label}/{shards}: flushed mass");
        engine.assert_invariants();

        let mut snap = engine.snapshot();
        snap.assert_invariants();
        assert_eq!(snap.n(), expected_n, "{label}/{shards}: snapshot mass");

        let all: Vec<u64> = (0..shards).flat_map(|t| stream(shards, t)).collect();
        let oracle = ExactQuantiles::new(all);
        let mut max_err = 0.0f64;
        for phi in probe_phis(eps) {
            let ans = snap
                .quantile(phi)
                .expect("stress invariant: nonempty snapshot answers");
            max_err = max_err.max(oracle.quantile_error(phi, ans));
        }
        assert!(
            max_err <= eps,
            "{label}/{shards} shards: observed max rank error {max_err} > eps {eps}"
        );

        let stats = engine.stats();
        assert_eq!(stats.items, expected_n);
        assert_eq!(
            stats.flushes,
            (shards * PER_THREAD.div_ceil(BATCH)) as u64,
            "{label}/{shards}: each thread flushes ⌈{PER_THREAD}/{BATCH}⌉ times"
        );
        assert!(stats.snapshots >= 1);
        assert_eq!(
            stats.last_merge_depth,
            shards.ilog2() + u32::from(!shards.is_power_of_two())
        );
    }
}

#[test]
fn random_sketch_engine_holds_eps_across_shard_counts() {
    drive(0.05, "Random", |i| {
        RandomSketch::new(0.05, 0xA11CE + i as u64)
    });
}

#[test]
fn qdigest_engine_holds_eps_across_shard_counts() {
    // Universe 2^24 covers the widest per-thread range (2^23).
    drive(0.01, "QDigest", |_| QDigest::new(0.01, 24));
}

#[test]
fn reservoir_engine_stays_near_eps_across_shard_counts() {
    // Reservoir sampling is probabilistic (VC bound, not worst-case):
    // capacity 16/ε² gives failure probability well under 1% per
    // configuration, and the seeds are fixed.
    let eps = 0.05;
    drive(eps, "Reservoir", |i| {
        ReservoirQuantiles::with_capacity(6_400, 0xB0B + i as u64)
    });
}

/// Concurrent producers hammering the *same* shard via round-robin
/// handles: exercises lock contention and drop-flush under racing, and
/// checks mass conservation exactly (accuracy is covered above).
#[test]
fn contended_round_robin_conserves_mass() {
    let threads = 8usize;
    let engine = ShardedEngine::new_with(2, 64, |i| RandomSketch::new(0.05, 7 + i as u64));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut h = engine.handle();
                let mut rng = Xoshiro256pp::new(t as u64);
                for _ in 0..10_000 {
                    h.insert(rng.next_below(1 << 16));
                }
            });
        }
    });
    assert_eq!(engine.n(), (threads * 10_000) as u64);
    engine.assert_invariants();
    let snap = engine.snapshot();
    snap.assert_invariants();
    assert_eq!(snap.n(), engine.n());
}
