//! Deterministic multi-thread stress tests for the sharded engine.
//!
//! Each configuration runs `threads == shards` producers, every thread
//! feeding a seeded, reproducible stream into its own pinned shard
//! (`handle_for`), so the merged multiset — and for randomized
//! summaries even each shard's rng consumption — is independent of
//! thread scheduling. After the threads join, the test rebuilds the
//! exact same streams single-threaded, computes true ranks with
//! `ExactQuantiles`, and asserts the engine's merged snapshot answers
//! every probe quantile within the *single-summary* ε bound — the
//! mergeability property the engine's soundness rests on (see
//! `docs/ENGINE.md`). Every post-merge snapshot is also run through the
//! invariant auditor.

use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_core::sampled::ReservoirQuantiles;
use sqs_core::{MergeableSummary, QuantileSummary};
use sqs_engine::ShardedEngine;
use sqs_util::audit::CheckInvariants;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::Xoshiro256pp;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PER_THREAD: usize = 50_000;
const BATCH: usize = 512;

/// The seeded stream thread `t` of a `shards`-way run produces.
/// Skewed on purpose: each thread draws from a different-width range so
/// shard summaries are *not* exchangeable and a broken merge (lost
/// shard, double-counted mass) shifts ranks detectably.
fn stream(shards: usize, t: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(0xE46_1000 + (shards * 100 + t) as u64);
    let width = 1u64 << (20 + (t % 4));
    (0..PER_THREAD).map(|_| rng.next_below(width)).collect()
}

/// Runs the engine concurrently, then checks the merged snapshot
/// against the exact oracle at the probe grid φ = ε, 2ε, …, 1−ε.
fn drive<S, F>(eps: f64, label: &str, make: F)
where
    S: MergeableSummary<u64> + CheckInvariants + Clone + Send + Sync,
    F: Fn(usize) -> S,
{
    for &shards in &SHARD_COUNTS {
        let engine = ShardedEngine::new_with(shards, BATCH, &make);
        std::thread::scope(|scope| {
            for t in 0..shards {
                let engine = &engine;
                scope.spawn(move || {
                    let mut h = engine.handle_for(t);
                    h.insert_slice(&stream(shards, t));
                });
            }
        });
        let expected_n = (shards * PER_THREAD) as u64;
        assert_eq!(engine.n(), expected_n, "{label}/{shards}: flushed mass");
        engine.assert_invariants();

        let mut snap = engine.snapshot();
        snap.assert_invariants();
        assert_eq!(snap.n(), expected_n, "{label}/{shards}: snapshot mass");

        let all: Vec<u64> = (0..shards).flat_map(|t| stream(shards, t)).collect();
        let oracle = ExactQuantiles::new(all);
        let mut max_err = 0.0f64;
        for phi in probe_phis(eps) {
            let ans = snap
                .quantile(phi)
                .expect("stress invariant: nonempty snapshot answers");
            max_err = max_err.max(oracle.quantile_error(phi, ans));
        }
        assert!(
            max_err <= eps,
            "{label}/{shards} shards: observed max rank error {max_err} > eps {eps}"
        );

        let stats = engine.stats();
        assert_eq!(stats.items, expected_n);
        assert_eq!(
            stats.handoffs,
            (shards * PER_THREAD.div_ceil(BATCH)) as u64,
            "{label}/{shards}: each thread hands off ⌈{PER_THREAD}/{BATCH}⌉ buffers"
        );
        assert_eq!(
            stats.propagated_buffers, stats.handoffs,
            "{label}/{shards}: every handoff was folded"
        );
        assert_eq!(stats.queued_items, 0, "{label}/{shards}: queues drained");
        assert!(stats.snapshots >= 1);
        assert_eq!(
            stats.last_merge_depth,
            shards.ilog2() + u32::from(!shards.is_power_of_two())
        );
    }
}

#[test]
fn random_sketch_engine_holds_eps_across_shard_counts() {
    drive(0.05, "Random", |i| {
        RandomSketch::new(0.05, 0xA11CE + i as u64)
    });
}

#[test]
fn qdigest_engine_holds_eps_across_shard_counts() {
    // Universe 2^24 covers the widest per-thread range (2^23).
    drive(0.01, "QDigest", |_| QDigest::new(0.01, 24));
}

#[test]
fn reservoir_engine_stays_near_eps_across_shard_counts() {
    // Reservoir sampling is probabilistic (VC bound, not worst-case):
    // capacity 16/ε² gives failure probability well under 1% per
    // configuration, and the seeds are fixed.
    let eps = 0.05;
    drive(eps, "Reservoir", |i| {
        ReservoirQuantiles::with_capacity(6_400, 0xB0B + i as u64)
    });
}

/// Concurrent producers hammering the *same* shard via round-robin
/// handles: exercises lock contention and drop-flush under racing, and
/// checks mass conservation exactly (accuracy is covered above).
#[test]
fn contended_round_robin_conserves_mass() {
    let threads = 8usize;
    let engine = ShardedEngine::new_with(2, 64, |i| RandomSketch::new(0.05, 7 + i as u64));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut h = engine.handle();
                let mut rng = Xoshiro256pp::new(t as u64);
                for _ in 0..10_000 {
                    h.insert(rng.next_below(1 << 16));
                }
            });
        }
    });
    assert_eq!(engine.n(), (threads * 10_000) as u64);
    engine.assert_invariants();
    let snap = engine.snapshot();
    snap.assert_invariants();
    assert_eq!(snap.n(), engine.n());
}

/// Adversarial handoff sizes: batch capacities chosen to never divide
/// the stream lengths (primes, 1, capacity > stream), plus interleaved
/// explicit flushes, so partial buffers, empty-flush calls, and
/// capacity-boundary handoffs all hit. Mass conservation must be exact
/// and `CheckInvariants` clean at every quiescent point.
#[test]
fn adversarial_buffer_sizes_conserve_mass() {
    for &cap in &[1usize, 3, 127, 257, 1023, 60_001] {
        let engine = ShardedEngine::new_with(3, cap, |i| RandomSketch::new(0.05, 31 + i as u64));
        let mut expected = 0u64;
        for t in 0..3usize {
            let data = stream(3, t);
            let mut h = engine.handle_for(t);
            // Flush at awkward interior points, including back-to-back
            // flushes with nothing buffered.
            for (i, chunk) in data.chunks(997).enumerate() {
                h.insert_slice(chunk);
                if i % 3 == 0 {
                    h.flush();
                    h.flush();
                }
            }
            expected += data.len() as u64;
        }
        assert_eq!(engine.n(), expected, "cap {cap}: mass conserved");
        engine.assert_invariants();
        let stats = engine.stats();
        assert_eq!(stats.queued_items, 0, "cap {cap}: queues drained");
        assert_eq!(stats.propagated_buffers, stats.handoffs, "cap {cap}");
    }
}

/// Readers snapshotting *while* producers ingest and rounds propagate:
/// every mid-flight snapshot must be internally sound (audited), carry
/// a plausible prefix mass, and answer ranks monotonically; after the
/// producers join, the final answers must match the oracle within ε.
#[test]
fn snapshots_mid_propagation_are_sound() {
    let eps = 0.05;
    let engine = ShardedEngine::new_with(4, 257, |i| RandomSketch::new(eps, 0x51A9 + i as u64));
    let total: u64 = 4 * PER_THREAD as u64;
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let engine = &engine;
            scope.spawn(move || {
                let mut h = engine.handle_for(t);
                h.insert_slice(&stream(4, t));
            });
        }
        // Reader thread: hammer snapshots while ingestion runs.
        let engine = &engine;
        scope.spawn(move || {
            let mut last_n = 0u64;
            while engine.n() < total {
                let mut snap = engine.snapshot();
                snap.assert_invariants();
                let n = snap.n();
                assert!(n >= last_n, "published mass went backwards: {last_n} → {n}");
                assert!(n <= total, "snapshot mass {n} exceeds stream total {total}");
                if n > 0 {
                    let med = snap
                        .quantile(0.5)
                        .expect("stress invariant: nonempty snapshot answers");
                    let _ = snap.rank_estimate(med);
                }
                last_n = n;
            }
        });
    });
    engine.assert_invariants();
    let all: Vec<u64> = (0..4).flat_map(|t| stream(4, t)).collect();
    let oracle = ExactQuantiles::new(all);
    let mut snap = engine.snapshot();
    for phi in probe_phis(eps) {
        let ans = snap
            .quantile(phi)
            .expect("stress invariant: nonempty snapshot answers");
        assert!(
            oracle.quantile_error(phi, ans) <= eps,
            "mid-propagation run drifted at phi {phi}"
        );
    }
    let stats = engine.stats();
    assert!(stats.snapshots >= 1);
    assert_eq!(stats.snapshots_torn, 0, "quiescent final snapshot torn");
}

/// Kill/restart of the background propagator mid-stream: producers
/// must fall back to cooperative folding while no propagator is
/// attached, a restarted propagator must pick the queues back up, and
/// no handed-off buffer may be lost across either transition.
#[test]
fn propagator_kill_restart_loses_nothing() {
    use std::sync::Arc;
    let eps = 0.05;
    let engine = Arc::new(ShardedEngine::new_with(2, 64, |i| {
        RandomSketch::new(eps, 0xDEAD + i as u64)
    }));
    let data_a = stream(2, 0);
    let data_b = stream(2, 1);

    // Phase 1: ingest under a live propagator.
    let prop = engine.spawn_propagator();
    let mut h = engine.handle_for(0);
    h.insert_slice(&data_a);
    // Kill it mid-stream (drop = stop + join + drain).
    prop.stop();
    assert_eq!(
        engine.stats().queued_items,
        0,
        "stopped propagator drained its queues"
    );

    // Phase 2: no propagator attached — cooperative stealing carries.
    h.insert_slice(&data_b);
    h.flush();
    assert_eq!(engine.n(), (data_a.len() + data_b.len()) as u64);
    engine.assert_invariants();

    // Phase 3: restart; a fresh propagator serves new traffic.
    let prop = engine.spawn_propagator();
    let mut h2 = engine.handle_for(1);
    h2.insert_slice(&data_a);
    drop(h2);
    prop.stop();
    let expected = (2 * data_a.len() + data_b.len()) as u64;
    assert_eq!(engine.n(), expected, "no mass lost across kill/restart");
    engine.assert_invariants();

    // Accuracy survived the churn.
    let mut all = data_a.clone();
    all.extend_from_slice(&data_b);
    all.extend_from_slice(&data_a);
    let oracle = ExactQuantiles::new(all);
    let mut snap = engine.snapshot();
    for phi in probe_phis(eps) {
        let ans = snap
            .quantile(phi)
            .expect("stress invariant: nonempty snapshot answers");
        assert!(
            oracle.quantile_error(phi, ans) <= eps,
            "kill/restart run drifted at phi {phi}"
        );
    }
}
