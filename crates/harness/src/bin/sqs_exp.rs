//! `sqs-exp` — regenerate any table or figure of the paper's
//! evaluation section.
//!
//! ```text
//! sqs-exp <experiment|all> [--n N] [--trials T] [--seed S]
//!         [--out DIR] [--max-stream-len N] [--quick]
//! ```
//!
//! Experiments: fig4 fig5 fig6 fig7 fig8 tab34 fig9 fig10 fig11 fig12
//! xcompare ablation claims engine turnstile-perf (see DESIGN.md §2
//! for what each reproduces; `engine` and `turnstile-perf` are
//! implementation baselines, not paper figures). `--quick` shrinks the
//! throughput experiments to CI scale. `sqs-exp plot <figure>` renders
//! a previously-written CSV as an ASCII chart.
//! Defaults are laptop-scale; raise `--n`/`--trials` toward paper
//! scale (n = 10⁷–10¹⁰, 100 trials) as time permits.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Instant;

use sqs_harness::experiments::{self, ExpConfig, ALL_EXPERIMENTS};

fn usage() -> String {
    format!(
        "usage: sqs-exp <experiment|all> [--n N] [--trials T] [--seed S] [--out DIR] [--max-stream-len N] [--quick]\n\
         experiments: {} all",
        ALL_EXPERIMENTS.join(" ")
    )
}

fn parse_args() -> Result<(Vec<String>, ExpConfig), String> {
    let mut cfg = ExpConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => {
                cfg.n = args
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
            }
            "--trials" => {
                cfg.trials = args
                    .next()
                    .ok_or("--trials needs a value")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                cfg.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => {
                cfg.out_dir = args.next().ok_or("--out needs a value")?.into();
            }
            "--max-stream-len" => {
                cfg.max_stream_len = args
                    .next()
                    .ok_or("--max-stream-len needs a value")?
                    .parse()
                    .map_err(|e| format!("--max-stream-len: {e}"))?;
            }
            "--quick" => cfg.quick = true,
            "--help" | "-h" => return Err(usage()),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if ids.is_empty() {
        return Err(usage());
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            return Err(format!("unknown experiment {id}\n{}", usage()));
        }
    }
    Ok((ids, cfg))
}

fn main() -> ExitCode {
    // Plot mode: `sqs-exp plot <figure> [--out DIR]`.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("plot") {
        let Some(fig) = argv.get(2) else {
            eprintln!("usage: sqs-exp plot <figure> [--out DIR]");
            return ExitCode::FAILURE;
        };
        let dir = argv
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| argv.get(i + 1))
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| "results".into());
        return match sqs_harness::plot::plot_by_id(&dir, fig, 100, 28) {
            Ok(rendered) => {
                println!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let (ids, cfg) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "# streaming-quantiles experiment runner — n={}, trials={}, seed={}, out={}",
        cfg.n,
        cfg.trials,
        cfg.seed,
        cfg.out_dir.display()
    );
    for id in &ids {
        let t0 = Instant::now();
        println!("\n### running {id} ...");
        let tables = experiments::run(id, &cfg);
        for table in &tables {
            if let Err(e) = table.emit(&cfg.out_dir) {
                eprintln!("failed writing {}: {e}", table.id);
                return ExitCode::FAILURE;
            }
        }
        println!("### {id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
