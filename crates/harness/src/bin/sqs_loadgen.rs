//! `sqs-loadgen` — the load generator for the quantile service.
//!
//! Drives N client connections over loopback: each thread streams
//! `INSERT_BATCH` frames and periodically samples `QUERY_QUANTILES`
//! latency (raw nanosecond samples, exact quantiles — the server's own
//! histogram is log₂-bucketed). After the timed run it verifies the
//! cross-server merge path end-to-end: `SNAPSHOT` from the loaded
//! server, `MERGE_SNAPSHOT` into a second fresh server, and a
//! rank-identical comparison of both servers' answers over the socket.
//!
//! Results land as hand-rolled JSON in
//! `results/service_baseline.json` (override with `--out`).
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — attack an already-running server; default is
//!   an in-process server on an ephemeral loopback port. The
//!   cross-server verification spawns a Random-backend destination, so
//!   the target server must use the Random backend too (the `sqs-serve`
//!   default) — a q-digest target fails the merge with a kind
//!   mismatch, by design.
//! * `--clients N` — connection/thread count (default `4`).
//! * `--secs F` — timed run length in seconds (default `5`).
//! * `--batch N` — values per `INSERT_BATCH` frame (default `4096`).
//! * `--eps F` — accuracy of the in-process server (default `0.01`).
//! * `--seed N` — stream seed (default `42`).
//! * `--out PATH` — output JSON path.
//! * `--query-mix N` — interleave one `QUERY_MANY` (a φ-sweep plus a
//!   rank sweep in one frame) per `N` `INSERT_BATCH` frames instead of
//!   the default sparse `QUERY_QUANTILES` sampling, and report the
//!   query path's p50/p99 from the server's own `STATS` histograms
//!   alongside the client-side raw samples. `0` (the default) keeps
//!   the insert-heavy profile.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqs_core::random::RandomSketch;
use sqs_service::server::{spawn, ServerConfig, ServerHandle};
use sqs_service::Client;
use sqs_util::rng::{SplitMix64, Xoshiro256pp};

const QUERY_EVERY: u64 = 64; // one latency-sampled query per this many insert batches
const PROBE_PHIS: [f64; 5] = [0.01, 0.25, 0.5, 0.75, 0.99];
/// Rank probes for the `--query-mix` `QUERY_MANY` frames (spread over
/// the loadgen's `2^24` value universe).
const PROBE_XS: [u64; 3] = [1 << 20, 1 << 22, 1 << 23];

struct Args {
    addr: Option<String>,
    clients: usize,
    secs: f64,
    batch: usize,
    eps: f64,
    seed: u64,
    out: String,
    query_mix: u64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        clients: 4,
        secs: 5.0,
        batch: 4096,
        eps: 0.01,
        seed: 42,
        out: "results/service_baseline.json".to_owned(),
        query_mix: 0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let val = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => args.addr = Some(val.clone()),
            "--clients" => args.clients = val.parse().map_err(|e| format!("--clients: {e}"))?,
            "--secs" => args.secs = val.parse().map_err(|e| format!("--secs: {e}"))?,
            "--batch" => args.batch = val.parse().map_err(|e| format!("--batch: {e}"))?,
            "--eps" => args.eps = val.parse().map_err(|e| format!("--eps: {e}"))?,
            "--seed" => args.seed = val.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = val.clone(),
            "--query-mix" => {
                args.query_mix = val.parse().map_err(|e| format!("--query-mix: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other:?}\nusage: sqs-loadgen [--addr HOST:PORT] [--clients N] \
                     [--secs F] [--batch N] [--eps F] [--seed N] [--out PATH] [--query-mix N]"
                ))
            }
        }
    }
    if args.clients == 0 || args.batch == 0 || args.secs <= 0.0 || args.secs.is_nan() {
        return Err("--clients, --batch and --secs must be positive".to_owned());
    }
    Ok(args)
}

/// What one client thread measured.
struct ThreadResult {
    rows: u64,
    batches: u64,
    busy: u64,
    query_nanos: Vec<u64>,
}

/// One client thread: stream insert batches, sample query latency.
fn drive(
    addr: &str,
    tenant: u64,
    thread: usize,
    args: &Args,
    stop: &AtomicBool,
) -> Result<ThreadResult, String> {
    let mut client = Client::connect(addr, Duration::from_secs(10))
        .map_err(|e| format!("client {thread}: connect: {e}"))?;
    let mut rng = Xoshiro256pp::new(args.seed ^ (0x10ad + thread as u64));
    let mut batch = vec![0u64; args.batch];
    let mut res = ThreadResult {
        rows: 0,
        batches: 0,
        busy: 0,
        query_nanos: Vec::with_capacity(4096),
    };
    while !stop.load(Ordering::Relaxed) {
        for slot in &mut batch {
            *slot = rng.next_below(1 << 24);
        }
        match client.insert_batch(tenant, &batch) {
            Ok(_) => {
                res.rows += batch.len() as u64;
                res.batches += 1;
            }
            Err(sqs_service::ClientError::Busy(_)) => {
                // Shed under backpressure: reconnect with a tiny backoff.
                res.busy += 1;
                std::thread::sleep(Duration::from_millis(2));
                client = Client::connect(addr, Duration::from_secs(10))
                    .map_err(|e| format!("client {thread}: reconnect: {e}"))?;
            }
            Err(e) => return Err(format!("client {thread}: insert: {e}")),
        }
        // In query-mix mode every N-th frame is a combined QUERY_MANY
        // sweep; otherwise sparse QUERY_QUANTILES latency sampling.
        let period = if args.query_mix > 0 {
            args.query_mix
        } else {
            QUERY_EVERY
        };
        if res.batches.is_multiple_of(period) {
            let started = Instant::now();
            if args.query_mix > 0 {
                client
                    .query_many(tenant, &PROBE_PHIS, &PROBE_XS)
                    .map_err(|e| format!("client {thread}: query many: {e}"))?;
            } else {
                client
                    .query_quantiles(tenant, &PROBE_PHIS)
                    .map_err(|e| format!("client {thread}: query: {e}"))?;
            }
            res.query_nanos
                .push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
    Ok(res)
}

/// Exact quantile of raw samples (sorted in place).
fn sample_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // ^ audited: q is clamped to [0, 1] first, so the product is a
    // non-negative index within `sorted` (and `.min()` re-caps it).
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted.get(idx.min(sorted.len() - 1)).copied().unwrap_or(0)
}

/// `SNAPSHOT` the loaded tenant from `src_addr`, `MERGE_SNAPSHOT` it
/// into a fresh server, and require both servers to answer a probe
/// sweep rank-identically over the socket.
fn verify_cross_server_merge(src_addr: &str, eps: f64, seed: u64) -> Result<(), String> {
    let tenant = 1u64;
    let mut src = Client::connect(src_addr, Duration::from_secs(10))
        .map_err(|e| format!("verify: connect source: {e}"))?;
    let frame = src
        .snapshot(tenant)
        .map_err(|e| format!("verify: snapshot: {e}"))?;

    let dst_handle = spawn_local(eps, seed).map_err(|e| format!("verify: spawn dest: {e}"))?;
    let dst_addr = dst_handle.addr().to_string();
    let mut dst = Client::connect(&dst_addr, Duration::from_secs(10))
        .map_err(|e| format!("verify: connect dest: {e}"))?;
    let merged_n = dst
        .merge_snapshot(tenant, frame)
        .map_err(|e| format!("verify: merge snapshot: {e}"))?
        .n;
    if merged_n == 0 {
        return Err("verify: merged snapshot carried no mass".to_owned());
    }

    let phis: Vec<f64> = (1..100).map(|i| f64::from(i) / 100.0).collect();
    let a = src
        .query_quantiles(tenant, &phis)
        .map_err(|e| format!("verify: source query: {e}"))?;
    let b = dst
        .query_quantiles(tenant, &phis)
        .map_err(|e| format!("verify: dest query: {e}"))?;
    if a != b {
        return Err(
            "verify: snapshot-merged server answers differ from the source server".to_owned(),
        );
    }
    dst_handle.shutdown();
    dst_handle.join();
    Ok(())
}

/// Extracts an integer field from the STATS JSON by key, wherever it
/// appears (the document is flat enough that keys are unique). Hand
/// parsing, same reason the writer is hand-rolled: no serde offline.
fn json_u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json.get(at..)?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts a float field from one op's object in the STATS `ops`
/// section (e.g. `op = "query_many"`, `key = "p99_us"`). The per-op
/// latency fields are the one place the STATS JSON carries decimals,
/// so [`json_u64_field`] cannot read them.
fn json_op_f64_field(json: &str, op: &str, key: &str) -> Option<f64> {
    let obj_at = json.find(&format!("\"{op}\":"))?;
    let obj = json.get(obj_at..)?;
    let obj = obj.get(..obj.find('}')?)?;
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj.get(at..)?.trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Prints the query path's service-time quantiles as the *server*
/// measured them (log₂-bucketed `STATS` histograms — ≤2× relative
/// error, vs. the client's exact-but-RTT-inclusive raw samples).
fn report_query_histogram(addr: &str, op: &str) {
    let Ok(mut client) = Client::connect(addr, Duration::from_secs(10)) else {
        eprintln!("stats: cannot connect for the {op} histogram");
        return;
    };
    let Ok(json) = client.stats() else {
        eprintln!("stats: STATS failed");
        return;
    };
    let field = |k| json_op_f64_field(&json, op, k);
    match (field("count"), field("p50_us"), field("p99_us")) {
        (Some(count), Some(p50), Some(p99)) => {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // ^ audited: `count` is a non-negative integer printed by
            // the server; the cast only drops the synthetic `.0`.
            let count = count as u64;
            eprintln!("server histogram: {op} count={count} p50={p50:.1}us p99={p99:.1}us");
        }
        _ => eprintln!("stats: no {op} histogram in the STATS reply"),
    }
}

/// Pulls the server's own end-of-run ledger over the `STATS` op and
/// prints the durability and windowing counters a soak run should eye:
/// WAL sequence gaps (forward jumps tolerated during recovery) and the
/// window ring's late/rotation/rollup tallies. Sections absent from
/// the JSON (server not durable / not windowed) are reported as such.
fn report_server_ledger(addr: &str) {
    let mut client = match Client::connect(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ledger: cannot connect for STATS: {e}");
            return;
        }
    };
    let json = match client.stats() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("ledger: STATS failed: {e}");
            return;
        }
    };
    match json_u64_field(&json, "seq_gaps") {
        Some(gaps) => eprintln!("server ledger: store seq_gaps={gaps}"),
        None => eprintln!("server ledger: store: not durable (no --data-dir)"),
    }
    if json.contains("\"window\"") {
        let field = |k| json_u64_field(&json, k).unwrap_or(0);
        eprintln!(
            "server ledger: window late_dropped={} buckets_rotated={} rollup_hits={}",
            field("late_dropped"),
            field("buckets_rotated"),
            field("rollup_hits"),
        );
    } else {
        eprintln!("server ledger: window: disabled (no --window-bucket-secs)");
    }
}

/// An in-process server with the Random backend on an ephemeral port.
fn spawn_local(eps: f64, seed: u64) -> std::io::Result<ServerHandle<RandomSketch<u64>>> {
    spawn(ServerConfig::default(), move |tenant, shard| {
        let mut sm =
            SplitMix64::new(seed ^ tenant.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ shard as u64);
        RandomSketch::new(eps, sm.next_u64())
    })
}

#[allow(clippy::too_many_lines)]
// ^ audited: linear CLI dispatch — parse, spawn, drive phases, report;
// splitting it would just scatter the one-shot control flow.
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Attack an external server if given one, else host our own.
    let local = if args.addr.is_none() {
        match spawn_local(args.eps, args.seed) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("cannot start in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = args
        .addr
        .clone()
        .or_else(|| local.as_ref().map(|h| h.addr().to_string()))
        .unwrap_or_default();

    eprintln!(
        "loadgen: {} clients x {}-value batches against {addr} for {:.1}s",
        args.clients, args.batch, args.secs
    );
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let results: Vec<Result<ThreadResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|t| {
                let stop = Arc::clone(&stop);
                let addr = &addr;
                let args = &args;
                scope.spawn(move || drive(addr, 1, t, args, &stop))
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(args.secs));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err("client thread panicked".to_owned()),
            })
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut rows = 0u64;
    let mut batches = 0u64;
    let mut busy = 0u64;
    let mut query_nanos: Vec<u64> = Vec::new();
    for r in results {
        match r {
            Ok(t) => {
                rows += t.rows;
                batches += t.batches;
                busy += t.busy;
                query_nanos.extend(t.query_nanos);
            }
            Err(msg) => {
                eprintln!("loadgen failed: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    query_nanos.sort_unstable();
    let inserts_per_sec = rows as f64 / elapsed;

    if let Err(msg) = verify_cross_server_merge(&addr, args.eps, args.seed ^ 0xD157) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    eprintln!("cross-server snapshot/merge: rank-identical over the socket");
    report_server_ledger(&addr);
    if args.query_mix > 0 {
        report_query_histogram(&addr, "query_many");
    }

    if let Some(h) = local {
        h.shutdown();
        h.join();
    }

    let mut json = String::with_capacity(1024);
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"service_baseline\",");
    let _ = writeln!(json, "  \"clients\": {},", args.clients);
    let _ = writeln!(json, "  \"batch\": {},", args.batch);
    let _ = writeln!(json, "  \"eps\": {},", args.eps);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"elapsed_secs\": {elapsed:.3},");
    let _ = writeln!(json, "  \"insert_rows\": {rows},");
    let _ = writeln!(json, "  \"insert_batches\": {batches},");
    let _ = writeln!(json, "  \"inserts_per_sec\": {inserts_per_sec:.1},");
    let _ = writeln!(json, "  \"busy_sheds\": {busy},");
    let _ = writeln!(json, "  \"query_mix\": {},", args.query_mix);
    let _ = writeln!(
        json,
        "  \"query_op\": \"{}\",",
        if args.query_mix > 0 {
            "query_many"
        } else {
            "query_quantiles"
        }
    );
    let _ = writeln!(json, "  \"query_samples\": {},", query_nanos.len());
    let _ = writeln!(
        json,
        "  \"query_latency_us\": {{\"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}}},",
        sample_quantile(&query_nanos, 0.50) as f64 / 1e3,
        sample_quantile(&query_nanos, 0.99) as f64 / 1e3,
        sample_quantile(&query_nanos, 0.999) as f64 / 1e3,
    );
    let _ = writeln!(json, "  \"cross_server_merge\": \"rank-identical\"");
    json.push_str("}\n");

    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "loadgen: {:.2}M inserts/s, query p99 {:.1}us -> {}",
        inserts_per_sec / 1e6,
        sample_quantile(&query_nanos, 0.99) as f64 / 1e3,
        args.out
    );
    print!("{json}");
    ExitCode::SUCCESS
}
