//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **GKArray buffer sizing** — §2.1.2 sizes the buffer Θ(|L|);
//!    sweep the factor to show both the amortization win and its
//!    diminishing returns.
//! 2. **Post frontier fallback** — our rank walk estimates the
//!    sub-frontier remainder from the raw sketches; the alternative
//!    (discard it, leaning on Lemma 1) is measurably worse, which
//!    justifies the choice.
//! 3. **RSS vs DCM vs DCS** — why the paper dropped the random
//!    subset-sum sketch: quadratic space at equal error.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_turnstile_cell, TurnstileAlgo};
use sqs_core::{gk::GkArray, QuantileSummary};
use sqs_data::Uniform;
use sqs_turnstile::{
    new_dcs,
    post::{FrontierMode, VarianceMode},
    PostProcessed, TurnstileQuantiles,
};
use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
use sqs_util::SpaceUsage;
use std::time::Instant;

/// Runs all four ablations.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    vec![
        buffer_factor(cfg),
        frontier(cfg),
        variance_mode(cfg),
        rss(cfg),
    ]
}

/// Post variance-mode ablation: per-cell `(F₂ − f̂²)/w` (ours) vs the
/// paper's per-level `F₂/w`, on mildly and heavily skewed data. On
/// heavy skew the per-level mode can be *worse than raw DCS*; the
/// per-cell mode is safe in both regimes.
fn variance_mode(cfg: &ExpConfig) -> Table {
    use sqs_util::rng::Xoshiro256pp;
    let eps = 0.01;
    let mut t = Table::new(
        "ablation_post_variance",
        "Post variance mode: per-cell (ours) vs per-level (paper)",
        &[
            "dataset",
            "raw_avg_err",
            "per_cell_avg_err",
            "per_level_avg_err",
        ],
    );
    let mut rng = Xoshiro256pp::new(cfg.seed ^ 0xAB3);
    let mild: Vec<u64> = (0..cfg.n)
        .map(|_| 4_000_000 + rng.next_below(1 << 21) + rng.next_below(1 << 21))
        .collect();
    // Mice/elephants: 95% of mass in a tiny band, 5% spread wide.
    let skewed: Vec<u64> = (0..cfg.n)
        .map(|_| {
            if rng.next_f64() < 0.95 {
                40 + rng.next_below(1_500)
            } else {
                rng.next_below(1 << 24)
            }
        })
        .collect();
    for (name, data) in [("mild-normal", mild), ("mice-elephants", skewed)] {
        let oracle = ExactQuantiles::new(data.clone());
        let phis = probe_phis(eps);
        let mut dcs = new_dcs(eps, 24, cfg.seed ^ 0xAB4);
        for &x in &data {
            dcs.insert(x);
        }
        let score = |answers: Vec<(f64, u64)>| observed_errors(&oracle, &answers).1;
        let raw = score(
            phis.iter()
                .map(|&p| {
                    (
                        p,
                        dcs.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect(),
        );
        let per_cell = {
            let post = PostProcessed::with_options(
                &dcs,
                eps,
                0.1,
                FrontierMode::Interpolate,
                VarianceMode::PerCell,
            );
            score(
                phis.iter()
                    .map(|&p| {
                        (
                            p,
                            post.quantile(p).expect(
                                "harness invariant: summary nonempty after feeding the stream",
                            ),
                        )
                    })
                    .collect(),
            )
        };
        let per_level = {
            let post = PostProcessed::with_options(
                &dcs,
                eps,
                0.1,
                FrontierMode::Interpolate,
                VarianceMode::PerLevel,
            );
            score(
                phis.iter()
                    .map(|&p| {
                        (
                            p,
                            post.quantile(p).expect(
                                "harness invariant: summary nonempty after feeding the stream",
                            ),
                        )
                    })
                    .collect(),
            )
        };
        t.push_row(vec![
            name.into(),
            fnum(raw),
            fnum(per_cell),
            fnum(per_level),
        ]);
    }
    t
}

fn buffer_factor(cfg: &ExpConfig) -> Table {
    let eps = if cfg.n >= 100_000 { 0.001 } else { 0.01 };
    let data: Vec<u64> = Uniform::new(32, cfg.seed).take(cfg.n).collect();
    let oracle = ExactQuantiles::new(data.clone());
    let phis = probe_phis(eps);
    let mut t = Table::new(
        "ablation_gkarray_buffer",
        "GKArray buffer factor ablation (Uniform u=2^32)",
        &["buffer_factor", "update_ns", "space_kb", "max_err"],
    );
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut s = GkArray::with_buffer_factor(eps, factor);
        let t0 = Instant::now();
        for &x in &data {
            s.insert(x);
        }
        let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
        let answers: Vec<(f64, u64)> = phis
            .iter()
            .map(|&p| {
                (
                    p,
                    s.quantile(p)
                        .expect("harness invariant: summary nonempty after feeding the stream"),
                )
            })
            .collect();
        let (max_err, _) = observed_errors(&oracle, &answers);
        t.push_row(vec![
            fnum(factor),
            fnum(ns),
            fkb(s.space_bytes()),
            fnum(max_err),
        ]);
    }
    t
}

fn frontier(cfg: &ExpConfig) -> Table {
    let eps = 0.01;
    let data: Vec<u64> = Uniform::new(24, cfg.seed).take(cfg.n).collect();
    let oracle = ExactQuantiles::new(data.clone());
    let phis = probe_phis(eps);
    let mut t = Table::new(
        "ablation_post_frontier",
        "Post sub-frontier mode ablation (Uniform u=2^24)",
        &["eta", "mode", "avg_err"],
    );
    let mut dcs = new_dcs(eps, 24, cfg.seed ^ 0xAB1);
    for &x in &data {
        dcs.insert(x);
    }
    for eta in [0.5, 0.1, 0.02] {
        for (name, mode) in [
            ("interpolate", FrontierMode::Interpolate),
            ("raw", FrontierMode::Raw),
            ("discard", FrontierMode::Discard),
        ] {
            let post = PostProcessed::with_options(&dcs, eps, eta, mode, VarianceMode::PerCell);
            let answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        post.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (_, avg_err) = observed_errors(&oracle, &answers);
            t.push_row(vec![fnum(eta), name.to_string(), fnum(avg_err)]);
        }
    }
    t
}

fn rss(cfg: &ExpConfig) -> Table {
    // RSS and DGM only fit in memory at coarse ε and a small universe —
    // which is itself the result.
    let eps = 0.05;
    let n = cfg.n.min(200_000);
    let data: Vec<u64> = Uniform::new(16, cfg.seed).take(n).collect();
    let mut t = Table::new(
        "ablation_rss",
        "RSS/DGM vs DCM vs DCS at eps=0.05, u=2^16 (why the paper dropped them)",
        &["algo", "space_kb", "avg_err", "update_ns"],
    );
    for algo in [TurnstileAlgo::Rss, TurnstileAlgo::Dcm, TurnstileAlgo::Dcs] {
        let c = run_turnstile_cell(algo, &data, eps, 16, 1, cfg.seed ^ 0xAB2);
        t.push_row(vec![
            c.algo.into(),
            fkb(c.space_bytes),
            fnum(c.avg_err),
            fnum(c.update_ns),
        ]);
    }
    // DGM (deterministic CR-precis) measured inline — it is not part of
    // the standard TurnstileAlgo sweep because it only exists to be
    // dismissed with numbers.
    {
        use sqs_turnstile::new_dgm;
        let mut s = new_dgm(eps, 16);
        let oracle = ExactQuantiles::new(data.clone());
        let t0 = Instant::now();
        for &x in &data {
            s.insert(x);
        }
        let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
        let answers: Vec<(f64, u64)> = probe_phis(eps)
            .iter()
            .map(|&p| {
                (
                    p,
                    s.quantile(p)
                        .expect("harness invariant: summary nonempty after feeding the stream"),
                )
            })
            .collect();
        let (_, avg) = observed_errors(&oracle, &answers);
        t.push_row(vec![
            "DGM".into(),
            fkb(s.space_bytes()),
            fnum(avg),
            fnum(ns),
        ]);
    }
    t
}
