//! Automated verification of the paper's qualitative claims against
//! the regenerated results: reads the CSVs a prior `sqs-exp` run wrote
//! into the output directory and prints one PASS/FAIL verdict per
//! claim. This is EXPERIMENTS.md's machine-checkable core.
//!
//! Shape claims, not absolute numbers: who wins, by roughly what
//! factor, and in which direction the curves move (the substrate is a
//! laptop and the real data sets are surrogates, so absolute values
//! differ from the paper by design).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use std::collections::HashMap;
use std::path::Path;

use super::ExpConfig;
use crate::report::Table;

/// One parsed CSV: header → column index, plus rows.
struct Csv {
    cols: HashMap<String, usize>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    fn load(dir: &Path, id: &str) -> Option<Csv> {
        let text = std::fs::read_to_string(dir.join(format!("{id}.csv"))).ok()?;
        let mut lines = text.lines();
        let cols = lines
            .next()?
            .split(',')
            .enumerate()
            .map(|(i, h)| (h.to_string(), i))
            .collect();
        let rows = lines
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        Some(Csv { cols, rows })
    }

    fn f(&self, row: &[String], col: &str) -> f64 {
        row[self.cols[col]].parse().unwrap_or(f64::NAN)
    }

    fn s<'a>(&self, row: &'a [String], col: &str) -> &'a str {
        &row[self.cols[col]]
    }

    /// All (x, y) pairs for rows whose `key` column equals `val`.
    fn series(&self, key: &str, val: &str, x: &str, y: &str) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .filter(|r| self.s(r, key) == val)
            .map(|r| (self.f(r, x), self.f(r, y)))
            .collect()
    }
}

struct Verdicts {
    table: Table,
}

impl Verdicts {
    fn new() -> Self {
        Self {
            table: Table::new(
                "claims",
                "paper-claim verdicts against regenerated results",
                &["claim", "expectation", "measured", "verdict"],
            ),
        }
    }

    fn check(&mut self, claim: &str, expectation: &str, measured: String, pass: Option<bool>) {
        let verdict = match pass {
            Some(true) => "PASS",
            Some(false) => "FAIL",
            None => "SKIP (results missing)",
        };
        self.table.push_row(vec![
            claim.into(),
            expectation.into(),
            measured,
            verdict.into(),
        ]);
    }
}

/// Runs the checker over `cfg.out_dir`.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let dir = &cfg.out_dir;
    let mut v = Verdicts::new();

    // ---- C1: deterministic algorithms never exceed ε (Fig. 5a).
    if let Some(csv) = Csv::load(dir, "fig5a") {
        let mut worst: f64 = 0.0;
        let mut checked = 0;
        for algo in ["GKTheory", "GKAdaptive", "GKArray", "FastQDigest"] {
            for (eps, err) in csv.series("algo", algo, "eps", "max_err") {
                worst = worst.max(err / eps);
                checked += 1;
            }
        }
        v.check(
            "C1 det ≤ eps (Fig5a)",
            "max_err/eps ≤ 1 for all deterministic cells",
            format!("worst ratio {worst:.3} over {checked} cells"),
            Some(worst <= 1.0 + 1e-9 && checked > 0),
        );
    } else {
        v.check(
            "C1 det ≤ eps (Fig5a)",
            "—",
            "fig5a.csv missing".into(),
            None,
        );
    }

    // ---- C2: deterministic average error lands between ~¼ε and ~⅔ε
    // (§4.2.1; we allow a wide band).
    if let Some(csv) = Csv::load(dir, "fig5b") {
        let mut ratios = Vec::new();
        for algo in ["GKAdaptive", "GKArray"] {
            for (eps, err) in csv.series("algo", algo, "eps", "avg_err") {
                ratios.push(err / eps);
            }
        }
        let lo = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ratios.iter().copied().fold(0.0, f64::max);
        v.check(
            "C2 det avg err band (Fig5b)",
            "avg_err/eps within [0.1, 0.8]",
            format!("range [{lo:.2}, {hi:.2}]"),
            Some(lo >= 0.1 && hi <= 0.8),
        );
    }

    // ---- C3: randomized observed errors are well below ε (§4.2.1).
    if let Some(csv) = Csv::load(dir, "fig5a") {
        let mut hi: f64 = 0.0;
        for algo in ["Random", "MRL99"] {
            for (eps, err) in csv.series("algo", algo, "eps", "max_err") {
                hi = hi.max(err / eps);
            }
        }
        v.check(
            "C3 randomized ≪ eps (Fig5a)",
            "max_err/eps < 1 everywhere (typically ≪)",
            format!("worst ratio {hi:.3}"),
            Some(hi < 1.0),
        );
    }

    // ---- C4: FastQDigest uses the most space of the headline algos
    // (§4.2.2) — compare at the tightest common ε.
    if let Some(csv) = Csv::load(dir, "fig5c") {
        let space_at = |algo: &str| -> Option<f64> {
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "algo") == algo)
                .map(|r| csv.f(r, "space_kb"))
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.max(s)))
                })
        };
        let qd = space_at("FastQDigest");
        let others: Vec<f64> = ["GKAdaptive", "GKArray", "Random", "MRL99"]
            .iter()
            .filter_map(|a| space_at(a))
            .collect();
        match (
            qd,
            others
                .iter()
                .copied()
                .fold(None::<f64>, |a, s| Some(a.map_or(s, |x| x.max(s)))),
        ) {
            (Some(qd), Some(max_other)) => v.check(
                "C4 q-digest largest (Fig5c)",
                "q-digest max space > every comparison algo's",
                format!("{qd:.0} KB vs max other {max_other:.0} KB"),
                Some(qd > max_other),
            ),
            _ => v.check(
                "C4 q-digest largest (Fig5c)",
                "—",
                "series missing".into(),
                None,
            ),
        }
    }

    // ---- C5: GKAdaptive pays a pointer-chasing penalty that
    // GKArray avoids (Fig. 5e/5f) — compare update time at tight ε.
    if let Some(csv) = Csv::load(dir, "fig5e") {
        let tight = |algo: &str| -> Option<f64> {
            // update_ns of the row with the largest update time (the
            // tight-ε end of the curve).
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "algo") == algo)
                .map(|r| csv.f(r, "update_ns"))
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.max(t)))
                })
        };
        if let (Some(adaptive), Some(array)) = (tight("GKAdaptive"), tight("GKArray")) {
            v.check(
                "C5 GKArray ≫ faster than GKAdaptive (Fig5e)",
                "GKAdaptive worst-case update ≥ 3× GKArray's",
                format!("{adaptive:.0} ns vs {array:.0} ns"),
                Some(adaptive >= 3.0 * array),
            );
        }
    }

    // ---- C6: q-digest gets cheaper with smaller universes (Fig. 6).
    if let Some(csv) = Csv::load(dir, "fig6a") {
        let avg_space = |name: &str| -> Option<f64> {
            let s: Vec<f64> = csv
                .rows
                .iter()
                .filter(|r| csv.s(r, "algo") == name)
                .map(|r| csv.f(r, "space_kb"))
                .collect();
            (!s.is_empty()).then(|| s.iter().sum::<f64>() / s.len() as f64)
        };
        if let (Some(small), Some(big)) = (
            avg_space("FastQDigest(u=2^16)"),
            avg_space("FastQDigest(u=2^32)"),
        ) {
            v.check(
                "C6 q-digest universe scaling (Fig6a)",
                "mean space at u=2^16 < at u=2^32",
                format!("{small:.0} KB vs {big:.0} KB"),
                Some(small < big),
            );
        }
    }

    // ---- C7: update time and space are flat in stream length
    // (Fig. 7) — over the n ≥ 10⁶ points where amortization has
    // settled, max/min ≤ 3 per algorithm.
    for (id, col, claim) in [
        ("fig7a", "update_ns", "C7a time flat in n (Fig7a)"),
        ("fig7b", "space_kb", "C7b space flat in n (Fig7b)"),
    ] {
        if let Some(csv) = Csv::load(dir, id) {
            let mut worst: f64 = 0.0;
            let mut worst_algo = String::new();
            let algos: std::collections::BTreeSet<String> = csv
                .rows
                .iter()
                .map(|r| csv.s(r, "algo").to_string())
                .collect();
            for algo in algos {
                let ys: Vec<f64> = csv
                    .rows
                    .iter()
                    .filter(|r| csv.s(r, "algo") == algo && csv.f(r, "n") >= 1e6)
                    .map(|r| csv.f(r, col))
                    .collect();
                if ys.len() >= 2 {
                    let ratio = ys.iter().copied().fold(0.0, f64::max)
                        / ys.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
                    if ratio > worst {
                        worst = ratio;
                        worst_algo = algo;
                    }
                }
            }
            v.check(
                claim,
                "per-algo max/min over n ≥ 1e6 ≤ 3",
                format!("worst ratio {worst:.2} ({worst_algo})"),
                Some(worst <= 3.0 && worst > 0.0),
            );
        }
    }

    // ---- C8: DCS error halves as the sketch doubles (Table 3).
    if let Some(csv) = Csv::load(dir, "tab3") {
        // Row with d = 7 (the paper's tuned depth).
        if let Some(row) = csv.rows.iter().find(|r| csv.s(r, "d") == "7") {
            let small = csv.f(row, "64KB");
            let large = csv.f(row, "4096KB");
            v.check(
                "C8 DCS size scaling (Tab3, d=7)",
                "err(64KB)/err(4096KB) ≥ 8 (6 doublings)",
                format!("{small:.3} → {large:.3} (ratio {:.1})", small / large),
                Some(small / large >= 8.0),
            );
        }
    }

    // ---- C9: Post reduces DCS error, improving as η shrinks (Fig. 9).
    if let Some(csv) = Csv::load(dir, "fig9") {
        let rel_at = |eps: &str, eta: &str| -> Option<f64> {
            csv.rows
                .iter()
                .find(|r| csv.s(r, "eps") == eps && csv.s(r, "eta") == eta)
                .map(|r| csv.f(r, "rel_err"))
        };
        if let (Some(sweet), Some(coarse)) =
            (rel_at("0.0100", "0.1000"), rel_at("0.0100", "1.0000"))
        {
            v.check(
                "C9 Post reduces error (Fig9)",
                "rel_err(η=0.1) < 0.9 and < rel_err(η=1.0)",
                format!("η=0.1: {sweet:.2}, η=1.0: {coarse:.2}"),
                Some(sweet < 0.9 && sweet < coarse + 1e-9),
            );
        }
    }

    // ---- C10: DCS beats DCM on space at equal error, and Post beats
    // DCS at equal space (Fig. 10c).
    if let Some(csv) = Csv::load(dir, "fig10b") {
        let per_eps = |algo: &str| -> HashMap<String, f64> {
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "algo") == algo)
                .map(|r| (csv.s(r, "eps").to_string(), csv.f(r, "avg_err")))
                .collect()
        };
        let dcs = per_eps("DCS");
        let post = per_eps("Post");
        let mut post_wins = 0;
        let mut total = 0;
        for (eps, dcs_err) in &dcs {
            if let Some(post_err) = post.get(eps) {
                total += 1;
                if post_err < dcs_err {
                    post_wins += 1;
                }
            }
        }
        v.check(
            "C10a Post < DCS error (Fig10b)",
            "Post avg error below DCS at (almost) every eps",
            format!("{post_wins}/{total} cells improved"),
            Some(total > 0 && post_wins * 5 >= total * 4),
        );
    }
    if let Some(csv) = Csv::load(dir, "fig10c") {
        // Equal-error space comparison by interpolation: for each DCS
        // point, find the DCM space at (approximately) the same error.
        let series = |algo: &str| csv.series("algo", algo, "space_kb", "avg_err");
        let dcm = series("DCM");
        let dcs = series("DCS");
        if !dcm.is_empty() && !dcs.is_empty() {
            // Compare at the error level both curves cover.
            let target = dcs
                .iter()
                .map(|&(_, e)| e)
                .fold(0.0f64, f64::max)
                .min(dcm.iter().map(|&(_, e)| e).fold(0.0f64, f64::max));
            let space_for = |s: &[(f64, f64)]| {
                s.iter()
                    .filter(|&&(_, e)| e <= target)
                    .map(|&(sp, _)| sp)
                    .fold(f64::INFINITY, f64::min)
            };
            let (dcm_sp, dcs_sp) = (space_for(&dcm), space_for(&dcs));
            // The paper reports ~10× at n = 87.7M; the factor grows
            // with n (Count-Min's bias compounds), so at the default
            // n = 10⁶ we require ≥ 1.5× and record the measured value
            // (EXPERIMENTS.md tracks the n-scaling).
            v.check(
                "C10b DCS smaller than DCM (Fig10c)",
                "space(DCM) ≥ 1.5× space(DCS) at equal error (paper: ~10× at n=87.7M)",
                format!("{dcm_sp:.0} KB vs {dcs_sp:.0} KB at err ≤ {target:.1e}"),
                Some(dcm_sp >= 1.5 * dcs_sp),
            );
        }
    }

    // ---- C11: smaller universes make the structures smaller at
    // equal accuracy (Fig. 11 — the paper's "more accurate, or
    // equivalently speaking, smaller": the ε-parameterized width
    // already normalizes the error, so the win shows up as space).
    if let Some(csv) = Csv::load(dir, "fig11a") {
        let rows = |name: &str| -> Vec<(String, f64, f64)> {
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "algo") == name)
                .map(|r| {
                    (
                        csv.s(r, "eps").to_string(),
                        csv.f(r, "space_kb"),
                        csv.f(r, "avg_err"),
                    )
                })
                .collect()
        };
        let small: HashMap<String, (f64, f64)> = rows("DCS(u=2^16)")
            .into_iter()
            .map(|(e, s, a)| (e, (s, a)))
            .collect();
        let mut wins = 0;
        let mut total = 0;
        for (eps, sp32, err32) in rows("DCS(u=2^32)") {
            if let Some(&(sp16, err16)) = small.get(&eps) {
                total += 1;
                // Smaller space at comparable (≤ 2×) error.
                if sp16 < sp32 && err16 <= 2.0 * err32.max(1e-9) {
                    wins += 1;
                }
            }
        }
        v.check(
            "C11 universe size (Fig11a)",
            "DCS at u=2^16 smaller than at u=2^32 at comparable error, per eps",
            format!("{wins}/{total} eps cells"),
            Some(total > 0 && wins == total),
        );
    }

    // ---- C12: less skew improves DCS more than DCM (Fig. 12).
    if let Some(csv) = Csv::load(dir, "fig12b") {
        let err_sum = |name: &str| -> f64 {
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "algo") == name)
                .map(|r| csv.f(r, "avg_err"))
                .sum()
        };
        let dcs_gain = err_sum("DCS(s=0.05)") / err_sum("DCS(s=0.25)").max(1e-12);
        let dcm_gain = err_sum("DCM(s=0.05)") / err_sum("DCM(s=0.25)").max(1e-12);
        v.check(
            "C12 skew sensitivity (Fig12b)",
            "spread data helps both; DCS improves ≥ DCM (F₂ effect)",
            format!("DCS gain {dcs_gain:.2}×, DCM gain {dcm_gain:.2}×"),
            Some(dcs_gain >= 1.0 && dcs_gain >= 0.8 * dcm_gain),
        );
    }

    // ---- C13: the turnstile model costs ~an order of magnitude
    // (§4.3.4) against the best cash-register algorithm.
    if let Some(csv) = Csv::load(dir, "xcompare") {
        let best = |model: &str, col: &str| -> f64 {
            csv.rows
                .iter()
                .filter(|r| csv.s(r, "model") == model)
                .map(|r| csv.f(r, col))
                .fold(f64::INFINITY, f64::min)
        };
        let space_ratio = best("turnstile", "space_kb") / best("cash", "space_kb").max(1e-9);
        let time_ratio = best("turnstile", "update_ns") / best("cash", "update_ns").max(1e-9);
        v.check(
            "C13 turnstile premium (xcompare)",
            "≥ 3× space and ≥ 3× time vs cash register",
            format!("space {space_ratio:.1}×, time {time_ratio:.1}×"),
            Some(space_ratio >= 3.0 && time_ratio >= 3.0),
        );
    }

    // ---- C14: RSS is why the paper dropped it (ablation).
    if let Some(csv) = Csv::load(dir, "ablation_rss") {
        let space = |algo: &str| -> f64 {
            csv.rows
                .iter()
                .find(|r| csv.s(r, "algo") == algo)
                .map(|r| csv.f(r, "space_kb"))
                .unwrap_or(f64::NAN)
        };
        let ratio = space("RSS") / space("DCS");
        v.check(
            "C14 RSS impractical (ablation)",
            "space(RSS) ≥ 10× space(DCS) at eps=0.05",
            format!("{ratio:.0}×"),
            Some(ratio >= 10.0),
        );
    }

    vec![v.table]
}
