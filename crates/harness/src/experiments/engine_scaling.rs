//! Concurrent-ingestion baseline for the sharded engine (`sqs-engine`).
//!
//! Not a paper figure: the paper's study is single-threaded, and this
//! experiment documents what the mergeable-summary property buys when
//! the same summaries are run behind the engine's sharded front end.
//! For each backend (Random, q-digest) and shard count ∈ {1, 2, 4, 8}
//! it drives `shards` producer threads through buffered
//! [`IngestHandle`](sqs_engine::IngestHandle)s and records:
//!
//! * ingestion throughput (million elements/s, wall clock across all
//!   threads — on a multi-core host this scales with shards, on a
//!   single hardware thread it stays flat);
//! * snapshot latency and merge-tree depth;
//! * the observed max rank error of the merged snapshot against an
//!   exact oracle — the accuracy column is the point: it must stay
//!   within the single-summary ε at *every* shard count.
//!
//! Besides the usual CSV, `run` writes `engine_baseline.json` so later
//! optimization PRs can diff against a machine-readable baseline.

use std::fmt::Write as _;
use std::time::Instant;

use super::ExpConfig;
use crate::report::{fnum, Table};
use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_core::MergeableSummary;
use sqs_engine::ShardedEngine;
use sqs_util::audit::CheckInvariants;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::Xoshiro256pp;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 1024;

/// One measured cell of the baseline grid.
struct Cell {
    backend: &'static str,
    shards: usize,
    n: u64,
    ingest_melems_per_s: f64,
    snapshot_ms: f64,
    merge_depth: u32,
    flushes: u64,
    max_rank_err: f64,
    eps: f64,
}

/// The seeded stream thread `t` produces (deterministic per config).
fn stream(seed: u64, t: usize, len: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed ^ (0xE46 + t as u64));
    let width = 1u64 << (20 + (t % 4));
    (0..len).map(|_| rng.next_below(width)).collect()
}

/// Drives one backend across the shard sweep.
fn measure<S, F>(backend: &'static str, eps: f64, cfg: &ExpConfig, make: F, out: &mut Vec<Cell>)
where
    S: MergeableSummary<u64> + CheckInvariants + Clone + Send,
    F: Fn(usize) -> S,
{
    // Per-thread share so total work (and the oracle) stays ~cfg.n
    // regardless of shard count: throughput numbers are comparable.
    for &shards in &SHARD_COUNTS {
        let per_thread = cfg.n / shards;
        let engine = ShardedEngine::new_with(shards, BATCH, &make);
        let streams: Vec<Vec<u64>> = (0..shards)
            .map(|t| stream(cfg.seed, shards * 100 + t, per_thread))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (t, data) in streams.iter().enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    let mut h = engine.handle_for(t);
                    h.insert_slice(data);
                });
            }
        });
        let ingest_s = start.elapsed().as_secs_f64();
        engine.assert_invariants();

        let snap_start = Instant::now();
        let snap = engine.snapshot();
        let snapshot_ms = snap_start.elapsed().as_secs_f64() * 1e3;
        snap.assert_invariants();

        let all: Vec<u64> = streams.into_iter().flatten().collect();
        let oracle = ExactQuantiles::new(all);
        // One merged snapshot serves the whole sweep (engine.quantiles
        // batches the ranks instead of re-merging per φ).
        let phis = probe_phis(eps);
        let mut max_err = 0.0f64;
        for (phi, ans) in phis.iter().zip(engine.quantiles(&phis)) {
            if let Some(ans) = ans {
                max_err = max_err.max(oracle.quantile_error(*phi, ans));
            }
        }

        let stats = engine.stats();
        out.push(Cell {
            backend,
            shards,
            n: stats.items,
            ingest_melems_per_s: stats.items as f64 / ingest_s / 1e6,
            snapshot_ms,
            merge_depth: stats.last_merge_depth,
            flushes: stats.flushes,
            max_rank_err: max_err,
            eps,
        });
    }
}

/// Renders the grid as JSON by hand (the workspace builds offline — no
/// serde), stable key order, one object per cell.
fn to_json(cells: &[Cell], cfg: &ExpConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"engine_scaling\",");
    let _ = writeln!(s, "  \"n\": {},", cfg.n);
    let _ = writeln!(s, "  \"batch_capacity\": {BATCH},");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"backend\": \"{}\", \"shards\": {}, \"eps\": {}, \"n\": {}, \
             \"ingest_melems_per_s\": {:.4}, \"snapshot_ms\": {:.4}, \
             \"merge_depth\": {}, \"flushes\": {}, \"max_rank_err\": {:.6}}}{}",
            c.backend,
            c.shards,
            c.eps,
            c.n,
            c.ingest_melems_per_s,
            c.snapshot_ms,
            c.merge_depth,
            c.flushes,
            c.max_rank_err,
            comma
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Runs the engine-scaling baseline: one table plus
/// `engine_baseline.json` in the output directory.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut cells = Vec::new();
    measure(
        "Random",
        0.05,
        cfg,
        |i| RandomSketch::new(0.05, cfg.seed ^ i as u64),
        &mut cells,
    );
    measure("QDigest", 0.01, cfg, |_| QDigest::new(0.01, 24), &mut cells);

    let mut t = Table::new(
        "engine_scaling",
        "Sharded engine: throughput, snapshot cost and accuracy vs shard count",
        &[
            "backend",
            "shards",
            "eps",
            "n",
            "ingest_Melem_s",
            "snapshot_ms",
            "merge_depth",
            "flushes",
            "max_rank_err",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.backend.to_string(),
            c.shards.to_string(),
            fnum(c.eps),
            c.n.to_string(),
            fnum(c.ingest_melems_per_s),
            fnum(c.snapshot_ms),
            c.merge_depth.to_string(),
            c.flushes.to_string(),
            fnum(c.max_rank_err),
        ]);
    }

    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!(
            "engine_scaling: cannot create {}: {e}",
            cfg.out_dir.display()
        );
    } else if let Err(e) = std::fs::write(
        cfg.out_dir.join("engine_baseline.json"),
        to_json(&cells, cfg),
    ) {
        eprintln!("engine_scaling: cannot write engine_baseline.json: {e}");
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_grid_is_accurate_and_complete() {
        let cfg = ExpConfig {
            n: 40_000,
            trials: 1,
            out_dir: std::env::temp_dir().join("sqs_engine_scaling_test"),
            seed: 5,
            max_stream_len: 40_000,
            quick: true,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 2 * SHARD_COUNTS.len());
        for row in &t.rows {
            let eps: f64 = row[2].parse().expect("eps cell parses");
            let err: f64 = row[8].parse().expect("err cell parses");
            assert!(err <= eps, "row {row:?}: err {err} > eps {eps}");
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("engine_baseline.json"))
            .expect("baseline json written");
        assert!(json.contains("\"experiment\": \"engine_scaling\""));
        assert!(json.contains("\"backend\": \"QDigest\""));
    }
}
