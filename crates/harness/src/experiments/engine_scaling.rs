//! Concurrent-ingestion experiments for the sharded engine
//! (`sqs-engine`): the shard-count baseline grid, the producer-thread
//! scaling sweep, and the ingest-buffer capacity sweep.
//!
//! Not paper figures: the paper's study is single-threaded, and these
//! experiments document what the mergeable-summary property buys when
//! the same summaries are run behind the engine's buffered,
//! epoch-snapshotting front end.
//!
//! Three outputs:
//!
//! * `engine_baseline.json` + the `engine_scaling` table — the
//!   backend × shard-count grid (throughput, snapshot latency,
//!   merge-tree depth, handoff counts, max rank error vs the exact
//!   oracle — the accuracy column is the point: it must stay within
//!   the single-summary ε at *every* shard count).
//! * `engine_scaling.json` + the `engine_thread_scaling` table — the
//!   backend × producer-thread sweep at a fixed shard count, with each
//!   cell's throughput ratio against the same backend's 1-thread cell.
//!   The JSON records `host_parallelism` so `cargo xtask bench-check`
//!   can hold the sweep to a *machine-independent* floor: near-linear
//!   scaling where the hardware has the cores, graceful no-collapse
//!   behaviour where it does not (the reference CI box is
//!   single-core — see docs/PERF.md §4).
//! * the `batch_sweep` table (auto-emitted as `batch_sweep.csv`) — a
//!   single-producer sweep of the handle buffer capacity around the
//!   sketch crate's 1024-element `CHUNK`, the evidence behind
//!   `DEFAULT_BATCH_CAPACITY`.

use std::fmt::Write as _;
use std::time::Instant;

use super::ExpConfig;
use crate::report::{fnum, Table};
use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_core::MergeableSummary;
use sqs_engine::ShardedEngine;
use sqs_util::audit::CheckInvariants;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::Xoshiro256pp;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Producer-thread sweep of the scaling experiment.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Shards used by the thread sweep: the max thread count, so every
/// producer owns a shard and folding can parallelize fully.
const SCALING_SHARDS: usize = 8;
/// Handle-buffer capacities swept by `batch_sweep` (bracketing the
/// sketch crate's 1024-element `CHUNK` by 4× in both directions).
const BATCH_CAPACITIES: [usize; 6] = [256, 512, 1024, 2048, 4096, 8192];
const BATCH: usize = sqs_engine::DEFAULT_BATCH_CAPACITY;

/// One measured cell of the shard-count baseline grid.
struct Cell {
    backend: &'static str,
    shards: usize,
    n: u64,
    ingest_melems_per_s: f64,
    snapshot_ms: f64,
    merge_depth: u32,
    handoffs: u64,
    max_rank_err: f64,
    eps: f64,
}

/// One measured cell of the thread-scaling sweep.
struct ScaleCell {
    backend: &'static str,
    threads: usize,
    n: u64,
    ingest_melems_per_s: f64,
    /// Throughput ratio vs the same backend's 1-thread cell.
    ratio_vs_1: f64,
    max_rank_err: f64,
    eps: f64,
}

/// The seeded stream thread `t` produces (deterministic per config).
fn stream(seed: u64, t: usize, len: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed ^ (0xE46 + t as u64));
    let width = 1u64 << (20 + (t % 4));
    (0..len).map(|_| rng.next_below(width)).collect()
}

/// Max rank error of the engine's merged snapshot over the probe grid
/// vs an exact oracle of `all`.
fn oracle_err<S>(engine: &ShardedEngine<u64, S>, all: Vec<u64>, eps: f64) -> f64
where
    S: MergeableSummary<u64> + CheckInvariants + Clone,
{
    let oracle = ExactQuantiles::new(all);
    let phis = probe_phis(eps);
    let mut max_err = 0.0f64;
    for (phi, ans) in phis.iter().zip(engine.quantiles(&phis)) {
        if let Some(ans) = ans {
            max_err = max_err.max(oracle.quantile_error(*phi, ans));
        }
    }
    max_err
}

/// Drives one backend across the shard sweep (threads == shards, the
/// original baseline grid).
fn measure_shards<S, F>(
    backend: &'static str,
    eps: f64,
    cfg: &ExpConfig,
    make: F,
    out: &mut Vec<Cell>,
) where
    S: MergeableSummary<u64> + CheckInvariants + Clone + Send + Sync,
    F: Fn(usize) -> S,
{
    // Per-thread share so total work (and the oracle) stays ~cfg.n
    // regardless of shard count: throughput numbers are comparable.
    for &shards in &SHARD_COUNTS {
        let per_thread = cfg.n / shards;
        let engine = ShardedEngine::new_with(shards, BATCH, &make);
        let streams: Vec<Vec<u64>> = (0..shards)
            .map(|t| stream(cfg.seed, shards * 100 + t, per_thread))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (t, data) in streams.iter().enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    let mut h = engine.handle_for(t);
                    h.insert_slice(data);
                });
            }
        });
        let ingest_s = start.elapsed().as_secs_f64();
        engine.assert_invariants();

        let snap_start = Instant::now();
        let snap = engine.snapshot();
        let snapshot_ms = snap_start.elapsed().as_secs_f64() * 1e3;
        snap.assert_invariants();

        let max_err = oracle_err(&engine, streams.into_iter().flatten().collect(), eps);
        let stats = engine.stats();
        out.push(Cell {
            backend,
            shards,
            n: stats.items,
            ingest_melems_per_s: stats.items as f64 / ingest_s / 1e6,
            snapshot_ms,
            merge_depth: stats.last_merge_depth,
            handoffs: stats.handoffs,
            max_rank_err: max_err,
            eps,
        });
    }
}

/// Drives one backend across the producer-thread sweep at a fixed
/// shard count (`SCALING_SHARDS`).
fn measure_threads<S, F>(
    backend: &'static str,
    eps: f64,
    cfg: &ExpConfig,
    make: F,
    out: &mut Vec<ScaleCell>,
) where
    S: MergeableSummary<u64> + CheckInvariants + Clone + Send + Sync,
    F: Fn(usize) -> S,
{
    let mut base_rate = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let per_thread = cfg.n / threads;
        let engine = ShardedEngine::new_with(SCALING_SHARDS, BATCH, &make);
        let streams: Vec<Vec<u64>> = (0..threads)
            .map(|t| stream(cfg.seed, threads * 1_000 + t, per_thread))
            .collect();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (t, data) in streams.iter().enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    // Threads ≤ shards: each producer owns a shard, so
                    // cooperative folding parallelizes across threads.
                    let mut h = engine.handle_for(t % SCALING_SHARDS);
                    h.insert_slice(data);
                });
            }
        });
        let ingest_s = start.elapsed().as_secs_f64();
        engine.assert_invariants();
        let stats = engine.stats();
        let rate = stats.items as f64 / ingest_s / 1e6;
        if threads == 1 {
            base_rate = rate;
        }
        let max_err = oracle_err(&engine, streams.into_iter().flatten().collect(), eps);
        out.push(ScaleCell {
            backend,
            threads,
            n: stats.items,
            ingest_melems_per_s: rate,
            ratio_vs_1: if base_rate > 0.0 {
                rate / base_rate
            } else {
                0.0
            },
            max_rank_err: max_err,
            eps,
        });
    }
}

/// Renders the shard grid as JSON by hand (the workspace builds
/// offline — no serde), stable key order, one object per cell.
fn baseline_json(cells: &[Cell], cfg: &ExpConfig) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"engine_scaling\",");
    let _ = writeln!(s, "  \"n\": {},", cfg.n);
    let _ = writeln!(s, "  \"batch_capacity\": {BATCH},");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"backend\": \"{}\", \"shards\": {}, \"eps\": {}, \"n\": {}, \
             \"ingest_melems_per_s\": {:.4}, \"snapshot_ms\": {:.4}, \
             \"merge_depth\": {}, \"handoffs\": {}, \"max_rank_err\": {:.6}}}{}",
            c.backend,
            c.shards,
            c.eps,
            c.n,
            c.ingest_melems_per_s,
            c.snapshot_ms,
            c.merge_depth,
            c.handoffs,
            c.max_rank_err,
            comma
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Renders the thread sweep as JSON: one cell object per line (the
/// `xtask` gate parses line-by-line), `host_parallelism` up front so
/// the scaling floor can adapt to the machine.
fn scaling_json(cells: &[ScaleCell], cfg: &ExpConfig, host_parallelism: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"engine_thread_scaling\",");
    let _ = writeln!(s, "  \"n\": {},", cfg.n);
    let _ = writeln!(s, "  \"shards\": {SCALING_SHARDS},");
    let _ = writeln!(s, "  \"batch_capacity\": {BATCH},");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"backend\": \"{}\", \"threads\": {}, \"eps\": {}, \"n\": {}, \
             \"ingest_melems_per_s\": {:.4}, \"ratio_vs_1\": {:.4}, \
             \"max_rank_err\": {:.6}}}{}",
            c.backend,
            c.threads,
            c.eps,
            c.n,
            c.ingest_melems_per_s,
            c.ratio_vs_1,
            c.max_rank_err,
            comma
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// The thread-scaling sweep alone: the `engine_thread_scaling` table
/// plus `engine_scaling.json` in the output directory. This is what
/// `sqs-exp engine-scaling` runs (CI's scaling gate re-runs it fresh
/// via `cargo xtask bench-check`).
pub fn run_scaling(cfg: &ExpConfig) -> Vec<Table> {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut cells = Vec::new();
    measure_threads(
        "Random",
        0.05,
        cfg,
        |i| RandomSketch::new(0.05, cfg.seed ^ i as u64),
        &mut cells,
    );
    measure_threads("QDigest", 0.01, cfg, |_| QDigest::new(0.01, 24), &mut cells);

    let mut t = Table::new(
        "engine_thread_scaling",
        "Sharded engine: ingest throughput vs producer-thread count (fixed 8 shards)",
        &[
            "backend",
            "threads",
            "eps",
            "n",
            "ingest_Melem_s",
            "ratio_vs_1",
            "max_rank_err",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.backend.to_string(),
            c.threads.to_string(),
            fnum(c.eps),
            c.n.to_string(),
            fnum(c.ingest_melems_per_s),
            fnum(c.ratio_vs_1),
            fnum(c.max_rank_err),
        ]);
    }

    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!(
            "engine_scaling: cannot create {}: {e}",
            cfg.out_dir.display()
        );
    } else if let Err(e) = std::fs::write(
        cfg.out_dir.join("engine_scaling.json"),
        scaling_json(&cells, cfg, host_parallelism),
    ) {
        eprintln!("engine_scaling: cannot write engine_scaling.json: {e}");
    }

    vec![t]
}

/// Single-producer sweep of the handle buffer capacity: the evidence
/// behind `DEFAULT_BATCH_CAPACITY` (see docs/PERF.md §4). Emitted as
/// `batch_sweep.csv` by the harness.
fn run_batch_sweep(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "batch_sweep",
        "Handle buffer capacity vs single-producer ingest throughput",
        &["backend", "capacity", "n", "ingest_Melem_s", "handoffs"],
    );
    let data = stream(cfg.seed, 0, cfg.n);
    for &cap in &BATCH_CAPACITIES {
        // Random backend: the cheapest fold, so buffer overhead (the
        // thing being swept) is the largest fraction of the runtime.
        let engine: ShardedEngine<u64, RandomSketch<u64>> =
            ShardedEngine::new_with(1, cap, |i| RandomSketch::new(0.05, cfg.seed ^ i as u64));
        let start = Instant::now();
        let mut h = engine.handle_for(0);
        h.insert_slice(&data);
        h.flush();
        drop(h);
        let ingest_s = start.elapsed().as_secs_f64();
        engine.assert_invariants();
        let stats = engine.stats();
        t.push_row(vec![
            "Random".to_string(),
            cap.to_string(),
            stats.items.to_string(),
            fnum(stats.items as f64 / ingest_s / 1e6),
            stats.handoffs.to_string(),
        ]);
    }
    t
}

/// Runs the full engine experiment suite: the shard-count baseline
/// grid (+ `engine_baseline.json`), the thread-scaling sweep
/// (+ `engine_scaling.json`), and the batch-capacity sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut cells = Vec::new();
    measure_shards(
        "Random",
        0.05,
        cfg,
        |i| RandomSketch::new(0.05, cfg.seed ^ i as u64),
        &mut cells,
    );
    measure_shards("QDigest", 0.01, cfg, |_| QDigest::new(0.01, 24), &mut cells);

    let mut t = Table::new(
        "engine_scaling",
        "Sharded engine: throughput, snapshot cost and accuracy vs shard count",
        &[
            "backend",
            "shards",
            "eps",
            "n",
            "ingest_Melem_s",
            "snapshot_ms",
            "merge_depth",
            "handoffs",
            "max_rank_err",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.backend.to_string(),
            c.shards.to_string(),
            fnum(c.eps),
            c.n.to_string(),
            fnum(c.ingest_melems_per_s),
            fnum(c.snapshot_ms),
            c.merge_depth.to_string(),
            c.handoffs.to_string(),
            fnum(c.max_rank_err),
        ]);
    }

    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!(
            "engine_scaling: cannot create {}: {e}",
            cfg.out_dir.display()
        );
    } else if let Err(e) = std::fs::write(
        cfg.out_dir.join("engine_baseline.json"),
        baseline_json(&cells, cfg),
    ) {
        eprintln!("engine_scaling: cannot write engine_baseline.json: {e}");
    }

    let mut tables = vec![t];
    tables.extend(run_scaling(cfg));
    tables.push(run_batch_sweep(cfg));
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_grid_is_accurate_and_complete() {
        let cfg = ExpConfig {
            n: 40_000,
            trials: 1,
            out_dir: std::env::temp_dir().join("sqs_engine_scaling_test"),
            seed: 5,
            max_stream_len: 40_000,
            quick: true,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 3);
        let t = tables.first().expect("grid table present");
        assert_eq!(t.rows.len(), 2 * SHARD_COUNTS.len());
        for row in &t.rows {
            let eps: f64 = row.get(2).and_then(|c| c.parse().ok()).expect("eps cell");
            let err: f64 = row.get(8).and_then(|c| c.parse().ok()).expect("err cell");
            assert!(err <= eps, "row {row:?}: err {err} > eps {eps}");
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("engine_baseline.json"))
            .expect("baseline json written");
        assert!(json.contains("\"experiment\": \"engine_scaling\""));
        assert!(json.contains("\"backend\": \"QDigest\""));
        let sweep = tables.get(2).expect("batch sweep table present");
        assert_eq!(sweep.rows.len(), BATCH_CAPACITIES.len());
    }

    #[test]
    fn thread_scaling_sweep_is_accurate_and_ratioed() {
        let cfg = ExpConfig {
            n: 40_000,
            trials: 1,
            out_dir: std::env::temp_dir().join("sqs_engine_thread_scaling_test"),
            seed: 9,
            max_stream_len: 40_000,
            quick: true,
        };
        let tables = run_scaling(&cfg);
        assert_eq!(tables.len(), 1);
        let t = tables.first().expect("scaling table present");
        assert_eq!(t.rows.len(), 2 * THREAD_COUNTS.len());
        for row in &t.rows {
            let threads: usize = row.get(1).and_then(|c| c.parse().ok()).expect("threads");
            let eps: f64 = row.get(2).and_then(|c| c.parse().ok()).expect("eps cell");
            let ratio: f64 = row.get(5).and_then(|c| c.parse().ok()).expect("ratio");
            let err: f64 = row.get(6).and_then(|c| c.parse().ok()).expect("err cell");
            assert!(err <= eps, "row {row:?}: err {err} > eps {eps}");
            assert!(ratio > 0.0, "row {row:?}: ratio not positive");
            if threads == 1 {
                assert!((ratio - 1.0).abs() < 1e-9, "1-thread ratio is the unit");
            }
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("engine_scaling.json"))
            .expect("scaling json written");
        assert!(json.contains("\"experiment\": \"engine_thread_scaling\""));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"ratio_vs_1\""));
    }
}
