//! Figure 10: the headline turnstile comparison on MPCAT-OBS —
//! ε vs observed errors (10a/10b), error–space (10c), error–time
//! (10d), space–time (10e) for DCM, DCS and DCS+Post (§4.3.2–4.3.4).
//!
//! Paper findings: observed max error ≈ ε/10 (loose analysis); DCS
//! needs ~1/10 of DCM's space at equal error; Post cuts DCS error by
//! a further 60–80% at no streaming cost; update times are similar.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_turnstile_cell, TurnstileAlgo, TurnstileCell};
use sqs_data::mpcat::{Mpcat, MPCAT_LOG_U};

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let data: Vec<u64> = Mpcat::new(cfg.seed).take(cfg.n).collect();
    let mut cells: Vec<TurnstileCell> = Vec::new();
    for algo in [
        TurnstileAlgo::Dcm,
        TurnstileAlgo::Dcs,
        TurnstileAlgo::Post(0.1),
    ] {
        for &eps in &cfg.eps_sweep_turnstile() {
            cells.push(run_turnstile_cell(
                algo,
                &data,
                eps,
                MPCAT_LOG_U,
                cfg.trials,
                cfg.seed ^ 0x000F_1610,
            ));
        }
    }
    panels(&cells, "fig10", "MPCAT-OBS surrogate")
}

/// The five turnstile panels (shared with Figures 11/12 variants).
pub fn panels(cells: &[TurnstileCell], prefix: &str, dataset: &str) -> Vec<Table> {
    let mk = |suffix: &str, title: &str, headers: &[&str]| {
        Table::new(
            &format!("{prefix}{suffix}"),
            &format!("{title} ({dataset})"),
            headers,
        )
    };
    let mut a = mk(
        "a",
        "eps vs observed max error",
        &["algo", "eps", "max_err"],
    );
    let mut b = mk(
        "b",
        "eps vs observed avg error",
        &["algo", "eps", "avg_err"],
    );
    let mut c = mk("c", "space vs avg error", &["algo", "space_kb", "avg_err"]);
    let mut d = mk(
        "d",
        "update time vs avg error",
        &["algo", "update_ns", "avg_err"],
    );
    let mut e = mk(
        "e",
        "space vs update time",
        &["algo", "space_kb", "update_ns"],
    );
    for cell in cells {
        let algo = cell.algo.to_string();
        a.push_row(vec![algo.clone(), fnum(cell.eps), fnum(cell.max_err)]);
        b.push_row(vec![algo.clone(), fnum(cell.eps), fnum(cell.avg_err)]);
        c.push_row(vec![
            algo.clone(),
            fkb(cell.space_bytes),
            fnum(cell.avg_err),
        ]);
        d.push_row(vec![algo.clone(), fnum(cell.update_ns), fnum(cell.avg_err)]);
        e.push_row(vec![algo, fkb(cell.space_bytes), fnum(cell.update_ns)]);
    }
    vec![a, b, c, d, e]
}
