//! Figure 11: turnstile algorithms across universe sizes
//! (u ∈ {2^16, 2^32}, normal data σ = 0.15; §4.3.5).
//!
//! Paper finding: a smaller universe makes the dyadic structures both
//! more accurate (fewer levels to sum) and faster (fewer levels to
//! update); the 2^16 curves halt where exact counting takes over.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_turnstile_cell, TurnstileAlgo};
use sqs_data::Normal;
use sqs_turnstile::exact::ExactTurnstile;
use sqs_util::SpaceUsage;

const LOG_US: [u32; 2] = [16, 32];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut a = Table::new(
        "fig11a",
        "turnstile error-space across universe sizes (Normal sigma=0.15)",
        &["algo", "log_u", "eps", "space_kb", "avg_err"],
    );
    let mut b = Table::new(
        "fig11b",
        "turnstile error-time across universe sizes (Normal sigma=0.15)",
        &["algo", "log_u", "eps", "update_ns", "avg_err"],
    );
    for log_u in LOG_US {
        let data: Vec<u64> = Normal::new(log_u, 0.15, cfg.seed).take(cfg.n).collect();
        // The paper's "halt point": at u = 2^16 exact counting costs a
        // fixed 0.25 MB with zero error — where the sketch curves stop
        // making sense.
        if log_u <= 20 {
            let exact = ExactTurnstile::for_log_u(log_u);
            a.push_row(vec![
                format!("Exact(u=2^{log_u})"),
                log_u.to_string(),
                "-".into(),
                fkb(exact.space_bytes()),
                "0".into(),
            ]);
        }
        for algo in [
            TurnstileAlgo::Dcm,
            TurnstileAlgo::Dcs,
            TurnstileAlgo::Post(0.1),
        ] {
            for &eps in &cfg.eps_sweep_turnstile() {
                let cell =
                    run_turnstile_cell(algo, &data, eps, log_u, cfg.trials, cfg.seed ^ 0x000F_1611);
                let name = format!("{}(u=2^{})", cell.algo, log_u);
                a.push_row(vec![
                    name.clone(),
                    log_u.to_string(),
                    fnum(eps),
                    fkb(cell.space_bytes),
                    fnum(cell.avg_err),
                ]);
                b.push_row(vec![
                    name,
                    log_u.to_string(),
                    fnum(eps),
                    fnum(cell.update_ns),
                    fnum(cell.avg_err),
                ]);
            }
        }
    }
    vec![a, b]
}
