//! Figure 12: turnstile accuracy vs data skewness (normal data,
//! σ ∈ {0.05, 0.25}, u = 2^32; §4.3.6).
//!
//! Paper finding: less skew (larger σ) improves accuracy for all
//! three, barely for DCM but markedly for DCS and hence Post — the
//! Count-Sketch's error tracks F₂, which falls as mass spreads out,
//! while Count-Min's does not.

use super::ExpConfig;
use crate::report::{fnum, Table};
use crate::runner::{run_turnstile_cell, TurnstileAlgo};
use sqs_data::Normal;

const SIGMAS: [f64; 2] = [0.05, 0.25];
const LOG_U: u32 = 32;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut a = Table::new(
        "fig12a",
        "eps vs max error across skewness (Normal, u=2^32)",
        &["algo", "sigma", "eps", "max_err"],
    );
    let mut b = Table::new(
        "fig12b",
        "eps vs avg error across skewness (Normal, u=2^32)",
        &["algo", "sigma", "eps", "avg_err"],
    );
    for sigma in SIGMAS {
        let data: Vec<u64> = Normal::new(LOG_U, sigma, cfg.seed).take(cfg.n).collect();
        for algo in [
            TurnstileAlgo::Dcm,
            TurnstileAlgo::Dcs,
            TurnstileAlgo::Post(0.1),
        ] {
            for &eps in &cfg.eps_sweep_turnstile() {
                let cell =
                    run_turnstile_cell(algo, &data, eps, LOG_U, cfg.trials, cfg.seed ^ 0x000F_1612);
                let name = format!("{}(s={sigma})", cell.algo);
                a.push_row(vec![
                    name.clone(),
                    fnum(sigma),
                    fnum(eps),
                    fnum(cell.max_err),
                ]);
                b.push_row(vec![name, fnum(sigma), fnum(eps), fnum(cell.avg_err)]);
            }
        }
    }
    vec![a, b]
}
