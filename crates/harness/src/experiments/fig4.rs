//! Figure 4: the value distribution of the MPCAT-OBS stream — here, a
//! sanity histogram of the surrogate, to be compared by eye against
//! the paper's figure (non-uniform, with pronounced bumps).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use super::ExpConfig;
use crate::report::Table;
use sqs_data::mpcat::{Mpcat, MPCAT_UNIVERSE};

/// Histogram bins (the paper plots right ascension in hours; we bin at
/// half-hour resolution).
const BINS: usize = 48;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut hist = vec![0u64; BINS];
    for v in Mpcat::new(cfg.seed).take(cfg.n) {
        hist[(v as u128 * BINS as u128 / MPCAT_UNIVERSE as u128) as usize] += 1;
    }
    let mut t = Table::new(
        "fig4",
        "MPCAT-OBS surrogate value distribution (cf. paper Fig. 4)",
        &["bin_start_hours", "count", "fraction", "bar"],
    );
    let max = *hist
        .iter()
        .max()
        .expect("harness invariant: histogram nonempty");
    for (i, &c) in hist.iter().enumerate() {
        let frac = c as f64 / cfg.n as f64;
        let bar = "#".repeat((c * 40 / max.max(1)) as usize);
        t.push_row(vec![
            format!("{:.1}", i as f64 * 24.0 / BINS as f64),
            c.to_string(),
            format!("{frac:.4}"),
            bar,
        ]);
    }
    vec![t]
}
