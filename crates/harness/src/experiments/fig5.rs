//! Figure 5: the headline cash-register comparison on MPCAT-OBS —
//! ε vs observed errors (5a/5b), error–space tradeoffs (5c/5d),
//! error–time (5e) and space–time (5f).
//!
//! Paper findings to reproduce: deterministic algorithms never exceed
//! ε and average ¼ε–⅔ε; the randomized two are far below ε; MRL99 and
//! Random are the best on space with GK variants close; FastQDigest is
//! the largest; GKAdaptive (and FastQDigest) hit a speed cliff once
//! their structures outgrow cache, which GKArray/Random/MRL99 avoid.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_cash_cell, CashAlgo, CashCell};
use sqs_data::mpcat::{Mpcat, MPCAT_LOG_U};

/// Algorithms in Figure 5's legend, plus GKTheory (§1.2.1: "we have
/// also implemented GKTheory, and found out that it does not perform
/// as well as GKAdaptive" — reproduced here).
fn algos() -> Vec<CashAlgo> {
    let mut v = vec![CashAlgo::GkTheory];
    v.extend(CashAlgo::HEADLINE);
    v
}

/// Runs all cells and derives the six panels.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let data: Vec<u64> = Mpcat::new(cfg.seed).take(cfg.n).collect();
    let mut cells: Vec<CashCell> = Vec::new();
    for algo in algos() {
        for &eps in &cfg.eps_sweep() {
            cells.push(run_cash_cell(
                algo,
                &data,
                eps,
                MPCAT_LOG_U,
                cfg.trials,
                cfg.seed ^ 0xF165,
            ));
        }
    }
    panels(&cells, "fig5", "MPCAT-OBS surrogate")
}

/// Renders the standard six-panel set from a batch of cells (shared
/// with Figure 8's per-order runs).
pub fn panels(cells: &[CashCell], prefix: &str, dataset: &str) -> Vec<Table> {
    let mk = |suffix: &str, title: &str, headers: &[&str]| {
        Table::new(
            &format!("{prefix}{suffix}"),
            &format!("{title} ({dataset})"),
            headers,
        )
    };
    let mut a = mk(
        "a",
        "eps vs observed max error",
        &["algo", "eps", "max_err"],
    );
    let mut b = mk(
        "b",
        "eps vs observed avg error",
        &["algo", "eps", "avg_err"],
    );
    let mut c = mk("c", "space vs max error", &["algo", "space_kb", "max_err"]);
    let mut d = mk("d", "space vs avg error", &["algo", "space_kb", "avg_err"]);
    let mut e = mk(
        "e",
        "update time vs avg error",
        &["algo", "update_ns", "avg_err"],
    );
    let mut f = mk(
        "f",
        "space vs update time",
        &["algo", "space_kb", "update_ns"],
    );
    for cell in cells {
        let algo = cell.algo.to_string();
        a.push_row(vec![algo.clone(), fnum(cell.eps), fnum(cell.max_err)]);
        b.push_row(vec![algo.clone(), fnum(cell.eps), fnum(cell.avg_err)]);
        c.push_row(vec![
            algo.clone(),
            fkb(cell.space_bytes),
            fnum(cell.max_err),
        ]);
        d.push_row(vec![
            algo.clone(),
            fkb(cell.space_bytes),
            fnum(cell.avg_err),
        ]);
        e.push_row(vec![algo.clone(), fnum(cell.update_ns), fnum(cell.avg_err)]);
        f.push_row(vec![algo, fkb(cell.space_bytes), fnum(cell.update_ns)]);
    }
    vec![a, b, c, d, e, f]
}
