//! Figure 6: q-digest across universe sizes (log u ∈ {16, 24, 32})
//! against the best comparison-based algorithms, on normal data
//! (§4.2.4).
//!
//! Paper finding: q-digest is only competitive at log u = 16 with very
//! small ε — and there, exact counting would be cheaper; GKAdaptive
//! and Random are unaffected by the universe size.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_cash_cell, CashAlgo};
use sqs_data::Normal;

const LOG_US: [u32; 3] = [16, 24, 32];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut a = Table::new(
        "fig6a",
        "q-digest error-space across universe sizes (Normal sigma=0.15)",
        &["algo", "log_u", "eps", "space_kb", "avg_err"],
    );
    let mut b = Table::new(
        "fig6b",
        "q-digest error-time across universe sizes (Normal sigma=0.15)",
        &["algo", "log_u", "eps", "update_ns", "avg_err"],
    );
    for log_u in LOG_US {
        let data: Vec<u64> = Normal::new(log_u, 0.15, cfg.seed).take(cfg.n).collect();
        for &eps in &cfg.eps_sweep() {
            for algo in [
                CashAlgo::FastQDigest,
                CashAlgo::GkAdaptive,
                CashAlgo::Random,
            ] {
                // The comparison-based algorithms only need one
                // representative universe (their behaviour is universe-
                // independent; §4.2.4 plots a single curve for them).
                if algo != CashAlgo::FastQDigest && log_u != 32 {
                    continue;
                }
                let cell = run_cash_cell(algo, &data, eps, log_u, cfg.trials, cfg.seed ^ 0xF166);
                let name = if algo == CashAlgo::FastQDigest {
                    format!("{}(u=2^{})", cell.algo, log_u)
                } else {
                    cell.algo.to_string()
                };
                a.push_row(vec![
                    name.clone(),
                    log_u.to_string(),
                    fnum(eps),
                    fkb(cell.space_bytes),
                    fnum(cell.avg_err),
                ]);
                b.push_row(vec![
                    name,
                    log_u.to_string(),
                    fnum(eps),
                    fnum(cell.update_ns),
                    fnum(cell.avg_err),
                ]);
            }
        }
    }
    vec![a, b]
}
