//! Figure 7: update time (7a) and space (7b) as the stream length
//! grows (uniform data, u = 2^32, ε = 10⁻⁴, random order; paper sweeps
//! 10⁷–10¹⁰).
//!
//! Paper findings: both curves are essentially flat — the algorithms
//! scale; Random's per-element time *decreases* (sampling does more of
//! the work); GKAdaptive/GKArray space is flat on randomly ordered
//! data; Random's space is constant by construction.
//!
//! These cells are performance-only (no oracle — the paper-scale
//! streams cannot be materialized), so the generator streams.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_cash_perf, CashAlgo};
use sqs_data::Uniform;

/// The ε the paper fixes for this figure.
const EPS: f64 = 1e-4;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut lens = vec![
        100_000usize,
        1_000_000,
        10_000_000,
        100_000_000,
        1_000_000_000,
    ];
    lens.retain(|&n| n <= cfg.max_stream_len);
    if lens.is_empty() {
        lens.push(cfg.max_stream_len.max(10_000));
    }

    let mut a = Table::new(
        "fig7a",
        "update time vs stream length (Uniform, u=2^32, eps=1e-4)",
        &["algo", "n", "update_ns"],
    );
    let mut b = Table::new(
        "fig7b",
        "space vs stream length (Uniform, u=2^32, eps=1e-4)",
        &["algo", "n", "space_kb"],
    );
    for algo in CashAlgo::HEADLINE {
        for &n in &lens {
            let cell = run_cash_perf(
                algo,
                Uniform::new(32, cfg.seed),
                n,
                EPS,
                32,
                cfg.seed ^ 0xF167,
            );
            a.push_row(vec![
                cell.algo.to_string(),
                n.to_string(),
                fnum(cell.update_ns),
            ]);
            b.push_row(vec![
                cell.algo.to_string(),
                n.to_string(),
                fkb(cell.space_bytes),
            ]);
        }
    }
    vec![a, b]
}
