//! Figure 8: random vs sorted arrival order (uniform values, u = 2^32;
//! §4.2.5's companion comparison).
//!
//! Sorted order is the classic stress for GK-family summaries (every
//! insert lands at the end; removals concentrate); the paper shows the
//! algorithms hold up. We run the full panel set in both orders.

use super::{fig5::panels, ExpConfig};
use crate::report::Table;
use crate::runner::{run_cash_cell, CashAlgo, CashCell};
use sqs_data::{Order, Uniform};

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let base: Vec<u64> = Uniform::new(32, cfg.seed).take(cfg.n).collect();
    let mut out = Vec::new();
    for (tag, order) in [("random", Order::Random), ("sorted", Order::Sorted)] {
        let mut data = base.clone();
        order.apply(&mut data, cfg.seed);
        let mut cells: Vec<CashCell> = Vec::new();
        for algo in CashAlgo::HEADLINE {
            for &eps in &cfg.eps_sweep() {
                cells.push(run_cash_cell(
                    algo,
                    &data,
                    eps,
                    32,
                    cfg.trials,
                    cfg.seed ^ 0xF168,
                ));
            }
        }
        out.extend(panels(
            &cells,
            &format!("fig8_{tag}_"),
            &format!("Uniform u=2^32, {tag} order"),
        ));
    }
    out
}
