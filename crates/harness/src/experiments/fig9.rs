//! Figure 9: tuning the post-processing truncation constant η — the
//! tradeoff between the truncated tree's size (relative to the DCS
//! sketch) and the error reduction (relative to raw DCS), for
//! ε ∈ {0.1, 0.01, 0.001} on the real data set (§4.3.1).
//!
//! Paper finding: η = 0.1 is the sweet spot — Post reduces error to
//! 20–40% of raw DCS, with diminishing returns (and growing |T̂|)
//! below that.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use super::ExpConfig;
use crate::report::{fnum, Table};
use sqs_data::mpcat::{Mpcat, MPCAT_LOG_U};
use sqs_turnstile::{new_dcs, PostProcessed, TurnstileQuantiles};
use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
use sqs_util::rng::SplitMix64;
use sqs_util::SpaceUsage;

const ETAS: [f64; 6] = [1.0, 0.5, 0.2, 0.1, 0.05, 0.02];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let data: Vec<u64> = Mpcat::new(cfg.seed).take(cfg.n).collect();
    let oracle = ExactQuantiles::new(data.clone());
    let mut t = Table::new(
        "fig9",
        "Post: eta vs relative tree size and relative error (MPCAT-OBS surrogate)",
        &[
            "eps",
            "eta",
            "tree_nodes",
            "rel_size",
            "raw_avg_err",
            "post_avg_err",
            "rel_err",
        ],
    );

    let mut seeds = SplitMix64::new(cfg.seed ^ 0xF169);
    for eps in [0.1, 0.01, 0.001] {
        if eps * (cfg.n as f64) < 50.0 {
            continue;
        }
        let phis = probe_phis(eps);
        let mut rows: Vec<(f64, f64, f64, f64, f64)> = vec![(0.0, 0.0, 0.0, 0.0, 0.0); ETAS.len()];
        for _ in 0..cfg.trials.max(1) {
            let mut dcs = new_dcs(eps, MPCAT_LOG_U, seeds.next_u64());
            for &x in &data {
                dcs.insert(x);
            }
            let raw_answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        dcs.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (_, raw_avg) = observed_errors(&oracle, &raw_answers);
            let sketch_words = dcs.space_bytes() / 4;
            for (i, &eta) in ETAS.iter().enumerate() {
                let post = PostProcessed::new(&dcs, eps, eta);
                let answers: Vec<(f64, u64)> = phis
                    .iter()
                    .map(|&p| {
                        (
                            p,
                            post.quantile(p).expect(
                                "harness invariant: summary nonempty after feeding the stream",
                            ),
                        )
                    })
                    .collect();
                let (_, post_avg) = observed_errors(&oracle, &answers);
                // Tree node = (cell id + estimate) ≈ 2 words.
                let rel_size = (post.tree_size() * 2) as f64 / sketch_words as f64;
                rows[i].0 += post.tree_size() as f64;
                rows[i].1 += rel_size;
                rows[i].2 += raw_avg;
                rows[i].3 += post_avg;
                rows[i].4 += if raw_avg > 0.0 {
                    post_avg / raw_avg
                } else {
                    1.0
                };
            }
        }
        let k = cfg.trials.max(1) as f64;
        for (i, &eta) in ETAS.iter().enumerate() {
            t.push_row(vec![
                fnum(eps),
                fnum(eta),
                format!("{:.0}", rows[i].0 / k),
                fnum(rows[i].1 / k),
                fnum(rows[i].2 / k),
                fnum(rows[i].3 / k),
                fnum(rows[i].4 / k),
            ]);
        }
    }
    vec![t]
}
