//! One module per table/figure of the paper's evaluation section
//! (§4; see DESIGN.md §2 for the experiment index).
//!
//! Every experiment is a pure function of an [`ExpConfig`], returns
//! [`Table`]s, and is regenerable from the `sqs-exp` binary. Default
//! sizes are laptop-scale (the paper ran 10⁷–10¹⁰-element streams on
//! a 2013 server for weeks); `--n`, `--trials` and `--scale` let any
//! experiment run at paper scale. Shapes — who wins, by what factor,
//! where crossovers fall — are what the defaults preserve.

use std::path::PathBuf;

use crate::report::Table;

pub mod ablation;
pub mod claims;
pub mod engine_scaling;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tab34;
pub mod turnstile_perf;
pub mod window;
pub mod xcompare;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Base stream length for error-measuring experiments.
    pub n: usize,
    /// Trials for randomized algorithms (paper: 100).
    pub trials: usize,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Master seed; every cell derives its own.
    pub seed: u64,
    /// Cap for the Figure 7 stream-length sweep.
    pub max_stream_len: usize,
    /// Shrinks the throughput experiments to CI scale (`--quick`):
    /// same cells, smaller streams, so a gate run finishes in seconds.
    pub quick: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            trials: 5,
            out_dir: PathBuf::from("results"),
            seed: 0x5195_2013,
            max_stream_len: 10_000_000,
            quick: false,
        }
    }
}

impl ExpConfig {
    /// The ε sweep used by the error/space/time tradeoff figures,
    /// restricted to values meaningful at the configured `n`
    /// (`ε·n ≥ 50`, so the probe grid and the guarantees make sense).
    pub fn eps_sweep(&self) -> Vec<f64> {
        [
            0.05, 0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0002, 0.0001,
        ]
        .into_iter()
        .filter(|e| e * self.n as f64 >= 50.0)
        .collect()
    }

    /// A shorter sweep for the expensive turnstile cells.
    pub fn eps_sweep_turnstile(&self) -> Vec<f64> {
        [0.05, 0.02, 0.01, 0.005, 0.002, 0.001]
            .into_iter()
            .filter(|e| e * self.n as f64 >= 50.0)
            .collect()
    }
}

/// Every experiment id, in DESIGN.md order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "tab34",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "xcompare",
    "ablation",
    "claims",
    "engine",
    "engine-scaling",
    "turnstile-perf",
    "window",
];

/// Runs one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, cfg: &ExpConfig) -> Vec<Table> {
    match id {
        "fig4" => fig4::run(cfg),
        "fig5" => fig5::run(cfg),
        "fig6" => fig6::run(cfg),
        "fig7" => fig7::run(cfg),
        "fig8" => fig8::run(cfg),
        "tab34" => tab34::run(cfg),
        "fig9" => fig9::run(cfg),
        "fig10" => fig10::run(cfg),
        "fig11" => fig11::run(cfg),
        "fig12" => fig12::run(cfg),
        "xcompare" => xcompare::run(cfg),
        "ablation" => ablation::run(cfg),
        "claims" => claims::run(cfg),
        "engine" => engine_scaling::run(cfg),
        "engine-scaling" => engine_scaling::run_scaling(cfg),
        "turnstile-perf" => turnstile_perf::run(cfg),
        "window" => window::run(cfg),
        other => panic!("unknown experiment id: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_sweep_respects_n() {
        let mut cfg = ExpConfig {
            n: 10_000,
            ..ExpConfig::default()
        };
        assert!(cfg.eps_sweep().iter().all(|&e| e * 10_000.0 >= 50.0));
        cfg.n = 100_000_000;
        assert!(cfg.eps_sweep().contains(&0.0001));
    }

    #[test]
    fn all_ids_dispatch() {
        // Smoke: tiny config, every experiment must run end to end.
        let cfg = ExpConfig {
            n: 20_000,
            trials: 1,
            out_dir: std::env::temp_dir().join("sqs_exp_smoke"),
            seed: 1,
            max_stream_len: 50_000,
            quick: true,
        };
        for id in ALL_EXPERIMENTS {
            let tables = run(id, &cfg);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id}/{} has no rows", t.id);
            }
        }
    }
}
