//! Tables 3 & 4: tuning the Count-Sketch depth `d` for DCS — average
//! (Table 3) and maximum (Table 4) error across per-level sketch sizes
//! from 64 KB to 4096 KB, on uniform data over u = 2^32 (§4.3.1).
//!
//! Paper finding: `d = 7` is the sweet spot for both metrics (max
//! error prefers slightly deeper), which the paper then fixes for all
//! turnstile experiments. Errors are reported ×10⁻⁴ as in the paper.
//!
//! "Sketch size" is interpreted as the size of one level's `w × d`
//! counter array (4 bytes per counter), the natural unit the tuning
//! trades `w` against `d` within.

use super::ExpConfig;
use crate::report::Table;
use sqs_data::Uniform;
use sqs_turnstile::{dcs, TurnstileQuantiles};
use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
use sqs_util::rng::SplitMix64;

const DEPTHS: [usize; 6] = [3, 5, 7, 9, 11, 13];
const SIZES_KB: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 4096];
const LOG_U: u32 = 32;
/// The ε the error probe grid uses (the sketch geometry is set by
/// (size, d) directly, so ε only sets the φ grid density).
const PROBE_EPS: f64 = 0.01;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    // The full grid is 42 cells × trials at up to d=13 × 32 levels of
    // counter updates per insert; cap n so the sweep stays in minutes.
    let n = cfg.n.min(300_000);
    let data: Vec<u64> = Uniform::new(LOG_U, cfg.seed).take(n).collect();
    let oracle = ExactQuantiles::new(data.clone());
    let phis = probe_phis(PROBE_EPS);

    let headers: Vec<String> = std::iter::once("d".to_string())
        .chain(SIZES_KB.iter().map(|kb| format!("{kb}KB")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t3 = Table::new(
        "tab3",
        "DCS avg error (x1e-4) by depth d and per-level sketch size",
        &headers_ref,
    );
    let mut t4 = Table::new(
        "tab4",
        "DCS max error (x1e-4) by depth d and per-level sketch size",
        &headers_ref,
    );

    let mut seeds = SplitMix64::new(cfg.seed ^ 0x7AB34);
    for d in DEPTHS {
        let mut row3 = vec![d.to_string()];
        let mut row4 = vec![d.to_string()];
        for kb in SIZES_KB {
            let width = (kb * 1024 / 4) / d;
            let mut max_sum = 0.0;
            let mut avg_sum = 0.0;
            for _ in 0..cfg.trials.max(1) {
                let mut s = dcs::from_width_depth(width, d, LOG_U, seeds.next_u64());
                for &x in &data {
                    s.insert(x);
                }
                let answers: Vec<(f64, u64)> = phis
                    .iter()
                    .map(|&p| {
                        (
                            p,
                            s.quantile(p).expect(
                                "harness invariant: summary nonempty after feeding the stream",
                            ),
                        )
                    })
                    .collect();
                let (me, ae) = observed_errors(&oracle, &answers);
                max_sum += me;
                avg_sum += ae;
            }
            let trials = cfg.trials.max(1) as f64;
            row3.push(format!("{:.3}", avg_sum / trials * 1e4));
            row4.push(format!("{:.3}", max_sum / trials * 1e4));
        }
        t3.push_row(row3);
        t4.push_row(row4);
    }
    vec![t3, t4]
}
