//! Turnstile hot-path throughput baseline: scalar vs batched updates.
//!
//! Not a paper figure: this experiment pins down what the row-major
//! counter layout and the amortized batch hashing (PR 5) buy on the
//! paper's tuned turnstile configurations (d = 7, u = 2³²,
//! ε = 0.01 — §4.3.1), and records a machine-readable baseline that
//! `cargo xtask bench-check` diffs against so later PRs cannot
//! silently regress the hot path.
//!
//! For DCM and DCS it feeds the same uniform stream through
//! `insert` (scalar) and `insert_batch` (batched) on identically
//! seeded structures and reports items/s for both; the DCS+Post row
//! additionally pays the post-processing tree build, i.e. it measures
//! time-to-queryable. Because the batched path is required to be
//! *state-identical* to the scalar loop (see `docs/PERF.md`), the run
//! asserts structure equality and bit-identical quantile answers on
//! uniform (fig10a-style) and normal (fig11a-style) streams — a
//! throughput number from a divergent sketch would be meaningless.

use std::fmt::Write as _;
use std::time::Instant;

use super::ExpConfig;
use crate::report::{fnum, Table};
use sqs_data::synthetic::{Normal, Uniform};
use sqs_sketch::FrequencySketch;
use sqs_turnstile::{new_dcm, new_dcs, DyadicQuantiles, PostProcessed, TurnstileQuantiles};
use sqs_util::exact::probe_phis;

const LOG_U: u32 = 32;
const EPS: f64 = 0.01;
const DEPTH: usize = 7;
const BATCH: usize = 1024;
const ETA: f64 = 0.1;
/// `--quick` cap: large enough that per-item cost is steady-state,
/// small enough for a CI gate.
const QUICK_N: usize = 150_000;
/// Rank probes per query-side timing pass.
const RANK_PROBES: usize = 4096;
/// φ-grid size for the quantile-sweep timing pass.
const PHI_GRID: usize = 256;

/// One measured cell of the baseline grid.
struct Cell {
    algo: &'static str,
    mode: &'static str,
    n: usize,
    items_per_s: f64,
    ns_per_update: f64,
}

/// Scalar-vs-batched speedup for one algorithm.
struct Speedup {
    algo: &'static str,
    speedup: f64,
}

fn push_cell(cells: &mut Vec<Cell>, algo: &'static str, mode: &'static str, n: usize, secs: f64) {
    cells.push(Cell {
        algo,
        mode,
        n,
        items_per_s: n as f64 / secs,
        ns_per_update: secs * 1e9 / n as f64,
    });
}

/// Feeds `data` scalar-wise and batch-wise into identically seeded
/// structures (best of `trials` runs each), asserts the two end in
/// exactly the same state, and returns (scalar, batched) for the
/// query-identity checks.
fn measure<S, F>(
    algo: &'static str,
    make: F,
    data: &[u64],
    trials: usize,
    post: bool,
    cells: &mut Vec<Cell>,
    speedups: &mut Vec<Speedup>,
) -> (DyadicQuantiles<S>, DyadicQuantiles<S>)
where
    S: FrequencySketch + PartialEq,
    F: Fn() -> DyadicQuantiles<S>,
{
    let phis = probe_phis(EPS);
    let mut best_scalar = f64::INFINITY;
    let mut best_batched = f64::INFINITY;
    let mut scalar = make();
    let mut batched = make();
    for _ in 0..trials.max(1) {
        scalar = make();
        let t0 = Instant::now();
        for &x in data {
            scalar.insert(x);
        }
        if post {
            // Time-to-queryable: the Post row pays its tree build.
            let p = PostProcessed::new(&scalar, EPS, ETA);
            for &phi in &phis {
                std::hint::black_box(p.quantile(phi));
            }
        }
        best_scalar = best_scalar.min(t0.elapsed().as_secs_f64());

        batched = make();
        let t0 = Instant::now();
        for chunk in data.chunks(BATCH) {
            batched.insert_batch(chunk);
        }
        if post {
            let p = PostProcessed::new(&batched, EPS, ETA);
            for &phi in &phis {
                std::hint::black_box(p.quantile(phi));
            }
        }
        best_batched = best_batched.min(t0.elapsed().as_secs_f64());
    }
    assert!(
        scalar == batched,
        "{algo}: batched ingestion diverged from the scalar path"
    );
    push_cell(cells, algo, "scalar", data.len(), best_scalar);
    push_cell(cells, algo, "batched", data.len(), best_batched);
    speedups.push(Speedup {
        algo,
        speedup: best_scalar / best_batched,
    });
    (scalar, batched)
}

/// Times the query side on one already-loaded structure: a rank sweep
/// and a φ-sweep, each through the scalar per-query loop and the
/// batched kernels (`rank_signed_batch`, the lockstep `quantiles`),
/// best of `trials`. The batched paths are required to be
/// answer-identical, asserted here before the numbers are recorded.
/// The `*-rank` speedups are the ones `bench-check` gates; `n` counts
/// queries and `items_per_s`/`ns_per_update` read as queries/s and
/// ns/query in these rows.
fn measure_queries<S: FrequencySketch>(
    algo: &'static str,
    dq: &DyadicQuantiles<S>,
    seed: u64,
    trials: usize,
    cells: &mut Vec<Cell>,
    speedups: &mut Vec<Speedup>,
) {
    let xs: Vec<u64> = Uniform::new(LOG_U, seed ^ 0xbeef)
        .take(RANK_PROBES)
        .collect();
    #[allow(clippy::cast_precision_loss)]
    // ^ audited: PHI_GRID is tiny, the division is exact enough for a
    // probe grid.
    let phis: Vec<f64> = (1..=PHI_GRID)
        .map(|i| i as f64 / (PHI_GRID + 1) as f64)
        .collect();

    let scalar_ranks: Vec<i64> = xs.iter().map(|&x| dq.rank_signed(x)).collect();
    let mut batched_ranks = vec![0i64; xs.len()];
    dq.rank_signed_batch(&xs, &mut batched_ranks);
    assert_eq!(
        scalar_ranks, batched_ranks,
        "{algo}: batched rank sweep diverged from the scalar loop"
    );
    let scalar_quantiles: Vec<Option<u64>> = phis.iter().map(|&phi| dq.quantile(phi)).collect();
    assert_eq!(
        scalar_quantiles,
        dq.quantiles(&phis),
        "{algo}: lockstep quantile sweep diverged from per-phi bisection"
    );

    let mut best = [f64::INFINITY; 4];
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        for &x in &xs {
            std::hint::black_box(dq.rank_signed(x));
        }
        best[0] = best[0].min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        dq.rank_signed_batch(&xs, &mut batched_ranks);
        std::hint::black_box(&batched_ranks);
        best[1] = best[1].min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for &phi in &phis {
            std::hint::black_box(dq.quantile(phi));
        }
        best[2] = best[2].min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        std::hint::black_box(dq.quantiles(&phis));
        best[3] = best[3].min(t0.elapsed().as_secs_f64());
    }

    push_cell(cells, algo, "rank_scalar", xs.len(), best[0]);
    push_cell(cells, algo, "rank_batched", xs.len(), best[1]);
    push_cell(cells, algo, "quantile_scalar", phis.len(), best[2]);
    push_cell(cells, algo, "quantile_batched", phis.len(), best[3]);
    speedups.push(Speedup {
        algo: match algo {
            "DCM" => "DCM-rank",
            _ => "DCS-rank",
        },
        speedup: best[0] / best[1],
    });
    speedups.push(Speedup {
        algo: match algo {
            "DCM" => "DCM-quantile",
            _ => "DCS-quantile",
        },
        speedup: best[2] / best[3],
    });
}

/// Asserts bit-identical quantile answers between the scalar-fed and
/// batch-fed structures over the probe grid.
fn assert_queries_identical<S: FrequencySketch>(
    algo: &str,
    stream: &str,
    scalar: &DyadicQuantiles<S>,
    batched: &DyadicQuantiles<S>,
) {
    for phi in probe_phis(EPS) {
        assert_eq!(
            scalar.quantile(phi),
            batched.quantile(phi),
            "{algo} on {stream}: scalar and batched answers differ at phi {phi}"
        );
        let x = scalar.quantile(phi).unwrap_or(0);
        assert_eq!(
            scalar.rank_estimate(x),
            batched.rank_estimate(x),
            "{algo} on {stream}: rank estimates differ at {x}"
        );
    }
}

/// Mixed insert/delete identity: the batched turnstile path
/// (`update_batch` with signed deltas) must match the scalar
/// insert/delete loop exactly. Deletions target previously inserted
/// keys so the stream stays strict-turnstile.
fn assert_turnstile_identical<S, F>(algo: &str, make: F, data: &[u64])
where
    S: FrequencySketch + PartialEq,
    F: Fn() -> DyadicQuantiles<S>,
{
    let mut updates: Vec<(u64, i64)> = Vec::with_capacity(data.len() + data.len() / 4);
    for (i, &x) in data.iter().enumerate() {
        updates.push((x, 1));
        if i % 4 == 3 {
            updates.push((x, -1));
        }
    }
    let mut scalar = make();
    for &(x, delta) in &updates {
        if delta > 0 {
            scalar.insert(x);
        } else {
            scalar.delete(x);
        }
    }
    let mut batched = make();
    for chunk in updates.chunks(BATCH) {
        batched.update_batch(chunk);
    }
    assert!(
        scalar == batched,
        "{algo}: update_batch diverged from the insert/delete loop"
    );
}

/// Renders the grid as JSON by hand (the workspace builds offline — no
/// serde), stable key order, one object per line so `bench-check` can
/// line-scan it.
fn to_json(cells: &[Cell], speedups: &[Speedup], cfg: &ExpConfig, n: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"turnstile_perf\",");
    let _ = writeln!(s, "  \"n\": {n},");
    let _ = writeln!(s, "  \"quick\": {},", cfg.quick);
    let _ = writeln!(s, "  \"log_u\": {LOG_U},");
    let _ = writeln!(s, "  \"depth\": {DEPTH},");
    let _ = writeln!(s, "  \"eps\": {EPS},");
    let _ = writeln!(s, "  \"batch\": {BATCH},");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"state_identical\": true,");
    let _ = writeln!(s, "  \"queries_bit_identical\": true,");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"algo\": \"{}\", \"mode\": \"{}\", \"n\": {}, \
             \"items_per_s\": {:.1}, \"ns_per_update\": {:.2}}}{}",
            c.algo, c.mode, c.n, c.items_per_s, c.ns_per_update, comma
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"speedups\": [");
    for (i, sp) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"algo\": \"{}\", \"speedup\": {:.3}}}{}",
            sp.algo, sp.speedup, comma
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Runs the turnstile hot-path baseline: one table plus
/// `turnstile_perf_baseline.json` in the output directory.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let n = if cfg.quick { cfg.n.min(QUICK_N) } else { cfg.n };
    let trials = if cfg.quick {
        cfg.trials.clamp(1, 2)
    } else {
        cfg.trials.clamp(1, 3)
    };
    let uniform: Vec<u64> = Uniform::new(LOG_U, cfg.seed).take(n).collect();

    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    let seed = cfg.seed ^ 0x7e2f;

    let (dcm_s, dcm_b) = measure(
        "DCM",
        || new_dcm(EPS, LOG_U, seed),
        &uniform,
        trials,
        false,
        &mut cells,
        &mut speedups,
    );
    let (dcs_s, dcs_b) = measure(
        "DCS",
        || new_dcs(EPS, LOG_U, seed),
        &uniform,
        trials,
        false,
        &mut cells,
        &mut speedups,
    );
    // The Post row shares DCS's update path but pays the OLS tree
    // build before answering: time-to-queryable, not pure ingestion.
    let (post_s, post_b) = measure(
        "DCS+Post",
        || new_dcs(EPS, LOG_U, seed ^ 1),
        &uniform,
        1,
        true,
        &mut cells,
        &mut speedups,
    );

    // Query side: scalar vs batched rank and quantile sweeps on the
    // loaded structures (cutoff on — the ε-constructor default).
    measure_queries("DCM", &dcm_b, seed, trials, &mut cells, &mut speedups);
    measure_queries("DCS", &dcs_b, seed, trials, &mut cells, &mut speedups);

    // Query-identity sweeps: uniform (fig10a-style) on the structures
    // just built, normal σ = 0.15 (fig11a-style) on fresh smaller ones.
    assert_queries_identical("DCM", "uniform", &dcm_s, &dcm_b);
    assert_queries_identical("DCS", "uniform", &dcs_s, &dcs_b);
    let ps = PostProcessed::new(&post_s, EPS, ETA);
    let pb = PostProcessed::new(&post_b, EPS, ETA);
    for phi in probe_phis(EPS) {
        assert_eq!(
            ps.quantile(phi),
            pb.quantile(phi),
            "DCS+Post: scalar and batched answers differ at phi {phi}"
        );
    }

    let n_id = n.min(100_000);
    let normal: Vec<u64> = Normal::new(LOG_U, 0.15, cfg.seed ^ 0x11a)
        .take(n_id)
        .collect();
    {
        let mut s = new_dcm(EPS, LOG_U, seed ^ 2);
        let mut b = new_dcm(EPS, LOG_U, seed ^ 2);
        feed_both(&mut s, &mut b, &normal);
        assert_queries_identical("DCM", "normal", &s, &b);
    }
    {
        let mut s = new_dcs(EPS, LOG_U, seed ^ 2);
        let mut b = new_dcs(EPS, LOG_U, seed ^ 2);
        feed_both(&mut s, &mut b, &normal);
        assert_queries_identical("DCS", "normal", &s, &b);
    }

    // Signed-delta identity on a strict-turnstile mixed stream.
    assert_turnstile_identical("DCM", || new_dcm(EPS, LOG_U, seed ^ 3), &normal);
    assert_turnstile_identical("DCS", || new_dcs(EPS, LOG_U, seed ^ 3), &normal);

    let mut t = Table::new(
        "turnstile_perf",
        "Turnstile hot path: scalar vs batched update throughput (d=7, u=2^32)",
        &["algo", "mode", "n", "items_per_s", "ns_per_update"],
    );
    for c in &cells {
        t.push_row(vec![
            c.algo.to_string(),
            c.mode.to_string(),
            c.n.to_string(),
            fnum(c.items_per_s),
            fnum(c.ns_per_update),
        ]);
    }

    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!(
            "turnstile_perf: cannot create {}: {e}",
            cfg.out_dir.display()
        );
    } else if let Err(e) = std::fs::write(
        cfg.out_dir.join("turnstile_perf_baseline.json"),
        to_json(&cells, &speedups, cfg, n),
    ) {
        eprintln!("turnstile_perf: cannot write turnstile_perf_baseline.json: {e}");
    }

    vec![t]
}

/// Feeds the same stream scalar-wise into `s` and batch-wise into `b`.
fn feed_both<S: FrequencySketch>(
    s: &mut DyadicQuantiles<S>,
    b: &mut DyadicQuantiles<S>,
    data: &[u64],
) {
    for &x in data {
        s.insert(x);
    }
    for chunk in data.chunks(BATCH) {
        b.insert_batch(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_grid_is_complete_and_batched_not_slower() {
        let cfg = ExpConfig {
            n: 30_000,
            trials: 1,
            out_dir: std::env::temp_dir().join("sqs_turnstile_perf_test"),
            seed: 7,
            max_stream_len: 30_000,
            quick: true,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // Three algorithms × {scalar, batched} update cells, plus
        // DCM/DCS × {rank, quantile} × {scalar, batched} query cells.
        assert_eq!(t.rows.len(), 14);
        for row in &t.rows {
            let ips: f64 = row[3].parse().expect("items_per_s cell parses");
            assert!(ips > 0.0, "row {row:?}: non-positive throughput");
        }
        let json = std::fs::read_to_string(cfg.out_dir.join("turnstile_perf_baseline.json"))
            .expect("baseline json written");
        assert!(json.contains("\"experiment\": \"turnstile_perf\""));
        assert!(json.contains("\"algo\": \"DCS\", \"mode\": \"batched\""));
        assert!(json.contains("\"algo\": \"DCM\", \"mode\": \"rank_batched\""));
        assert!(json.contains("\"algo\": \"DCS-rank\""));
        assert!(json.contains("\"state_identical\": true"));
    }
}
