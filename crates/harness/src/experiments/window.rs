//! Windowed-quantile merge-latency experiment (`sqs-exp window`).
//!
//! Not a paper figure: the paper's summaries are whole-stream; this
//! experiment documents what the windowing layer (`sqs-window`) costs
//! on top of them, and what the pre-aggregated rollups buy back.
//!
//! One [`WindowRing`] per rollup setting is filled to a fixed bucket
//! population, then each window span is queried repeatedly with the
//! merge cache deliberately invalidated between queries (a one-value
//! ingest ticks the ring version), so every sample pays the real
//! merge-on-demand cost. The sweep crosses:
//!
//! * window span ∈ {1, 4, 16, 64, 256} buckets (sliding), and
//! * `rollup_factor` ∈ {0 = disabled, 16} —
//!
//! and reports mean merge+query latency, the rollup ledger, and the
//! max rank error of every answer against an exact oracle of the
//! covered buckets (the accuracy column is the contract: rollups must
//! not cost ε). Output: the `window_baseline` table and
//! `results/window_baseline.json`, one cell object per line.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use super::ExpConfig;
use crate::report::{fnum, Table};
use sqs_core::random::RandomSketch;
use sqs_util::audit::CheckInvariants;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::Xoshiro256pp;
use sqs_window::{LatePolicy, WindowConfig, WindowRing, WindowSpec};

const EPS: f64 = 0.05;
/// One logical second per bucket; the arithmetic only needs a width.
const BUCKET: u64 = 1_000_000_000;
/// Sliding spans swept, in buckets.
const SPANS: [u64; 5] = [1, 4, 16, 64, 256];
/// Ring retention: the longest span plus headroom for the open bucket.
const RETENTION: u64 = 320;
/// Rollup settings crossed with the span sweep (0 disables rollups).
const ROLLUP_FACTORS: [u64; 2] = [0, 16];

/// One measured cell of the span × rollup grid.
struct Cell {
    rollup_factor: u64,
    span_buckets: u64,
    /// Mass of the answered window.
    n: u64,
    merge_us_mean: f64,
    /// Rollup ledger delta across this cell's queries.
    rollup_hits: u64,
    max_rank_err: f64,
}

/// Fills a fresh ring (and its exact mirror) to `RETENTION` buckets of
/// `per_bucket` values each, ending mid-bucket so the newest bucket is
/// open like a live ring's would be.
fn fill_ring(
    rollup_factor: u64,
    per_bucket: usize,
    seed: u64,
) -> (WindowRing<RandomSketch<u64>>, VecDeque<Vec<u64>>, u64) {
    let cfg = WindowConfig {
        bucket_nanos: BUCKET,
        retention_buckets: RETENTION,
        rollup_factor,
        late_policy: LatePolicy::Drop,
    };
    let mut ring = WindowRing::new(cfg, move |bucket| RandomSketch::new(EPS, seed ^ bucket));
    let mut mirror: VecDeque<Vec<u64>> = VecDeque::new();
    let mut rng = Xoshiro256pp::new(seed ^ 0x31D0);
    for idx in 0..RETENTION {
        let now = idx * BUCKET + BUCKET / 2;
        let batch: Vec<u64> = (0..per_bucket).map(|_| rng.next_below(1 << 20)).collect();
        ring.ingest(now, &batch, now);
        if mirror.len() as u64 == RETENTION {
            mirror.pop_front();
        }
        mirror.push_back(batch);
    }
    let now = (RETENTION - 1) * BUCKET + BUCKET / 2;
    (ring, mirror, now)
}

/// Exact values covered by a sliding span of `m` buckets ending at the
/// open bucket (the newest `m` entries of the mirror).
fn exact_window(mirror: &VecDeque<Vec<u64>>, m: u64) -> Vec<u64> {
    let take = usize::try_from(m).unwrap_or(usize::MAX);
    mirror
        .iter()
        .rev()
        .take(take)
        .flat_map(|b| b.iter().copied())
        .collect()
}

/// Runs the span sweep for one rollup setting.
fn measure(rollup_factor: u64, cfg: &ExpConfig, out: &mut Vec<Cell>) {
    let per_bucket = if cfg.quick { 200 } else { 2_000 };
    let trials = cfg.trials.max(3);
    let (mut ring, mut mirror, mut now) = fill_ring(rollup_factor, per_bucket, cfg.seed);
    let phis = probe_phis(EPS);
    let mut rng = Xoshiro256pp::new(cfg.seed ^ 0xCAFE);
    for &span in &SPANS {
        let spec = WindowSpec::sliding(span * BUCKET);
        let hits_before = ring.stats().rollup_hits;
        let mut total_s = 0.0f64;
        let mut max_err = 0.0f64;
        let mut last_n = 0u64;
        for _ in 0..trials {
            // One-value ingest into the open bucket: ticks the ring
            // version so the next query cannot hit the merge cache.
            let x = rng.next_below(1 << 20);
            ring.ingest(now, &[x], now);
            if let Some(open) = mirror.back_mut() {
                open.push(x);
            }
            now += 1; // stays inside the open bucket
            let start = Instant::now();
            let answer = ring
                .query(spec, &phis, now)
                .expect("invariant: swept spans fit the ring's retention");
            total_s += start.elapsed().as_secs_f64();
            let oracle = ExactQuantiles::new(exact_window(&mirror, span));
            assert_eq!(answer.n, oracle.len() as u64, "window mass vs exact mirror");
            last_n = answer.n;
            for (phi, ans) in phis.iter().zip(&answer.answers) {
                if let Some(ans) = ans {
                    max_err = max_err.max(oracle.quantile_error(*phi, *ans));
                }
            }
        }
        ring.assert_invariants();
        out.push(Cell {
            rollup_factor,
            span_buckets: span,
            n: last_n,
            merge_us_mean: total_s / trials as f64 * 1e6,
            rollup_hits: ring.stats().rollup_hits - hits_before,
            max_rank_err: max_err,
        });
    }
}

/// Renders the grid as JSON by hand (offline workspace — no serde),
/// one cell object per line, stable key order.
fn baseline_json(cells: &[Cell], cfg: &ExpConfig, per_bucket: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"experiment\": \"window\",");
    let _ = writeln!(s, "  \"bucket_nanos\": {BUCKET},");
    let _ = writeln!(s, "  \"retention_buckets\": {RETENTION},");
    let _ = writeln!(s, "  \"values_per_bucket\": {per_bucket},");
    let _ = writeln!(s, "  \"eps\": {EPS},");
    let _ = writeln!(s, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"rollup_factor\": {}, \"span_buckets\": {}, \"n\": {}, \
             \"merge_us_mean\": {:.2}, \"rollup_hits\": {}, \"max_rank_err\": {:.6}}}{}",
            c.rollup_factor,
            c.span_buckets,
            c.n,
            c.merge_us_mean,
            c.rollup_hits,
            c.max_rank_err,
            comma
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Runs the window merge-latency sweep: the `window_baseline` table
/// plus `window_baseline.json` in the output directory.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let per_bucket = if cfg.quick { 200 } else { 2_000 };
    let mut cells = Vec::new();
    for &factor in &ROLLUP_FACTORS {
        measure(factor, cfg, &mut cells);
    }

    let mut t = Table::new(
        "window_baseline",
        "Windowed quantiles: uncached merge+query latency vs window span (rollups off/on)",
        &[
            "rollup_factor",
            "span_buckets",
            "n",
            "merge_us_mean",
            "rollup_hits",
            "max_rank_err",
        ],
    );
    for c in &cells {
        t.push_row(vec![
            c.rollup_factor.to_string(),
            c.span_buckets.to_string(),
            c.n.to_string(),
            fnum(c.merge_us_mean),
            c.rollup_hits.to_string(),
            fnum(c.max_rank_err),
        ]);
    }

    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("window: cannot create {}: {e}", cfg.out_dir.display());
    } else if let Err(e) = std::fs::write(
        cfg.out_dir.join("window_baseline.json"),
        baseline_json(&cells, cfg, per_bucket),
    ) {
        eprintln!("window: cannot write window_baseline.json: {e}");
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_grid_is_accurate_and_rollups_bite() {
        let cfg = ExpConfig {
            n: 20_000,
            trials: 2,
            out_dir: std::env::temp_dir().join("sqs_window_exp_test"),
            seed: 7,
            max_stream_len: 20_000,
            quick: true,
        };
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = tables.first().expect("window table present");
        assert_eq!(t.rows.len(), ROLLUP_FACTORS.len() * SPANS.len());
        for row in &t.rows {
            let err: f64 = row.get(5).and_then(|c| c.parse().ok()).expect("err cell");
            assert!(err <= EPS, "row {row:?}: err {err} > eps {EPS}");
        }
        // The long spans must actually exercise rollups when enabled.
        let long_rollup_hits: u64 = t
            .rows
            .iter()
            .filter(|r| r.first().is_some_and(|f| f == "16"))
            .filter(|r| r.get(1).is_some_and(|s| s == "256"))
            .filter_map(|r| r.get(4).and_then(|c| c.parse::<u64>().ok()))
            .sum();
        assert!(long_rollup_hits > 0, "256-bucket span must hit rollups");
        let json = std::fs::read_to_string(cfg.out_dir.join("window_baseline.json"))
            .expect("baseline json written");
        assert!(json.contains("\"experiment\": \"window\""));
        assert!(json.contains("\"rollup_factor\": 0"));
        assert!(json.contains("\"rollup_factor\": 16"));
    }
}
