//! Cross-model comparison (§4.3.4's closing remark): to reach the same
//! accuracy, the best turnstile algorithm pays roughly an order of
//! magnitude more space and time than the best cash-register one —
//! the measured price of supporting deletions.

use super::ExpConfig;
use crate::report::{fkb, fnum, Table};
use crate::runner::{run_cash_cell, run_turnstile_cell, CashAlgo, TurnstileAlgo};
use sqs_data::mpcat::{Mpcat, MPCAT_LOG_U};

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let data: Vec<u64> = Mpcat::new(cfg.seed).take(cfg.n).collect();
    let mut t = Table::new(
        "xcompare",
        "cash-register vs turnstile at equal eps (MPCAT-OBS surrogate)",
        &["model", "algo", "eps", "avg_err", "space_kb", "update_ns"],
    );
    let mut eps_list: Vec<f64> = [0.01, 0.001]
        .into_iter()
        .filter(|e| e * cfg.n as f64 >= 50.0)
        .collect();
    if eps_list.is_empty() {
        eps_list.push(0.01);
    }
    for &eps in &eps_list {
        for algo in [CashAlgo::GkArray, CashAlgo::Random] {
            let c = run_cash_cell(algo, &data, eps, MPCAT_LOG_U, cfg.trials, cfg.seed ^ 0xC0);
            t.push_row(vec![
                "cash".into(),
                c.algo.into(),
                fnum(eps),
                fnum(c.avg_err),
                fkb(c.space_bytes),
                fnum(c.update_ns),
            ]);
        }
        for algo in [TurnstileAlgo::Dcs, TurnstileAlgo::Post(0.1)] {
            let c = run_turnstile_cell(algo, &data, eps, MPCAT_LOG_U, cfg.trials, cfg.seed ^ 0xC1);
            t.push_row(vec![
                "turnstile".into(),
                c.algo.into(),
                fnum(eps),
                fnum(c.avg_err),
                fkb(c.space_bytes),
                fnum(c.update_ns),
            ]);
        }
    }
    vec![t]
}
