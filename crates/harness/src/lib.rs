//! Measurement harness for the quantile study.
//!
//! Implements §4.1.2 of the paper: for each (algorithm × data set × ε)
//! cell, five measurements — the ε parameter, observed **max** error
//! (Kolmogorov–Smirnov divergence), observed **average** error
//! (total-variation-related), maximum **space** over time (4 bytes per
//! word), and amortized per-element **update time** — averaged over
//! trials for randomized algorithms.
//!
//! [`experiments`] contains one module per figure/table of the
//! evaluation section; the `sqs-exp` binary regenerates any of them
//! from the command line (see DESIGN.md §2 for the index, and
//! EXPERIMENTS.md for paper-vs-measured records).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod report;
pub mod runner;

pub use report::Table;
pub use runner::{CashAlgo, CashCell, TurnstileAlgo, TurnstileCell};
