//! Terminal plots of the result CSVs: `sqs-exp plot <figure>` renders
//! the same series the paper's figures draw, as an ASCII scatter with
//! optional log axes — enough to eyeball the crossovers and slopes the
//! study is about without leaving the terminal.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (non-positive points are dropped).
    Log,
}

/// One renderable figure: series of (x, y) points keyed by label.
#[derive(Debug, Clone)]
pub struct Plot {
    /// Plot title.
    pub title: String,
    /// X-axis label and scale.
    pub x: (String, Scale),
    /// Y-axis label and scale.
    pub y: (String, Scale),
    /// Labeled series.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

/// Marker glyphs assigned to series in insertion order.
const MARKS: &[char] = &['o', '+', 'x', '*', '#', '@', '%', '&', '$', '~'];

impl Plot {
    /// Loads a plot from a results CSV: groups rows by `label_col` and
    /// takes (`x_col`, `y_col`) points.
    pub fn from_csv(
        dir: &Path,
        id: &str,
        label_col: &str,
        x_col: &str,
        y_col: &str,
        x_scale: Scale,
        y_scale: Scale,
    ) -> Result<Plot, String> {
        let path = dir.join(format!("{id}.csv"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut lines = text.lines();
        let headers: Vec<&str> = lines.next().ok_or("empty csv")?.split(',').collect();
        let col = |name: &str| -> Result<usize, String> {
            headers
                .iter()
                .position(|h| *h == name)
                .ok_or_else(|| format!("{id}.csv has no column {name}"))
        };
        let (li, xi, yi) = (col(label_col)?, col(x_col)?, col(y_col)?);
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for line in lines {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() <= li.max(xi).max(yi) {
                continue;
            }
            if let (Ok(x), Ok(y)) = (cells[xi].parse::<f64>(), cells[yi].parse::<f64>()) {
                series
                    .entry(cells[li].to_string())
                    .or_default()
                    .push((x, y));
            }
        }
        if series.is_empty() {
            return Err(format!("{id}.csv produced no plottable points"));
        }
        Ok(Plot {
            title: id.to_string(),
            x: (x_col.to_string(), x_scale),
            y: (y_col.to_string(), y_scale),
            series,
        })
    }

    /// Renders the plot as `width × height` ASCII (plus legend/axes).
    pub fn render(&self, width: usize, height: usize) -> String {
        let width = width.clamp(20, 200);
        let height = height.clamp(8, 60);
        let tx = |v: f64, s: Scale| match s {
            Scale::Linear => Some(v),
            Scale::Log => (v > 0.0).then(|| v.log10()),
        };
        // Collect transformed points per series.
        let pts: Vec<(usize, Vec<(f64, f64)>)> = self
            .series
            .values()
            .enumerate()
            .map(|(i, ps)| {
                let tps = ps
                    .iter()
                    .filter_map(|&(x, y)| Some((tx(x, self.x.1)?, tx(y, self.y.1)?)))
                    .collect();
                (i, tps)
            })
            .collect();
        let all: Vec<(f64, f64)> = pts.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        if all.is_empty() {
            return format!("== {} — no plottable points\n", self.title);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 - x0 < 1e-12 {
            x1 = x0 + 1.0;
        }
        if y1 - y0 < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, ps) in &pts {
            let mark = MARKS[si % MARKS.len()];
            for &(x, y) in ps {
                let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
                let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                let col = cx.min(width - 1);
                // Later series overwrite; collisions show the last mark.
                grid[row][col] = mark;
            }
        }
        let unscale = |v: f64, s: Scale| match s {
            Scale::Linear => v,
            Scale::Log => 10f64.powf(v),
        };
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} vs {}", self.title, self.y.0, self.x.0);
        let _ = writeln!(
            out,
            "{:>11} +{}",
            fmt_tick(unscale(y1, self.y.1)),
            "-".repeat(width)
        );
        for (i, row) in grid.iter().enumerate() {
            let label = if i == height - 1 {
                format!("{:>11} |", fmt_tick(unscale(y0, self.y.1)))
            } else {
                format!("{:>11} |", "")
            };
            let _ = writeln!(out, "{label}{}", row.iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "{:>13}{:>width$}",
            fmt_tick(unscale(x0, self.x.1)),
            fmt_tick(unscale(x1, self.x.1)),
            width = width - 6
        );
        let _ = writeln!(out, "  scales: x={:?} y={:?}", self.x.1, self.y.1);
        for (i, name) in self.series.keys().enumerate() {
            let _ = writeln!(out, "  {} {}", MARKS[i % MARKS.len()], name);
        }
        out
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 10_000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else {
        format!("{v:.3}")
    }
}

/// The plottable figures: id → (csv, label col, x col, y col, scales).
pub const PLOTS: &[(&str, &str, &str, &str, &str, Scale, Scale)] = &[
    (
        "fig5a",
        "fig5a",
        "algo",
        "eps",
        "max_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig5b",
        "fig5b",
        "algo",
        "eps",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig5c",
        "fig5c",
        "algo",
        "space_kb",
        "max_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig5d",
        "fig5d",
        "algo",
        "space_kb",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig5e",
        "fig5e",
        "algo",
        "update_ns",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig5f",
        "fig5f",
        "algo",
        "space_kb",
        "update_ns",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig6a",
        "fig6a",
        "algo",
        "space_kb",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig6b",
        "fig6b",
        "algo",
        "update_ns",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig7a",
        "fig7a",
        "algo",
        "n",
        "update_ns",
        Scale::Log,
        Scale::Linear,
    ),
    (
        "fig7b",
        "fig7b",
        "algo",
        "n",
        "space_kb",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig9",
        "fig9",
        "eps",
        "eta",
        "rel_err",
        Scale::Log,
        Scale::Linear,
    ),
    (
        "fig10a",
        "fig10a",
        "algo",
        "eps",
        "max_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig10b",
        "fig10b",
        "algo",
        "eps",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig10c",
        "fig10c",
        "algo",
        "space_kb",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig10d",
        "fig10d",
        "algo",
        "update_ns",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig10e",
        "fig10e",
        "algo",
        "space_kb",
        "update_ns",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig11a",
        "fig11a",
        "algo",
        "space_kb",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig11b",
        "fig11b",
        "algo",
        "update_ns",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig12a",
        "fig12a",
        "algo",
        "eps",
        "max_err",
        Scale::Log,
        Scale::Log,
    ),
    (
        "fig12b",
        "fig12b",
        "algo",
        "eps",
        "avg_err",
        Scale::Log,
        Scale::Log,
    ),
];

/// Renders a figure by id from `dir`, or explains what's available.
pub fn plot_by_id(dir: &Path, id: &str, width: usize, height: usize) -> Result<String, String> {
    let spec = PLOTS.iter().find(|(pid, ..)| *pid == id).ok_or_else(|| {
        format!(
            "no plot spec for {id}; available: {}",
            PLOTS.iter().map(|p| p.0).collect::<Vec<_>>().join(" ")
        )
    })?;
    let (_, csv, label, x, y, xs, ys) = *spec;
    Ok(Plot::from_csv(dir, csv, label, x, y, xs, ys)?.render(width, height))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(dir: &Path) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(
            dir.join("fig5a.csv"),
            "algo,eps,max_err\nA,0.1,0.05\nA,0.01,0.005\nB,0.1,0.02\nB,0.01,0.002\n",
        )
        .unwrap();
    }

    #[test]
    fn renders_points_and_legend() {
        let dir = std::env::temp_dir().join("sqs_plot_test");
        write_csv(&dir);
        let out = plot_by_id(&dir, "fig5a", 60, 16).unwrap();
        assert!(out.contains("fig5a"));
        assert!(out.contains("o A"));
        assert!(out.contains("+ B"));
        assert!(out.contains('o'), "marks plotted");
        assert!(out.lines().count() > 16);
    }

    #[test]
    fn unknown_plot_lists_options() {
        let dir = std::env::temp_dir().join("sqs_plot_test2");
        let err = plot_by_id(&dir, "nope", 40, 10).unwrap_err();
        assert!(err.contains("available"));
        assert!(err.contains("fig10c"));
    }

    #[test]
    fn missing_csv_is_a_clean_error() {
        let dir = std::env::temp_dir().join("sqs_plot_test3");
        let err = plot_by_id(&dir, "fig7a", 40, 10).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn log_scale_drops_nonpositive() {
        let dir = std::env::temp_dir().join("sqs_plot_test4");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("fig5a.csv"),
            "algo,eps,max_err\nA,0.1,0\nA,0.01,0.005\n",
        )
        .unwrap();
        let out = plot_by_id(&dir, "fig5a", 40, 10).unwrap();
        assert!(out.contains("fig5a")); // renders the surviving point
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let p = Plot {
            title: "t".into(),
            x: ("x".into(), Scale::Linear),
            y: ("y".into(), Scale::Linear),
            series: [("s".to_string(), vec![(1.0, 2.0), (1.0, 2.0)])]
                .into_iter()
                .collect(),
        };
        let out = p.render(30, 10);
        assert!(out.contains("o s"));
    }
}
