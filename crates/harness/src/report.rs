//! Result tables: aligned text to stdout, CSV to `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A result table for one experiment (or one panel of one figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `fig5c` (also the CSV file stem).
    pub id: String,
    /// Human description, printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted values (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity doesn't match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        fs::write(dir.join(format!("{}.csv", self.id)), out)
    }

    /// Prints to stdout and writes the CSV (the standard emit path).
    pub fn emit(&self, dir: &Path) -> io::Result<()> {
        println!("{}", self.render());
        self.write_csv(dir)
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats a byte count as KB with one decimal.
pub fn fkb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_csv_roundtrips() {
        let mut t = Table::new("t1", "demo", &["a", "long_header", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "200000".into(), "3.5".into()]);
        let r = t.render();
        assert!(r.contains("long_header"));
        assert!(r.lines().count() >= 5);
        let dir = std::env::temp_dir().join("sqs_report_test");
        t.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        assert_eq!(csv.lines().next().unwrap(), "a,long_header,c");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("t2", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.5), "0.5000");
        assert!(fnum(1e-6).contains('e'));
        assert_eq!(fkb(2048), "2.0");
    }
}
