//! The per-cell measurement machinery: build an algorithm, feed it a
//! stream, take the paper's five measurements (§4.1.2).

use std::time::Instant;

use sqs_core::{
    gk::{GkAdaptive, GkArray, GkTheory},
    mrl98::Mrl98,
    mrl99::Mrl99,
    qdigest::QDigest,
    random::RandomSketch,
    sampled::ReservoirQuantiles,
    QuantileSummary,
};
use sqs_turnstile::{new_dcm, new_dcs, new_rss, PostProcessed, TurnstileQuantiles};
use sqs_util::exact::{observed_errors, probe_phis, ExactQuantiles};
use sqs_util::rng::SplitMix64;
use sqs_util::space::SpaceTracker;

/// How many evenly-spaced points along the stream the space tracker
/// samples (§4.1.2 measures the max over time).
const SPACE_SAMPLES: usize = 64;

/// The cash-register algorithms of the study (§2), by paper name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CashAlgo {
    /// GK with the analyzed banding COMPRESS.
    GkTheory,
    /// GK with the heap-located one-removal-per-insert heuristic.
    GkAdaptive,
    /// The buffered array GK (journal's new variant).
    GkArray,
    /// The paper's simplified randomized summary.
    Random,
    /// Manku–Rajagopalan–Lindsay '99.
    Mrl99,
    /// Manku–Rajagopalan–Lindsay '98 (deterministic, needs n hint).
    Mrl98,
    /// The fixed-universe q-digest.
    FastQDigest,
    /// The reservoir-sampling baseline.
    Reservoir,
}

impl CashAlgo {
    /// All algorithms, in the paper's usual legend order.
    pub const ALL: [CashAlgo; 8] = [
        CashAlgo::GkTheory,
        CashAlgo::GkAdaptive,
        CashAlgo::GkArray,
        CashAlgo::Random,
        CashAlgo::Mrl99,
        CashAlgo::Mrl98,
        CashAlgo::FastQDigest,
        CashAlgo::Reservoir,
    ];

    /// The paper's headline competitors (Figure 5's legend).
    pub const HEADLINE: [CashAlgo; 5] = [
        CashAlgo::GkAdaptive,
        CashAlgo::GkArray,
        CashAlgo::Random,
        CashAlgo::Mrl99,
        CashAlgo::FastQDigest,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            CashAlgo::GkTheory => "GKTheory",
            CashAlgo::GkAdaptive => "GKAdaptive",
            CashAlgo::GkArray => "GKArray",
            CashAlgo::Random => "Random",
            CashAlgo::Mrl99 => "MRL99",
            CashAlgo::Mrl98 => "MRL98",
            CashAlgo::FastQDigest => "FastQDigest",
            CashAlgo::Reservoir => "Reservoir",
        }
    }

    /// Whether the algorithm is randomized (needs trial averaging).
    pub fn randomized(&self) -> bool {
        matches!(
            self,
            CashAlgo::Random | CashAlgo::Mrl99 | CashAlgo::Reservoir
        )
    }

    /// Instantiates the summary. `log_u` parameterizes the fixed-
    /// universe q-digest; `n_hint` parameterizes MRL98; `seed` the
    /// randomized algorithms.
    pub fn build(
        &self,
        eps: f64,
        log_u: u32,
        n_hint: u64,
        seed: u64,
    ) -> Box<dyn QuantileSummary<u64>> {
        match self {
            CashAlgo::GkTheory => Box::new(GkTheory::new(eps)),
            CashAlgo::GkAdaptive => Box::new(GkAdaptive::new(eps)),
            CashAlgo::GkArray => Box::new(GkArray::new(eps)),
            CashAlgo::Random => Box::new(RandomSketch::new(eps, seed)),
            CashAlgo::Mrl99 => Box::new(Mrl99::new(eps, seed)),
            CashAlgo::Mrl98 => Box::new(Mrl98::new(eps, n_hint.max(1))),
            CashAlgo::FastQDigest => Box::new(QDigest::new(eps, log_u)),
            CashAlgo::Reservoir => Box::new(ReservoirQuantiles::new(eps, seed)),
        }
    }
}

/// The five measurements for one (algorithm × data × ε) cell,
/// averaged over trials.
#[derive(Debug, Clone)]
pub struct CashCell {
    /// Algorithm name.
    pub algo: &'static str,
    /// The ε parameter the algorithm was built with.
    pub eps: f64,
    /// Stream length.
    pub n: usize,
    /// Observed maximum error (KS divergence), §4.1.2.
    pub max_err: f64,
    /// Observed average error, §4.1.2.
    pub avg_err: f64,
    /// Maximum space over time, bytes (paper accounting).
    pub space_bytes: usize,
    /// Amortized wall-clock update time, nanoseconds per element.
    pub update_ns: f64,
}

/// Runs one cash-register cell: feeds `data`, samples space, measures
/// update time, probes the φ grid, scores against the exact oracle.
///
/// Randomized algorithms are averaged over `trials` seeded runs
/// (deterministic ones run once regardless).
pub fn run_cash_cell(
    algo: CashAlgo,
    data: &[u64],
    eps: f64,
    log_u: u32,
    trials: usize,
    seed: u64,
) -> CashCell {
    assert!(!data.is_empty(), "empty stream");
    let trials = if algo.randomized() { trials.max(1) } else { 1 };
    let oracle = ExactQuantiles::new(data.to_vec());
    let stride = (data.len() / SPACE_SAMPLES).max(1);

    let mut seeds = SplitMix64::new(seed);
    let mut max_err_sum = 0.0;
    let mut avg_err_sum = 0.0;
    let mut space_max = 0usize;
    let mut ns_sum = 0.0;
    for _ in 0..trials {
        let mut s = algo.build(eps, log_u, data.len() as u64, seeds.next_u64());
        let mut tracker = SpaceTracker::new();
        let t0 = Instant::now();
        for chunk in data.chunks(stride) {
            s.extend_from_slice(chunk);
            tracker.observe(s.space_bytes());
        }
        ns_sum += t0.elapsed().as_nanos() as f64 / data.len() as f64;
        space_max = space_max.max(tracker.max_bytes());

        let answers = s.quantile_grid(eps);
        assert!(!answers.is_empty(), "nonempty stream must answer the grid");
        let (me, ae) = observed_errors(&oracle, &answers);
        max_err_sum += me;
        avg_err_sum += ae;
    }
    CashCell {
        algo: algo.name(),
        eps,
        n: data.len(),
        max_err: max_err_sum / trials as f64,
        avg_err: avg_err_sum / trials as f64,
        space_bytes: space_max,
        update_ns: ns_sum / trials as f64,
    }
}

/// Runs a performance-only cell over a streaming generator (no oracle,
/// no materialization) — used by the stream-length scaling experiment
/// (Figure 7) where `n` outgrows memory.
pub fn run_cash_perf(
    algo: CashAlgo,
    stream: impl Iterator<Item = u64>,
    n: usize,
    eps: f64,
    log_u: u32,
    seed: u64,
) -> CashCell {
    let mut s = algo.build(eps, log_u, n as u64, seed);
    let mut tracker = SpaceTracker::new();
    let stride = (n / SPACE_SAMPLES).max(1);
    let t0 = Instant::now();
    for (i, x) in stream.take(n).enumerate() {
        s.insert(x);
        if i % stride == 0 {
            tracker.observe(s.space_bytes());
        }
    }
    let ns = t0.elapsed().as_nanos() as f64 / n as f64;
    tracker.observe(s.space_bytes());
    CashCell {
        algo: algo.name(),
        eps,
        n,
        max_err: f64::NAN,
        avg_err: f64::NAN,
        space_bytes: tracker.max_bytes(),
        update_ns: ns,
    }
}

/// The turnstile algorithms of the study (§3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TurnstileAlgo {
    /// Dyadic Count-Min.
    Dcm,
    /// Dyadic Count-Sketch (paper's new variant).
    Dcs,
    /// DCS + OLS post-processing with truncation constant η.
    Post(f64),
    /// Dyadic random-subset-sum.
    Rss,
}

impl TurnstileAlgo {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            TurnstileAlgo::Dcm => "DCM",
            TurnstileAlgo::Dcs => "DCS",
            TurnstileAlgo::Post(_) => "Post",
            TurnstileAlgo::Rss => "RSS",
        }
    }
}

/// Measurements for one turnstile cell.
#[derive(Debug, Clone)]
pub struct TurnstileCell {
    /// Algorithm name.
    pub algo: &'static str,
    /// The ε parameter.
    pub eps: f64,
    /// Stream length (insertions).
    pub n: usize,
    /// Observed maximum error.
    pub max_err: f64,
    /// Observed average error.
    pub avg_err: f64,
    /// Structure size, bytes (fixed at construction for sketches).
    pub space_bytes: usize,
    /// Amortized update time, ns/element.
    pub update_ns: f64,
}

/// Runs one turnstile cell on an insert-only stream (§4.3: deletions
/// don't affect accuracy, so accuracy cells use insertions; deletion
/// correctness is covered by tests and the churn throughput bench).
pub fn run_turnstile_cell(
    algo: TurnstileAlgo,
    data: &[u64],
    eps: f64,
    log_u: u32,
    trials: usize,
    seed: u64,
) -> TurnstileCell {
    assert!(!data.is_empty(), "empty stream");
    let oracle = ExactQuantiles::new(data.to_vec());
    let phis = probe_phis(eps);

    let mut seeds = SplitMix64::new(seed);
    let mut max_err_sum = 0.0;
    let mut avg_err_sum = 0.0;
    let mut space = 0usize;
    let mut ns_sum = 0.0;
    let trials = trials.max(1);
    for _ in 0..trials {
        let s = seeds.next_u64();
        let (me, ae, sp, ns) = run_turnstile_once(algo, data, eps, log_u, s, &oracle, &phis);
        max_err_sum += me;
        avg_err_sum += ae;
        space = space.max(sp);
        ns_sum += ns;
    }
    TurnstileCell {
        algo: algo.name(),
        eps,
        n: data.len(),
        max_err: max_err_sum / trials as f64,
        avg_err: avg_err_sum / trials as f64,
        space_bytes: space,
        update_ns: ns_sum / trials as f64,
    }
}

fn run_turnstile_once(
    algo: TurnstileAlgo,
    data: &[u64],
    eps: f64,
    log_u: u32,
    seed: u64,
    oracle: &ExactQuantiles<u64>,
    phis: &[f64],
) -> (f64, f64, usize, f64) {
    use sqs_util::SpaceUsage;
    match algo {
        TurnstileAlgo::Dcm => {
            let mut s = new_dcm(eps, log_u, seed);
            let t0 = Instant::now();
            for &x in data {
                s.insert(x);
            }
            let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
            let answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        s.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (me, ae) = observed_errors(oracle, &answers);
            (me, ae, s.space_bytes(), ns)
        }
        TurnstileAlgo::Dcs => {
            let mut s = new_dcs(eps, log_u, seed);
            let t0 = Instant::now();
            for &x in data {
                s.insert(x);
            }
            let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
            let answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        s.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (me, ae) = observed_errors(oracle, &answers);
            (me, ae, s.space_bytes(), ns)
        }
        TurnstileAlgo::Post(eta) => {
            let mut s = new_dcs(eps, log_u, seed);
            let t0 = Instant::now();
            for &x in data {
                s.insert(x);
            }
            let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
            let post = PostProcessed::new(&s, eps, eta);
            let answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        post.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (me, ae) = observed_errors(oracle, &answers);
            // Post adds no streaming space or time (§4.3.4); its size
            // is the DCS it refines.
            (me, ae, s.space_bytes(), ns)
        }
        TurnstileAlgo::Rss => {
            let mut s = new_rss(eps, log_u, seed);
            let t0 = Instant::now();
            for &x in data {
                s.insert(x);
            }
            let ns = t0.elapsed().as_nanos() as f64 / data.len() as f64;
            let answers: Vec<(f64, u64)> = phis
                .iter()
                .map(|&p| {
                    (
                        p,
                        s.quantile(p)
                            .expect("harness invariant: summary nonempty after feeding the stream"),
                    )
                })
                .collect();
            let (me, ae) = observed_errors(oracle, &answers);
            (me, ae, s.space_bytes(), ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_data::Uniform;

    #[test]
    fn cash_cell_sane_for_each_algo() {
        let data: Vec<u64> = Uniform::new(20, 1).take(20_000).collect();
        for algo in CashAlgo::ALL {
            let cell = run_cash_cell(algo, &data, 0.05, 20, 2, 7);
            assert!(
                cell.max_err <= 0.15,
                "{}: max_err {}",
                cell.algo,
                cell.max_err
            );
            assert!(cell.avg_err <= cell.max_err + 1e-12);
            assert!(cell.space_bytes > 0);
            assert!(cell.update_ns > 0.0);
            assert_eq!(cell.n, 20_000);
        }
    }

    #[test]
    fn deterministic_algos_run_single_trial() {
        assert!(!CashAlgo::GkArray.randomized());
        assert!(CashAlgo::Random.randomized());
    }

    #[test]
    fn perf_cell_streams_without_materializing() {
        let cell = run_cash_perf(CashAlgo::Random, Uniform::new(32, 2), 100_000, 0.01, 32, 3);
        assert!(cell.max_err.is_nan());
        assert!(cell.space_bytes > 0);
        assert_eq!(cell.n, 100_000);
    }

    #[test]
    fn turnstile_cell_sane() {
        let data: Vec<u64> = Uniform::new(16, 4).take(20_000).collect();
        for algo in [
            TurnstileAlgo::Dcm,
            TurnstileAlgo::Dcs,
            TurnstileAlgo::Post(0.1),
        ] {
            let cell = run_turnstile_cell(algo, &data, 0.05, 16, 2, 9);
            assert!(cell.max_err <= 0.05, "{}: {}", cell.algo, cell.max_err);
            assert!(cell.space_bytes > 0);
        }
    }
}
