//! `sqs-serve` — stand up one quantile server from the command line.
//!
//! ```text
//! sqs-serve --addr 127.0.0.1:7171 --backend random --eps 0.01
//! ```
//!
//! Flags (all optional):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7171`,
//!   port 0 for ephemeral).
//! * `--backend random|qdigest|reservoir|dcs` — shard summary type
//!   (default `random`).
//! * `--eps F` — accuracy parameter ε (default `0.01`).
//! * `--log-u N` — q-digest/DCS universe is `[0, 2^N)` (default `32`;
//!   fixed-universe backends only — the server refuses out-of-universe
//!   inserts).
//! * `--shards N` — engine shards per tenant (default `4`).
//! * `--workers N` — connection worker threads (default `4`).
//! * `--queue N` — backpressure queue depth (default `64`).
//! * `--batch N` — engine batch capacity (default `1024`).
//! * `--seed N` — base RNG seed; per-tenant/per-shard seeds are
//!   derived from it (default `42`).
//! * `--data-dir PATH` — durable mode: write-ahead-log every
//!   acknowledged ingest under `PATH` and checkpoint periodically;
//!   on startup, recover state from `PATH` (absent ⇒ in-memory, the
//!   hot path pays nothing).
//! * `--fsync always|interval:MS|never` — WAL sync policy in durable
//!   mode (default `always`).
//! * `--segment-bytes N` — WAL segment rotation threshold (default
//!   `67108864`, i.e. 64 MiB).
//! * `--checkpoint-secs N` — background checkpoint interval (default
//!   `30`).
//! * `--window-bucket-secs N` — enable time-windowed quantiles with
//!   `N`-second buckets (absent ⇒ the `WINDOW_*` ops are refused and
//!   the existing hot path is untouched).
//! * `--window-retention N` — buckets retained per tenant ring
//!   (default `60`; windowed mode only).
//! * `--window-rollup N` — pre-merge sealed buckets in groups of `N`
//!   for long-range queries; `0` disables (default `8`; windowed mode
//!   only).
//! * `--window-late drop|route` — what happens to values stamped
//!   before the current bucket: count-and-drop, or fold into the
//!   current bucket (default `drop`; windowed mode only).
//!
//! The process prints `listening on ADDR` once bound and runs until a
//! client sends `SHUTDOWN` (or the process is killed). In durable mode
//! a recovery summary line (`recovered ...`) is printed before the
//! listening line whenever prior state was found.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_core::sampled::ReservoirQuantiles;
use sqs_service::server::{spawn, DurabilityConfig, ServerConfig, WindowOptions};
use sqs_store::FsyncPolicy;
use sqs_turnstile::TurnstileSummary;
use sqs_util::rng::SplitMix64;
use sqs_window::{LatePolicy, WindowConfig};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Random,
    QDigest,
    Reservoir,
    Dcs,
}

struct Args {
    cfg: ServerConfig,
    backend: Backend,
    eps: f64,
    log_u: u32,
    seed: u64,
}

fn usage() -> &'static str {
    "usage: sqs-serve [--addr HOST:PORT] [--backend random|qdigest|reservoir|dcs] \
     [--eps F] [--log-u N] [--shards N] [--workers N] [--queue N] [--batch N] [--seed N] \
     [--data-dir PATH] [--fsync always|interval:MS|never] [--segment-bytes N] \
     [--checkpoint-secs N] [--window-bucket-secs N] [--window-retention N] \
     [--window-rollup N] [--window-late drop|route]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        cfg: ServerConfig {
            addr: "127.0.0.1:7171".to_owned(),
            ..ServerConfig::default()
        },
        backend: Backend::Random,
        eps: 0.01,
        log_u: 32,
        seed: 42,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        fn value<'a>(
            it: &mut std::slice::Iter<'a, String>,
            flag: &str,
        ) -> Result<&'a String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        }
        match flag.as_str() {
            "--addr" => args.cfg.addr = value(&mut it, flag)?.clone(),
            "--backend" => {
                args.backend = match value(&mut it, flag)?.as_str() {
                    "random" => Backend::Random,
                    "qdigest" => Backend::QDigest,
                    "reservoir" => Backend::Reservoir,
                    "dcs" => Backend::Dcs,
                    other => return Err(format!("unknown backend {other:?}")),
                }
            }
            "--eps" => {
                args.eps = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--eps: {e}"))?;
                if !(args.eps.is_finite() && args.eps > 0.0 && args.eps < 0.5) {
                    return Err(format!("--eps must be in (0, 0.5), got {}", args.eps));
                }
            }
            "--log-u" => {
                args.log_u = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--log-u: {e}"))?;
                if args.log_u == 0 || args.log_u > 63 {
                    return Err(format!("--log-u must be in 1..=63, got {}", args.log_u));
                }
            }
            "--shards" => {
                args.cfg.shards = parse_nonzero(value(&mut it, flag)?, "--shards")?;
            }
            "--workers" => {
                args.cfg.workers = parse_nonzero(value(&mut it, flag)?, "--workers")?;
            }
            "--queue" => {
                args.cfg.queue_depth = parse_nonzero(value(&mut it, flag)?, "--queue")?;
            }
            "--batch" => {
                args.cfg.batch_capacity = parse_nonzero(value(&mut it, flag)?, "--batch")?;
            }
            "--seed" => {
                args.seed = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--data-dir" => {
                let dir = std::path::PathBuf::from(value(&mut it, flag)?);
                match args.cfg.durability.as_mut() {
                    Some(d) => d.data_dir = dir,
                    None => args.cfg.durability = Some(DurabilityConfig::new(dir)),
                }
            }
            "--fsync" => {
                let policy = parse_fsync(value(&mut it, flag)?)?;
                durability_mut(&mut args)?.fsync = policy;
            }
            "--segment-bytes" => {
                let bytes: u64 = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--segment-bytes: {e}"))?;
                if bytes < 1024 {
                    return Err(format!("--segment-bytes must be >= 1024, got {bytes}"));
                }
                durability_mut(&mut args)?.segment_bytes = bytes;
            }
            "--checkpoint-secs" => {
                let secs: u64 = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--checkpoint-secs: {e}"))?;
                if secs == 0 {
                    return Err("--checkpoint-secs must be positive".to_owned());
                }
                durability_mut(&mut args)?.checkpoint_interval = Duration::from_secs(secs);
            }
            "--window-bucket-secs" => {
                let secs: u64 = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--window-bucket-secs: {e}"))?;
                if secs == 0 {
                    return Err("--window-bucket-secs must be positive".to_owned());
                }
                let bucket_nanos = secs.saturating_mul(1_000_000_000);
                match args.cfg.window.as_mut() {
                    Some(w) => w.config.bucket_nanos = bucket_nanos,
                    None => {
                        args.cfg.window =
                            Some(WindowOptions::new(WindowConfig::new(bucket_nanos, 60)));
                    }
                }
            }
            "--window-retention" => {
                let buckets: u64 = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--window-retention: {e}"))?;
                if buckets == 0 {
                    return Err("--window-retention must be at least 1 bucket".to_owned());
                }
                window_mut(&mut args)?.config.retention_buckets = buckets;
            }
            "--window-rollup" => {
                let factor: u64 = value(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("--window-rollup: {e}"))?;
                if factor == 1 {
                    return Err("--window-rollup must be 0 (disabled) or >= 2".to_owned());
                }
                window_mut(&mut args)?.config.rollup_factor = factor;
            }
            "--window-late" => {
                let policy = match value(&mut it, flag)?.as_str() {
                    "drop" => LatePolicy::Drop,
                    "route" => LatePolicy::RouteToCurrent,
                    other => {
                        return Err(format!("--window-late: expected drop|route, got {other:?}"))
                    }
                };
                window_mut(&mut args)?.config.late_policy = policy;
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(args)
}

fn parse_nonzero(s: &str, flag: &str) -> Result<usize, String> {
    let n: usize = s.parse().map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(n)
}

/// `--fsync` grammar: `always`, `never`, or `interval:MS`.
fn parse_fsync(s: &str) -> Result<FsyncPolicy, String> {
    match s {
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        other => {
            let ms = other
                .strip_prefix("interval:")
                .ok_or_else(|| {
                    format!("--fsync: expected always|interval:MS|never, got {other:?}")
                })?
                .parse::<u64>()
                .map_err(|e| format!("--fsync interval: {e}"))?;
            if ms == 0 {
                return Err("--fsync interval must be positive".to_owned());
            }
            Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
        }
    }
}

/// The durability knobs only make sense once `--data-dir` picked a home.
fn durability_mut(args: &mut Args) -> Result<&mut DurabilityConfig, String> {
    args.cfg.durability.as_mut().ok_or_else(|| {
        "--fsync/--segment-bytes/--checkpoint-secs require --data-dir first".to_owned()
    })
}

/// The window knobs only make sense once `--window-bucket-secs` set
/// the bucket width.
fn window_mut(args: &mut Args) -> Result<&mut WindowOptions, String> {
    args.cfg.window.as_mut().ok_or_else(|| {
        "--window-retention/--window-rollup/--window-late require --window-bucket-secs first"
            .to_owned()
    })
}

/// Derives an independent seed for one (tenant, shard) pair so that
/// randomized summaries on different shards draw unrelated streams.
fn derive_seed(base: u64, tenant: u64, shard: usize) -> u64 {
    let mut sm = SplitMix64::new(
        base ^ tenant.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (shard as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
    );
    sm.next_u64()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Args {
        mut cfg,
        backend,
        eps,
        log_u,
        seed,
    } = args;
    let spawned = match backend {
        Backend::Random => spawn(cfg, move |tenant, shard| {
            RandomSketch::new(eps, derive_seed(seed, tenant, shard))
        })
        .map(|h| run(h.addr(), h)),
        Backend::QDigest => {
            // q-digest summarises the bounded universe [0, 2^log_u);
            // the server gates inserts so out-of-range values get an
            // error reply instead of panicking a worker.
            cfg.value_bound = Some(1u64 << log_u);
            spawn(cfg, move |_tenant, _shard| QDigest::new(eps, log_u)).map(|h| run(h.addr(), h))
        }
        Backend::Reservoir => spawn(cfg, move |tenant, shard| {
            ReservoirQuantiles::new(eps, derive_seed(seed, tenant, shard))
        })
        .map(|h| run(h.addr(), h)),
        Backend::Dcs => {
            // Fixed-universe like qdigest: gate out-of-range inserts.
            cfg.value_bound = Some(1u64 << log_u);
            // One seed per *tenant*, shared by all of its shards: the
            // dyadic Count-Sketch is linear, so same-draw shards merge
            // counter-wise and the snapshot is state-identical to a
            // single sketch that saw every update (docs/PERF.md).
            spawn(cfg, move |tenant, _shard| {
                TurnstileSummary::dcs(eps, log_u, derive_seed(seed, tenant, 0))
            })
            .map(|h| run(h.addr(), h))
        }
    };
    match spawned {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bind failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run<S>(addr: std::net::SocketAddr, handle: sqs_service::ServerHandle<S>) -> ExitCode
where
    S: sqs_core::MergeableSummary<u64> + sqs_core::codec::WireCodec + Clone + Send + Sync + 'static,
{
    if let Some(r) = handle
        .recovery()
        .filter(|r| r.tenants > 0 || r.torn_tails_dropped > 0 || r.corrupt_checkpoints_skipped > 0)
    {
        println!(
            "recovered {} items across {} tenants ({} checkpoints, {} wal records replayed, \
             {} torn tails dropped, {} corrupt checkpoints skipped)",
            r.total_items,
            r.tenants,
            r.checkpoints_loaded,
            r.records_replayed,
            r.torn_tails_dropped,
            r.corrupt_checkpoints_skipped,
        );
    }
    println!("listening on {addr}");
    // Park until a client's SHUTDOWN op stops the server; the handle's
    // join returns once every worker drained.
    handle.join();
    // Give lingering client sockets a beat to observe the close.
    std::thread::sleep(Duration::from_millis(10));
    ExitCode::SUCCESS
}
