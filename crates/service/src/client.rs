//! A minimal blocking client for the quantile service.
//!
//! One [`Client`] wraps one TCP connection and speaks the framed
//! protocol from [`crate::proto`]. Methods are typed wrappers over
//! [`Client::call`]; a [`Status::Busy`] reply surfaces as
//! [`ClientError::Busy`] so callers can back off and reconnect (the
//! server closes a shed connection after the busy reply).

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{self, Op, ProtoError, Request, Response, Status};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server shed this connection under load; reconnect with
    /// backoff.
    Busy(String),
    /// The server executed the request and refused it.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Busy(msg) => write!(f, "server busy: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// One blocking connection to a quantile server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and applies `Nagle`-off plus the given socket
    /// timeouts to both directions.
    ///
    /// # Errors
    /// Propagates connect/configure failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// One raw request/response exchange; the typed helpers below are
    /// usually what you want.
    ///
    /// # Errors
    /// [`ClientError::Busy`] on a shed connection, [`ClientError::Server`]
    /// on an error reply, [`ClientError::Proto`] on transport trouble.
    pub fn call(&mut self, op: Op, tenant: u64, payload: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        proto::write_request(
            &mut self.stream,
            &Request {
                op,
                tenant,
                payload,
            },
        )?;
        let Response { status, payload } = proto::read_response(&mut self.stream)?;
        match status {
            Status::Ok => Ok(payload),
            Status::Busy => Err(ClientError::Busy(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
            Status::Err => Err(ClientError::Server(
                String::from_utf8_lossy(&payload).into_owned(),
            )),
        }
    }

    /// Inserts a batch of values into the tenant's stream; the ack carries
    /// the tenant's total item count and, on durable servers, the WAL
    /// sequence number that made the batch crash-safe (`seq == 0` means
    /// the server runs in-memory).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn insert_batch(
        &mut self,
        tenant: u64,
        xs: &[u64],
    ) -> Result<proto::IngestAck, ClientError> {
        let reply = self.call(Op::InsertBatch, tenant, proto::encode_u64s(xs))?;
        Ok(proto::decode_ingest_ack(&reply)?)
    }

    /// Queries one φ-quantile per entry of `phis` (each in (0, 1));
    /// `None` marks an empty stream.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn query_quantiles(
        &mut self,
        tenant: u64,
        phis: &[f64],
    ) -> Result<Vec<Option<u64>>, ClientError> {
        let reply = self.call(Op::QueryQuantiles, tenant, proto::encode_f64s(phis))?;
        Ok(proto::decode_answers(&reply)?)
    }

    /// Answers a φ-sweep *and* a rank sweep from one merged snapshot
    /// in a single round trip: one quantile per entry of `phis` (each
    /// in (0, 1)) plus one estimated rank per entry of `xs`. Both
    /// answer vectors describe the same instant of the stream, which
    /// separate [`Client::query_quantiles`]/[`Client::query_rank`]
    /// calls cannot guarantee under concurrent ingest.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn query_many(
        &mut self,
        tenant: u64,
        phis: &[f64],
        xs: &[u64],
    ) -> Result<(Vec<Option<u64>>, Vec<u64>), ClientError> {
        let reply = self.call(Op::QueryMany, tenant, proto::encode_query_many(phis, xs))?;
        Ok(proto::decode_query_many_reply(&reply)?)
    }

    /// Estimated rank of `x` in the tenant's stream.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn query_rank(&mut self, tenant: u64, x: u64) -> Result<u64, ClientError> {
        let reply = self.call(Op::QueryRank, tenant, proto::encode_u64(x))?;
        Ok(proto::decode_u64(&reply)?)
    }

    /// A portable snapshot of the tenant's merged summary — feed it to
    /// [`Client::merge_snapshot`] on any other server (or decode it
    /// locally with [`sqs_core::codec::WireCodec::from_bytes`]).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn snapshot(&mut self, tenant: u64) -> Result<Vec<u8>, ClientError> {
        self.call(Op::Snapshot, tenant, Vec::new())
    }

    /// Merges a snapshot frame into the tenant's stream; the ack carries
    /// the tenant's total item count after the merge plus the durable
    /// WAL sequence number (`seq == 0` on in-memory servers).
    ///
    /// # Errors
    /// See [`Client::call`]; corrupt or incompatible frames come back
    /// as [`ClientError::Server`].
    pub fn merge_snapshot(
        &mut self,
        tenant: u64,
        frame: Vec<u8>,
    ) -> Result<proto::IngestAck, ClientError> {
        let reply = self.call(Op::MergeSnapshot, tenant, frame)?;
        Ok(proto::decode_ingest_ack(&reply)?)
    }

    /// The server's metrics snapshot as a JSON string.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let reply = self.call(Op::Stats, 0, Vec::new())?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    /// Asks the server to shut down gracefully; the `OK` reply arrives
    /// before the server stops accepting.
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Op::Shutdown, 0, Vec::new())?;
        Ok(())
    }

    /// Inserts a batch stamped with one event time into the tenant's
    /// window ring *and* all-time stream (requires a server started
    /// with `--window-bucket-secs`). The ack is the same as
    /// [`Client::insert_batch`]: all-time count plus WAL sequence.
    ///
    /// # Errors
    /// See [`Client::call`]; a window-less server refuses with
    /// [`ClientError::Server`].
    pub fn window_insert(
        &mut self,
        tenant: u64,
        ts_nanos: u64,
        xs: &[u64],
    ) -> Result<proto::IngestAck, ClientError> {
        let reply = self.call(
            Op::WindowInsert,
            tenant,
            proto::encode_window_insert(ts_nanos, xs),
        )?;
        Ok(proto::decode_ingest_ack(&reply)?)
    }

    /// Answers a sliding/tumbling window φ-sweep over the tenant's
    /// ring: the covered time range, the mass inside it, and one
    /// quantile per φ.
    ///
    /// # Errors
    /// See [`Client::call`]; a spec that does not fit the server's
    /// bucket width or retention comes back as [`ClientError::Server`].
    pub fn window_query(
        &mut self,
        tenant: u64,
        spec: sqs_window::WindowSpec,
        phis: &[f64],
    ) -> Result<sqs_window::WindowAnswer, ClientError> {
        let reply = self.call(
            Op::WindowQuery,
            tenant,
            proto::encode_window_query(spec, phis),
        )?;
        Ok(proto::decode_window_answer(&reply)?)
    }

    /// The tenant's window-ring counters (rotation, eviction, late
    /// arrivals, rollup and cache activity).
    ///
    /// # Errors
    /// See [`Client::call`].
    pub fn window_stats(&mut self, tenant: u64) -> Result<sqs_window::WindowStats, ClientError> {
        let reply = self.call(Op::WindowStats, tenant, Vec::new())?;
        Ok(proto::decode_window_stats(&reply)?)
    }
}
