//! `sqs-service`: a multi-tenant TCP quantile service over
//! [`sqs_engine`].
//!
//! The crate turns the in-process sharded quantile engine into a
//! network service, std-only (no async runtime, no serde):
//!
//! * [`proto`] — the framed little-endian wire protocol: versioned
//!   headers, FNV-1a-64 checksums, a hard payload cap, and panic-free
//!   decoding of untrusted bytes.
//! * [`server`] — `TcpListener` accept loop feeding a bounded
//!   connection queue drained by a fixed worker pool; per-tenant
//!   [`sqs_engine::ShardedEngine`] registry; explicit `BUSY` shedding
//!   under overload; graceful shutdown with nothing acknowledged lost;
//!   optional durability via [`sqs_store`] (write-ahead log + periodic
//!   checkpoints, crash recovery at startup) when
//!   [`server::DurabilityConfig`] is set.
//! * [`client`] — a small blocking client with typed methods per op.
//! * [`metrics`] — lock-free counters and log₂-bucketed per-op latency
//!   histograms behind the `STATS` op.
//!
//! With [`server::WindowOptions`] set (`sqs-serve
//! --window-bucket-secs`), the `WINDOW_INSERT` / `WINDOW_QUERY` /
//! `WINDOW_STATS` ops expose [`sqs_window`]'s time-windowed quantiles
//! per tenant: timestamped ingest, sliding/tumbling φ-sweeps, and ring
//! counters, all inside self-checksummed `SQWF` payload frames.
//!
//! Summaries travel between servers via the [`sqs_core::codec`]
//! frames: `SNAPSHOT` on one server, `MERGE_SNAPSHOT` on another, and
//! mergeability (Agarwal et al., PODS '12) guarantees the combined
//! summary keeps its ε-rank error.

#![forbid(unsafe_code)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use metrics::{EngineTotals, LatencyHistogram, Metrics, WindowTotals};
pub use proto::{IngestAck, Op, ProtoError, Request, Response, Status};
pub use server::{
    spawn, DurabilityConfig, RecoverySummary, ServerConfig, ServerHandle, WindowOptions,
};
