//! In-process service metrics: ingest throughput, shed-load counters,
//! and lock-free per-op latency histograms.
//!
//! Latencies land in power-of-two nanosecond buckets (`AtomicU64`
//! each), so the hot path is one `leading_zeros` and one relaxed
//! `fetch_add` — no lock, no allocation, no coordination with the
//! `STATS` reader. Quantiles read from the bucket boundaries, which
//! bounds their relative error by 2× — plenty for p50/p99/p999
//! operational telemetry (exact latencies belong to the load
//! generator, which keeps raw samples).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::proto::Op;

/// Number of power-of-two latency buckets: bucket `i` holds samples
/// with `floor(log2(nanos)) == i`, which spans every representable
/// `u64` nanosecond value.
const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample (relaxed atomics; safe from any thread).
    pub fn record(&self, nanos: u64) {
        // floor(log2(nanos)), with 0 mapped to bucket 0.
        let idx = (63 - (nanos | 1).leading_zeros()) as usize;
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The per-mille quantile (e.g. 500 = p50, 999 = p999) as the
    /// upper bound of the bucket holding that rank, in nanoseconds.
    /// Returns 0 while empty.
    #[must_use]
    pub fn quantile_nanos(&self, permille: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target =
            u64::try_from((u128::from(total) * u128::from(permille.clamp(1, 1000))).div_ceil(1000))
                .unwrap_or(u64::MAX)
                .max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(b.load(Ordering::Relaxed));
            if cum >= target {
                // Upper bound of bucket i: 2^(i+1) - 1 nanoseconds.
                return u64::try_from((1u128 << (i + 1)) - 1).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Aggregated ingest-engine counters across every tenant's
/// [`ShardedEngine`](sqs_engine::ShardedEngine) — the engine section
/// of the `STATS` reply. Summed from each engine's
/// [`EngineStats`](sqs_engine::EngineStats) at query time; the server
/// keeps no separate ledger, so these can never drift from the
/// engines' own accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineTotals {
    /// Elements folded into shard summaries across all tenants.
    pub items: u64,
    /// Elements handed off and not yet folded (0 at quiescence: the
    /// request-scoped ingest path queues nothing engine-side).
    pub queued_items: u64,
    /// Producer buffers handed off to propagation queues.
    pub handoffs: u64,
    /// Publications (propagation rounds + direct folds).
    pub propagations: u64,
    /// Sum of every tenant engine's epoch.
    pub epoch: u64,
    /// Merged snapshots rebuilt (query-path cache misses).
    pub snapshots: u64,
    /// Query sweeps served from the epoch-keyed snapshot cache.
    pub snapshot_cache_hits: u64,
}

impl EngineTotals {
    /// Folds one engine's stats into the totals.
    pub fn absorb(&mut self, s: &sqs_engine::EngineStats) {
        self.items += s.items;
        self.queued_items += s.queued_items;
        self.handoffs += s.handoffs;
        self.propagations += s.propagations;
        self.epoch += s.epoch;
        self.snapshots += s.snapshots;
        self.snapshot_cache_hits += s.snapshot_cache_hits;
    }
}

/// Aggregated window-ring counters across every tenant's
/// [`WindowedEngine`](sqs_window::WindowedEngine) — the `window`
/// section of the `STATS` reply. Like [`EngineTotals`], summed from
/// the rings' own [`WindowStats`](sqs_window::WindowStats) at query
/// time, so the server keeps no ledger that could drift.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WindowTotals {
    /// Tenants with a materialized window ring.
    pub rings: u64,
    /// Items ever placed in rings (on-time + routed late).
    pub ingested_items: u64,
    /// Buckets currently holding data.
    pub live_buckets: u64,
    /// Items currently inside retained buckets.
    pub live_items: u64,
    /// Items that left with evicted buckets.
    pub evicted_items: u64,
    /// Late values discarded under the drop policy.
    pub late_dropped: u64,
    /// Late values folded into the current bucket under the
    /// route-to-current policy.
    pub late_routed: u64,
    /// Bucket edges crossed by rotation.
    pub buckets_rotated: u64,
    /// Rollup summaries materialized.
    pub rollups_built: u64,
    /// Rollup summaries substituted for fine buckets during queries.
    pub rollup_hits: u64,
    /// Window queries answered.
    pub queries: u64,
    /// Queries served from the version-keyed merge cache.
    pub cache_hits: u64,
}

impl WindowTotals {
    /// Folds one ring's stats into the totals.
    pub fn absorb(&mut self, s: &sqs_window::WindowStats) {
        self.rings += 1;
        self.ingested_items += s.ingested_items;
        self.live_buckets += s.live_buckets;
        self.live_items += s.live_items;
        self.evicted_items += s.evicted_items;
        self.late_dropped += s.late_dropped;
        self.late_routed += s.late_routed;
        self.buckets_rotated += s.buckets_rotated;
        self.rollups_built += s.rollups_built;
        self.rollup_hits += s.rollup_hits;
        self.queries += s.queries;
        self.cache_hits += s.cache_hits;
    }
}

/// Counters and histograms for one running server.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    ingest_rows: AtomicU64,
    busy_shed: AtomicU64,
    proto_errors: AtomicU64,
    per_op: [LatencyHistogram; Op::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics; the rows/s denominator starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            ingest_rows: AtomicU64::new(0),
            busy_shed: AtomicU64::new(0),
            proto_errors: AtomicU64::new(0),
            per_op: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Adds ingested rows to the throughput counter.
    pub fn add_rows(&self, rows: u64) {
        self.ingest_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Rows ingested since start.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.ingest_rows.load(Ordering::Relaxed)
    }

    /// Counts one connection shed with a `BUSY` reply.
    pub fn note_busy(&self) {
        self.busy_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    #[must_use]
    pub fn busy_count(&self) -> u64 {
        self.busy_shed.load(Ordering::Relaxed)
    }

    /// Counts one malformed/corrupt frame.
    pub fn note_proto_error(&self) {
        self.proto_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed request's service time.
    pub fn record_op(&self, op: Op, nanos: u64) {
        if let Some(h) = self.per_op.get(op.index()) {
            h.record(nanos);
        }
    }

    /// The histogram for one op (for tests and direct inspection).
    #[must_use]
    pub fn op_histogram(&self, op: Op) -> Option<&LatencyHistogram> {
        self.per_op.get(op.index())
    }

    /// Renders everything as one JSON object (hand-rolled — the build
    /// is offline, no serde), the `STATS` reply body. `engine` is the
    /// cross-tenant aggregate of the ingest engines' own counters;
    /// `store` is the durable store's ledger (`None` on in-memory
    /// servers — the section is omitted entirely); `window` is the
    /// cross-tenant window-ring aggregate (`None` when the server runs
    /// without `--window-bucket-secs` — also omitted).
    #[must_use]
    pub fn to_json(
        &self,
        tenants: usize,
        engine: &EngineTotals,
        store: Option<&sqs_store::StoreStats>,
        window: Option<&WindowTotals>,
    ) -> String {
        use std::fmt::Write as _;
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let rows = self.rows();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"uptime_secs\": {uptime:.3},");
        let _ = writeln!(out, "  \"tenants\": {tenants},");
        let _ = writeln!(out, "  \"ingest_rows\": {rows},");
        let _ = writeln!(
            out,
            "  \"ingest_rows_per_sec\": {:.1},",
            rows as f64 / uptime
        );
        let _ = writeln!(out, "  \"busy_shed\": {},", self.busy_count());
        let _ = writeln!(
            out,
            "  \"proto_errors\": {},",
            self.proto_errors.load(Ordering::Relaxed)
        );
        out.push_str("  \"engine\": {\n");
        let _ = writeln!(out, "    \"items\": {},", engine.items);
        let _ = writeln!(out, "    \"queued_items\": {},", engine.queued_items);
        let _ = writeln!(out, "    \"handoffs\": {},", engine.handoffs);
        let _ = writeln!(out, "    \"propagations\": {},", engine.propagations);
        let _ = writeln!(out, "    \"epoch\": {},", engine.epoch);
        let _ = writeln!(out, "    \"snapshots\": {},", engine.snapshots);
        let _ = writeln!(
            out,
            "    \"snapshot_cache_hits\": {}",
            engine.snapshot_cache_hits
        );
        out.push_str("  },\n");
        if let Some(s) = store {
            out.push_str("  \"store\": {\n");
            let _ = writeln!(out, "    \"records_appended\": {},", s.records_appended);
            let _ = writeln!(out, "    \"items_appended\": {},", s.items_appended);
            let _ = writeln!(out, "    \"bytes_appended\": {},", s.bytes_appended);
            let _ = writeln!(out, "    \"fsyncs\": {},", s.fsyncs);
            let _ = writeln!(out, "    \"segments_rotated\": {},", s.segments_rotated);
            let _ = writeln!(out, "    \"segments_deleted\": {},", s.segments_deleted);
            let _ = writeln!(
                out,
                "    \"checkpoints_written\": {},",
                s.checkpoints_written
            );
            let _ = writeln!(
                out,
                "    \"corrupt_checkpoints_skipped\": {},",
                s.corrupt_checkpoints_skipped
            );
            let _ = writeln!(out, "    \"recoveries\": {},", s.recoveries);
            let _ = writeln!(out, "    \"replayed_records\": {},", s.replayed_records);
            let _ = writeln!(out, "    \"torn_tails_dropped\": {},", s.torn_tails_dropped);
            let _ = writeln!(out, "    \"seq_gaps\": {},", s.seq_gaps);
            let _ = writeln!(out, "    \"last_seq\": {}", s.last_seq);
            out.push_str("  },\n");
        }
        if let Some(w) = window {
            out.push_str("  \"window\": {\n");
            let _ = writeln!(out, "    \"rings\": {},", w.rings);
            let _ = writeln!(out, "    \"ingested_items\": {},", w.ingested_items);
            let _ = writeln!(out, "    \"live_buckets\": {},", w.live_buckets);
            let _ = writeln!(out, "    \"live_items\": {},", w.live_items);
            let _ = writeln!(out, "    \"evicted_items\": {},", w.evicted_items);
            let _ = writeln!(out, "    \"late_dropped\": {},", w.late_dropped);
            let _ = writeln!(out, "    \"late_routed\": {},", w.late_routed);
            let _ = writeln!(out, "    \"buckets_rotated\": {},", w.buckets_rotated);
            let _ = writeln!(out, "    \"rollups_built\": {},", w.rollups_built);
            let _ = writeln!(out, "    \"rollup_hits\": {},", w.rollup_hits);
            let _ = writeln!(out, "    \"queries\": {},", w.queries);
            let _ = writeln!(out, "    \"cache_hits\": {}", w.cache_hits);
            out.push_str("  },\n");
        }
        out.push_str("  \"ops\": {\n");
        for (i, op) in Op::ALL.iter().enumerate() {
            let Some(h) = self.per_op.get(op.index()) else {
                continue;
            };
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
                op.name(),
                h.count(),
                h.quantile_nanos(500) as f64 / 1e3,
                h.quantile_nanos(990) as f64 / 1e3,
                h.quantile_nanos(999) as f64 / 1e3,
            );
            out.push_str(if i + 1 < Op::ALL.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..900 {
            h.record(1_000); // ~2^10
        }
        for _ in 0..100 {
            h.record(1_000_000); // ~2^20
        }
        assert_eq!(h.count(), 1_000);
        let p50 = h.quantile_nanos(500);
        assert!((1_000..=2_048).contains(&p50), "p50 = {p50}");
        let p999 = h.quantile_nanos(999);
        assert!((1_000_000..=2_097_152).contains(&p999), "p999 = {p999}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_nanos(500), 0);
    }

    #[test]
    fn zero_nanos_sample_is_representable() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_nanos(500) >= 1);
    }

    #[test]
    fn json_snapshot_contains_every_op() {
        let m = Metrics::new();
        m.add_rows(5_000);
        m.record_op(Op::InsertBatch, 2_000);
        m.record_op(Op::QueryQuantiles, 40_000);
        m.note_busy();
        let engine = EngineTotals {
            items: 5_000,
            queued_items: 0,
            handoffs: 12,
            propagations: 9,
            epoch: 9,
            snapshots: 2,
            snapshot_cache_hits: 7,
        };
        let json = m.to_json(3, &engine, None, None);
        for op in Op::ALL {
            assert!(json.contains(op.name()), "missing {}", op.name());
        }
        assert!(json.contains("\"ingest_rows\": 5000"));
        assert!(json.contains("\"busy_shed\": 1"));
        assert!(json.contains("\"tenants\": 3"));
        assert!(json.contains("\"items\": 5000"));
        assert!(json.contains("\"snapshot_cache_hits\": 7"));
        assert!(json.contains("\"propagations\": 9"));
        // In-memory servers omit the store section entirely, and
        // window-less servers omit the window section.
        assert!(!json.contains("\"store\""));
        assert!(!json.contains("\"window\""));
        // Balanced braces (cheap well-formedness check, no serde here).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_snapshot_includes_window_section_when_windowed() {
        let m = Metrics::new();
        let engine = EngineTotals::default();
        let mut window = WindowTotals::default();
        window.absorb(&sqs_window::WindowStats {
            ingested_items: 500,
            late_dropped: 3,
            buckets_rotated: 12,
            rollup_hits: 4,
            ..Default::default()
        });
        let json = m.to_json(1, &engine, None, Some(&window));
        assert!(json.contains("\"window\""));
        assert!(json.contains("\"rings\": 1"));
        assert!(json.contains("\"late_dropped\": 3"));
        assert!(json.contains("\"buckets_rotated\": 12"));
        assert!(json.contains("\"rollup_hits\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_snapshot_includes_store_section_when_durable() {
        let m = Metrics::new();
        let engine = EngineTotals::default();
        let store = sqs_store::StoreStats {
            records_appended: 4,
            items_appended: 100,
            last_seq: 4,
            ..Default::default()
        };
        let json = m.to_json(1, &engine, Some(&store), None);
        assert!(json.contains("\"store\""));
        assert!(json.contains("\"records_appended\": 4"));
        assert!(json.contains("\"items_appended\": 100"));
        assert!(json.contains("\"last_seq\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
