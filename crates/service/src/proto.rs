//! The request/response wire protocol of the quantile service.
//!
//! One request frame, one response frame per round trip, both
//! little-endian, length-prefixed and FNV-1a-64 checksummed (the same
//! checksum the summary codec uses). Byte-layout tables live in
//! `docs/SERVICE.md`.
//!
//! ```text
//! request:  "SQSW" | ver u8 | op u8     | rsvd u16 | tenant u64 | len u32 | payload | fnv64
//! response: "SQSW" | ver u8 | status u8 | rsvd u16 |              len u32 | payload | fnv64
//! ```
//!
//! The checksum covers every byte before it. Payload size is capped at
//! [`MAX_PAYLOAD`]; the cap is validated *before* the payload is
//! allocated, so a forged length field cannot balloon server memory —
//! it bounds both what a reader will accept and what a writer will
//! send (an over-cap snapshot must be rejected by the sender, not
//! truncated on the wire).

use std::fmt;
use std::io::{self, Read, Write};

use sqs_core::codec::{fnv1a64_concat, CodecError, Reader};
use sqs_util::audit::CheckInvariants;
use sqs_window::{WindowAnswer, WindowKind, WindowSpec, WindowStats, WINDOW_STATS_WORDS};

/// Protocol magic: the four bytes `SQSW` (Streaming Quantile Service
/// Wire).
pub const MAGIC: [u8; 4] = *b"SQSW";

/// Current protocol version; both sides reject anything else.
pub const VERSION: u8 = 1;

/// Upper bound on a frame payload (16 MiB) — comfortably above any
/// honest snapshot or batch, far below anything that could pressure
/// server memory.
pub const MAX_PAYLOAD: u32 = 1 << 24;

/// Request header length: magic(4) + version(1) + op(1) + reserved(2)
/// + tenant(8) + payload length(4).
pub const REQ_HEADER_LEN: usize = 20;

/// Response header length: magic(4) + version(1) + status(1) +
/// reserved(2) + payload length(4).
pub const RESP_HEADER_LEN: usize = 12;

/// A request operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Ingest a batch of values into the tenant's engine.
    InsertBatch,
    /// Answer a φ-sweep from one merged snapshot.
    QueryQuantiles,
    /// Estimate the rank of one value.
    QueryRank,
    /// Return the tenant's merged summary as a codec frame.
    Snapshot,
    /// Merge a codec frame (from this or another server) into the
    /// tenant's engine.
    MergeSnapshot,
    /// Return server metrics as JSON.
    Stats,
    /// Gracefully stop the server.
    Shutdown,
    /// Ingest a timestamped batch into the tenant's window ring *and*
    /// all-time engine (payload: a window insert frame).
    WindowInsert,
    /// Answer a sliding/tumbling window φ-sweep (payload: a window
    /// query frame; reply: a window answer frame).
    WindowQuery,
    /// Return the tenant's window-ring counters (reply: a window
    /// stats frame).
    WindowStats,
    /// Answer a φ-sweep *and* a rank sweep from one merged snapshot
    /// in one round trip (payload: φ bits vector + value vector;
    /// reply: answers block + rank vector).
    QueryMany,
}

impl Op {
    /// All operations, in wire-code order.
    pub const ALL: [Op; 11] = [
        Op::InsertBatch,
        Op::QueryQuantiles,
        Op::QueryRank,
        Op::Snapshot,
        Op::MergeSnapshot,
        Op::Stats,
        Op::Shutdown,
        Op::WindowInsert,
        Op::WindowQuery,
        Op::WindowStats,
        Op::QueryMany,
    ];

    /// The wire byte for this op.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Op::InsertBatch => 1,
            Op::QueryQuantiles => 2,
            Op::QueryRank => 3,
            Op::Snapshot => 4,
            Op::MergeSnapshot => 5,
            Op::Stats => 6,
            Op::Shutdown => 7,
            Op::WindowInsert => 8,
            Op::WindowQuery => 9,
            Op::WindowStats => 10,
            Op::QueryMany => 11,
        }
    }

    /// Parses a wire byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| op.code() == code)
    }

    /// Dense index for per-op tables (0-based, follows wire order).
    #[must_use]
    pub fn index(self) -> usize {
        self.code() as usize - 1
    }

    /// The op's name as it appears in metrics JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::InsertBatch => "insert_batch",
            Op::QueryQuantiles => "query_quantiles",
            Op::QueryRank => "query_rank",
            Op::Snapshot => "snapshot",
            Op::MergeSnapshot => "merge_snapshot",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::WindowInsert => "window_insert",
            Op::WindowQuery => "window_query",
            Op::WindowStats => "window_stats",
            Op::QueryMany => "query_many",
        }
    }
}

/// A response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The operation succeeded; the payload is its result.
    Ok,
    /// The server shed this connection (backpressure queue full); the
    /// client should back off and retry.
    Busy,
    /// The operation failed; the payload is a UTF-8 error message.
    Err,
}

impl Status {
    /// The wire byte for this status.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Busy => 1,
            Status::Err => 2,
        }
    }

    /// Parses a wire byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Status> {
        match code {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::Err),
            _ => None,
        }
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed (including timeouts).
    Io(io::Error),
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame declares an unsupported protocol version.
    BadVersion(u8),
    /// Unknown op code.
    BadOp(u8),
    /// Unknown status code.
    BadStatus(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u64),
    /// The trailing checksum does not match the frame bytes.
    ChecksumMismatch,
    /// A payload failed structural decoding.
    Codec(CodecError),
    /// A payload field is semantically impossible.
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::BadMagic => write!(f, "bad frame magic"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOp(c) => write!(f, "unknown op code {c}"),
            ProtoError::BadStatus(c) => write!(f, "unknown status code {c}"),
            ProtoError::Oversized(len) => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
            ProtoError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            ProtoError::Codec(e) => write!(f, "payload decode failed: {e}"),
            ProtoError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        ProtoError::Codec(e)
    }
}

impl ProtoError {
    /// Whether this error is a socket read/write timing out — the
    /// server treats a timed-out idle connection as a normal close,
    /// not a protocol violation.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// One client request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation to perform.
    pub op: Op,
    /// The tenant whose engine the op targets (ignored by
    /// [`Op::Stats`] / [`Op::Shutdown`]).
    pub tenant: u64,
    /// Op-specific payload bytes.
    pub payload: Vec<u8>,
}

/// One server response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Outcome of the request.
    pub status: Status,
    /// Status-specific payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one request frame (a single `write_all`, so the frame hits
/// the socket in one piece).
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    if req.payload.len() > MAX_PAYLOAD as usize {
        return Err(ProtoError::Oversized(req.payload.len() as u64));
    }
    let mut frame = Vec::with_capacity(REQ_HEADER_LEN + req.payload.len() + 8);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(req.op.code());
    frame.extend_from_slice(&[0u8; 2]);
    frame.extend_from_slice(&req.tenant.to_le_bytes());
    let len = u32::try_from(req.payload.len()).map_err(|_| ProtoError::Oversized(u64::MAX))?;
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&req.payload);
    let sum = fnv1a64_concat(&[&frame]);
    frame.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&frame)?;
    Ok(())
}

/// Reads one request frame. Returns `Ok(None)` on a clean end of
/// stream *before* the first header byte (the client hung up between
/// requests); any mid-frame end of stream is an error.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ProtoError> {
    let mut head = [0u8; REQ_HEADER_LEN];
    if !read_exact_or_eof(r, &mut head)? {
        return Ok(None);
    }
    let mut cur = Reader::new(&head);
    check_magic_version(&mut cur)?;
    let op_code = cur.u8()?;
    let op = Op::from_code(op_code).ok_or(ProtoError::BadOp(op_code))?;
    let _reserved = cur.bytes(2)?;
    let tenant = cur.u64()?;
    let len = cur.u32()?;
    let payload = read_payload_and_verify(r, &head, len)?;
    Ok(Some(Request {
        op,
        tenant,
        payload,
    }))
}

/// Writes one response frame (a single `write_all`).
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtoError> {
    if resp.payload.len() > MAX_PAYLOAD as usize {
        return Err(ProtoError::Oversized(resp.payload.len() as u64));
    }
    let mut frame = Vec::with_capacity(RESP_HEADER_LEN + resp.payload.len() + 8);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(resp.status.code());
    frame.extend_from_slice(&[0u8; 2]);
    let len = u32::try_from(resp.payload.len()).map_err(|_| ProtoError::Oversized(u64::MAX))?;
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&resp.payload);
    let sum = fnv1a64_concat(&[&frame]);
    frame.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&frame)?;
    Ok(())
}

/// Reads one response frame.
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtoError> {
    let mut head = [0u8; RESP_HEADER_LEN];
    r.read_exact(&mut head)?;
    let mut cur = Reader::new(&head);
    check_magic_version(&mut cur)?;
    let status_code = cur.u8()?;
    let status = Status::from_code(status_code).ok_or(ProtoError::BadStatus(status_code))?;
    let _reserved = cur.bytes(2)?;
    let len = cur.u32()?;
    let payload = read_payload_and_verify(r, &head, len)?;
    Ok(Response { status, payload })
}

fn check_magic_version(cur: &mut Reader<'_>) -> Result<(), ProtoError> {
    if cur.bytes(4)? != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    Ok(())
}

/// Reads `len` payload bytes plus the trailing checksum and verifies
/// the checksum over `head + payload`. The length cap is enforced
/// before the allocation.
fn read_payload_and_verify(
    r: &mut impl Read,
    head: &[u8],
    len: u32,
) -> Result<Vec<u8>, ProtoError> {
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Oversized(u64::from(len)));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum_bytes = [0u8; 8];
    r.read_exact(&mut sum_bytes)?;
    if fnv1a64_concat(&[head, &payload]) != u64::from_le_bytes(sum_bytes) {
        return Err(ProtoError::ChecksumMismatch);
    }
    Ok(payload)
}

/// `read_exact` that distinguishes "stream cleanly ended before byte
/// one" (`Ok(false)`) from "stream ended mid-buffer" (error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, ProtoError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(slot) = buf.get_mut(filled..) else {
            break;
        };
        match r.read(slot) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(ProtoError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(true)
}

// ---- payload helpers (shared by server, client, loadgen, tests) ----

/// Encodes a `u64` slice as a length-prefixed vector.
#[must_use]
pub fn encode_u64s(xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + xs.len() * 8);
    sqs_core::codec::put_u64_slice(&mut out, xs);
    out
}

/// Decodes a length-prefixed `u64` vector, rejecting trailing bytes.
pub fn decode_u64s(payload: &[u8]) -> Result<Vec<u64>, ProtoError> {
    let mut r = Reader::new(payload);
    let xs = r.u64_vec()?;
    r.done()?;
    Ok(xs)
}

/// Encodes an `f64` slice as a length-prefixed vector of IEEE-754
/// bits.
#[must_use]
pub fn encode_f64s(xs: &[f64]) -> Vec<u8> {
    let bits: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
    encode_u64s(&bits)
}

/// Decodes a length-prefixed `f64` vector.
pub fn decode_f64s(payload: &[u8]) -> Result<Vec<f64>, ProtoError> {
    Ok(decode_u64s(payload)?
        .into_iter()
        .map(f64::from_bits)
        .collect())
}

/// Encodes one `u64`.
#[must_use]
pub fn encode_u64(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

/// Decodes exactly one `u64`.
pub fn decode_u64(payload: &[u8]) -> Result<u64, ProtoError> {
    let mut r = Reader::new(payload);
    let x = r.u64()?;
    r.done()?;
    Ok(x)
}

/// The `INSERT_BATCH` / `MERGE_SNAPSHOT` acknowledgement: the
/// tenant's item count after the operation, plus the WAL sequence
/// number the operation was logged under when the server runs with
/// `--data-dir` (`seq == 0` on an in-memory server — WAL sequence
/// numbers start at 1, so 0 unambiguously means "not durable").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// The tenant's total item count after the ingest.
    pub n: u64,
    /// WAL sequence number of the logged operation (0 = in-memory).
    pub seq: u64,
}

/// Encodes an [`IngestAck`] (two `u64` words).
#[must_use]
pub fn encode_ingest_ack(ack: IngestAck) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&ack.n.to_le_bytes());
    out.extend_from_slice(&ack.seq.to_le_bytes());
    out
}

/// Decodes an [`IngestAck`].
pub fn decode_ingest_ack(payload: &[u8]) -> Result<IngestAck, ProtoError> {
    let mut r = Reader::new(payload);
    let n = r.u64()?;
    let seq = r.u64()?;
    r.done()?;
    Ok(IngestAck { n, seq })
}

/// Encodes quantile answers: count, then a presence flag byte and a
/// value word per answer (`None` answers an empty tenant).
#[must_use]
pub fn encode_answers(answers: &[Option<u64>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + answers.len() * 9);
    out.extend_from_slice(&(answers.len() as u64).to_le_bytes());
    for a in answers {
        out.push(u8::from(a.is_some()));
        out.extend_from_slice(&a.unwrap_or(0).to_le_bytes());
    }
    out
}

/// Decodes [`encode_answers`] output.
pub fn decode_answers(payload: &[u8]) -> Result<Vec<Option<u64>>, ProtoError> {
    let mut r = Reader::new(payload);
    let count = r.read_len().map_err(ProtoError::Codec)?;
    if count > payload.len() / 9 {
        return Err(ProtoError::Codec(CodecError::Truncated));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let present = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(ProtoError::Malformed("answer flag not 0/1")),
        };
        let value = r.u64()?;
        out.push(present.then_some(value));
    }
    r.done()?;
    Ok(out)
}

/// Encodes a `QUERY_MANY` request payload: the φ-sweep (IEEE-754
/// bits) followed by the rank probe values, both length-prefixed.
#[must_use]
pub fn encode_query_many(phis: &[f64], xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + (phis.len() + xs.len()) * 8);
    let bits: Vec<u64> = phis.iter().map(|p| p.to_bits()).collect();
    sqs_core::codec::put_u64_slice(&mut out, &bits);
    sqs_core::codec::put_u64_slice(&mut out, xs);
    out
}

/// Decodes a `QUERY_MANY` request payload into `(phis, xs)`.
pub fn decode_query_many(payload: &[u8]) -> Result<(Vec<f64>, Vec<u64>), ProtoError> {
    let mut r = Reader::new(payload);
    let bits = r.u64_vec()?;
    let xs = r.u64_vec()?;
    r.done()?;
    let phis = bits.into_iter().map(f64::from_bits).collect();
    Ok((phis, xs))
}

/// Encodes a `QUERY_MANY` response: the φ answers block (same layout
/// as [`encode_answers`]) followed by the length-prefixed rank vector.
#[must_use]
pub fn encode_query_many_reply(quantiles: &[Option<u64>], ranks: &[u64]) -> Vec<u8> {
    let mut out = encode_answers(quantiles);
    sqs_core::codec::put_u64_slice(&mut out, ranks);
    out
}

/// Decodes a `QUERY_MANY` response into `(quantiles, ranks)`. This has
/// its own decoder (rather than reusing [`decode_answers`]) because
/// the answers block is followed by the rank vector, so the reply must
/// be consumed as one frame.
pub fn decode_query_many_reply(payload: &[u8]) -> Result<(Vec<Option<u64>>, Vec<u64>), ProtoError> {
    let mut r = Reader::new(payload);
    let count = r.read_len().map_err(ProtoError::Codec)?;
    if count > payload.len() / 9 {
        return Err(ProtoError::Codec(CodecError::Truncated));
    }
    let mut quantiles = Vec::with_capacity(count);
    for _ in 0..count {
        let present = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(ProtoError::Malformed("answer flag not 0/1")),
        };
        let value = r.u64()?;
        quantiles.push(present.then_some(value));
    }
    let ranks = r.u64_vec()?;
    r.done()?;
    Ok((quantiles, ranks))
}

// ---- window frames (payloads of the WINDOW_* ops) ----------------
//
// Window payloads are self-describing sub-frames inside the SQSW
// envelope: their own magic, version, kind byte and trailing FNV-1a-64
// checksum. The double checksum is deliberate — a window frame can be
// logged, replayed or diffed *outside* a socket conversation (the WAL
// stores raw payloads), so it must validate standalone. Every decoder
// finishes by running the payload's `CheckInvariants`, so a
// structurally-valid but semantically-impossible frame (inverted
// range, Some-answers in an empty window, φ outside (0,1)) is rejected
// at the boundary, never acted on.

/// Window sub-frame magic: the four bytes `SQWF` (Streaming Quantile
/// Window Frame).
pub const WINDOW_FRAME_MAGIC: [u8; 4] = *b"SQWF";

/// Window sub-frame version; both sides reject anything else.
pub const WINDOW_FRAME_VERSION: u8 = 1;

/// Window frame kind bytes (`SQWF` header byte 6).
mod wf {
    pub const INSERT: u8 = 1;
    pub const QUERY: u8 = 2;
    pub const ANSWER: u8 = 3;
    pub const STATS: u8 = 4;
}

/// Wire codes for [`WindowKind`] (`0` is reserved as invalid).
fn window_kind_code(kind: WindowKind) -> u8 {
    match kind {
        WindowKind::Sliding => 1,
        WindowKind::Tumbling => 2,
    }
}

fn window_kind_from_code(code: u8) -> Option<WindowKind> {
    match code {
        1 => Some(WindowKind::Sliding),
        2 => Some(WindowKind::Tumbling),
        _ => None,
    }
}

/// Wraps a body in the `SQWF` envelope: magic, version, kind,
/// body, trailing checksum over everything before it.
fn seal_window_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + body.len() + 8);
    out.extend_from_slice(&WINDOW_FRAME_MAGIC);
    out.push(WINDOW_FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(body);
    let sum = fnv1a64_concat(&[&out]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Opens an `SQWF` envelope of the expected kind, returning the body.
/// Checksum first (any corruption lands here), then magic / version /
/// kind.
fn open_window_frame(expected_kind: u8, payload: &[u8]) -> Result<&[u8], ProtoError> {
    if payload.len() < 6 + 8 {
        return Err(ProtoError::Codec(CodecError::Truncated));
    }
    let body_end = payload.len() - 8;
    let framed = payload.get(..body_end).unwrap_or_default();
    let sum_bytes = payload.get(body_end..).unwrap_or_default();
    let declared = {
        let mut r = Reader::new(sum_bytes);
        r.u64()?
    };
    if fnv1a64_concat(&[framed]) != declared {
        return Err(ProtoError::ChecksumMismatch);
    }
    let mut r = Reader::new(framed);
    if r.bytes(4)? != WINDOW_FRAME_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = r.u8()?;
    if version != WINDOW_FRAME_VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expected_kind {
        return Err(ProtoError::Malformed("window frame kind mismatch"));
    }
    Ok(framed.get(6..).unwrap_or_default())
}

fn invariant_to_proto(v: sqs_util::audit::InvariantViolation) -> ProtoError {
    ProtoError::Malformed(v.invariant)
}

/// Encodes a `WINDOW_INSERT` payload: event timestamp plus the value
/// batch.
#[must_use]
pub fn encode_window_insert(ts_nanos: u64, xs: &[u64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + 8 + xs.len() * 8);
    body.extend_from_slice(&ts_nanos.to_le_bytes());
    sqs_core::codec::put_u64_slice(&mut body, xs);
    seal_window_frame(wf::INSERT, &body)
}

/// Decodes a `WINDOW_INSERT` payload into `(ts_nanos, values)`.
pub fn decode_window_insert(payload: &[u8]) -> Result<(u64, Vec<u64>), ProtoError> {
    let body = open_window_frame(wf::INSERT, payload)?;
    let mut r = Reader::new(body);
    let ts_nanos = r.u64()?;
    let xs = r.u64_vec()?;
    r.done()?;
    Ok((ts_nanos, xs))
}

/// Encodes a `WINDOW_QUERY` payload: the window descriptor plus the
/// φ-sweep (as IEEE-754 bits).
#[must_use]
pub fn encode_window_query(spec: WindowSpec, phis: &[f64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + 8 + 8 + phis.len() * 8);
    body.push(window_kind_code(spec.kind));
    body.extend_from_slice(&spec.len_nanos.to_le_bytes());
    let bits: Vec<u64> = phis.iter().map(|p| p.to_bits()).collect();
    sqs_core::codec::put_u64_slice(&mut body, &bits);
    seal_window_frame(wf::QUERY, &body)
}

/// Decodes a `WINDOW_QUERY` payload into `(spec, phis)`, enforcing the
/// descriptor's invariants and that every φ is finite and in (0, 1).
pub fn decode_window_query(payload: &[u8]) -> Result<(WindowSpec, Vec<f64>), ProtoError> {
    let body = open_window_frame(wf::QUERY, payload)?;
    let mut r = Reader::new(body);
    let kind_code = r.u8()?;
    let kind =
        window_kind_from_code(kind_code).ok_or(ProtoError::Malformed("unknown window kind"))?;
    let len_nanos = r.u64()?;
    let bits = r.u64_vec()?;
    r.done()?;
    let spec = WindowSpec { kind, len_nanos };
    spec.check_invariants().map_err(invariant_to_proto)?;
    let phis: Vec<f64> = bits.into_iter().map(f64::from_bits).collect();
    if !phis.iter().all(|p| p.is_finite() && *p > 0.0 && *p < 1.0) {
        return Err(ProtoError::Malformed("phi outside (0, 1)"));
    }
    Ok((spec, phis))
}

/// Encodes a `WINDOW_QUERY` response: the covered range, mass, and
/// per-φ answers.
#[must_use]
pub fn encode_window_answer(answer: &WindowAnswer) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 * 3 + 8 + answer.answers.len() * 9);
    body.extend_from_slice(&answer.start_nanos.to_le_bytes());
    body.extend_from_slice(&answer.end_nanos.to_le_bytes());
    body.extend_from_slice(&answer.n.to_le_bytes());
    body.extend_from_slice(&(answer.answers.len() as u64).to_le_bytes());
    for a in &answer.answers {
        body.push(u8::from(a.is_some()));
        body.extend_from_slice(&a.unwrap_or(0).to_le_bytes());
    }
    seal_window_frame(wf::ANSWER, &body)
}

/// Decodes a `WINDOW_QUERY` response, ending in the answer's
/// `CheckInvariants` (range ordered, empty windows answer `None`).
pub fn decode_window_answer(payload: &[u8]) -> Result<WindowAnswer, ProtoError> {
    let body = open_window_frame(wf::ANSWER, payload)?;
    let mut r = Reader::new(body);
    let start_nanos = r.u64()?;
    let end_nanos = r.u64()?;
    let n = r.u64()?;
    let count = r.read_len().map_err(ProtoError::Codec)?;
    if count > body.len() / 9 {
        return Err(ProtoError::Codec(CodecError::Truncated));
    }
    let mut answers = Vec::with_capacity(count);
    for _ in 0..count {
        let present = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(ProtoError::Malformed("answer flag not 0/1")),
        };
        let value = r.u64()?;
        answers.push(present.then_some(value));
    }
    r.done()?;
    let answer = WindowAnswer {
        start_nanos,
        end_nanos,
        n,
        answers,
    };
    answer.check_invariants().map_err(invariant_to_proto)?;
    Ok(answer)
}

/// Encodes a `WINDOW_STATS` response: the ring's counters as a fixed
/// word vector.
#[must_use]
pub fn encode_window_stats(stats: &WindowStats) -> Vec<u8> {
    let words = stats.as_words();
    let mut body = Vec::with_capacity(8 + words.len() * 8);
    sqs_core::codec::put_u64_slice(&mut body, &words);
    seal_window_frame(wf::STATS, &body)
}

/// Decodes a `WINDOW_STATS` response.
pub fn decode_window_stats(payload: &[u8]) -> Result<WindowStats, ProtoError> {
    let body = open_window_frame(wf::STATS, payload)?;
    let mut r = Reader::new(body);
    let words = r.u64_vec()?;
    r.done()?;
    let arr: [u64; WINDOW_STATS_WORDS] = words
        .try_into()
        .map_err(|_| ProtoError::Malformed("window stats word count"))?;
    Ok(WindowStats::from_words(&arr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, req).expect("write");
        read_request(&mut Cursor::new(buf))
            .expect("read")
            .expect("not eof")
    }

    #[test]
    fn request_roundtrip() {
        let req = Request {
            op: Op::InsertBatch,
            tenant: 42,
            payload: encode_u64s(&[1, 2, 3]),
        };
        let back = roundtrip_request(&req);
        assert_eq!(back.op, Op::InsertBatch);
        assert_eq!(back.tenant, 42);
        assert_eq!(decode_u64s(&back.payload).expect("payload"), vec![1, 2, 3]);
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response {
                status: Status::Busy,
                payload: b"queue full".to_vec(),
            },
        )
        .expect("write");
        let back = read_response(&mut Cursor::new(buf)).expect("read");
        assert_eq!(back.status, Status::Busy);
        assert_eq!(back.payload, b"queue full");
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        assert!(read_request(&mut Cursor::new(Vec::new()))
            .expect("clean eof")
            .is_none());
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request {
                op: Op::Stats,
                tenant: 0,
                payload: Vec::new(),
            },
        )
        .expect("write");
        buf.truncate(buf.len() - 3);
        assert!(read_request(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request {
                op: Op::QueryRank,
                tenant: 7,
                payload: encode_u64(12345),
            },
        )
        .expect("write");
        // Flip one bit somewhere past the header fields that have their
        // own structural checks (magic/version/op).
        for at in [8usize, 14, 21, buf.len() - 1] {
            let mut bad = buf.clone();
            if let Some(b) = bad.get_mut(at) {
                *b ^= 0x10;
            }
            assert!(
                read_request(&mut Cursor::new(bad)).is_err(),
                "flip at {at} accepted"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.push(VERSION);
        head.push(Op::InsertBatch.code());
        head.extend_from_slice(&[0u8; 2]);
        head.extend_from_slice(&0u64.to_le_bytes());
        head.extend_from_slice(&u32::MAX.to_le_bytes()); // forged length
        let err = read_request(&mut Cursor::new(head)).expect_err("must reject");
        assert!(matches!(err, ProtoError::Oversized(_)), "{err}");
    }

    #[test]
    fn query_many_payloads_roundtrip() {
        let phis = [0.01, 0.5, 0.999];
        let xs = [0u64, 42, u64::MAX];
        let (p2, x2) = decode_query_many(&encode_query_many(&phis, &xs)).expect("roundtrip");
        assert_eq!(p2, phis);
        assert_eq!(x2, xs);

        let quantiles = [Some(7u64), None, Some(u64::MAX)];
        let ranks = [0u64, 123_456];
        let (q2, r2) = decode_query_many_reply(&encode_query_many_reply(&quantiles, &ranks))
            .expect("reply roundtrip");
        assert_eq!(q2, quantiles);
        assert_eq!(r2, ranks);

        // Empty sweeps are legal frames.
        let (q3, r3) =
            decode_query_many_reply(&encode_query_many_reply(&[], &[])).expect("empty reply");
        assert!(q3.is_empty() && r3.is_empty());

        // Trailing garbage is rejected, as for every other frame.
        let mut bad = encode_query_many(&phis, &xs);
        bad.push(0);
        assert!(decode_query_many(&bad).is_err());
    }

    #[test]
    fn op_and_status_codes_are_stable() {
        for op in Op::ALL {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Op::from_code(0), None);
        assert_eq!(Op::from_code(8), Some(Op::WindowInsert));
        assert_eq!(Op::from_code(10), Some(Op::WindowStats));
        assert_eq!(Op::from_code(11), Some(Op::QueryMany));
        assert_eq!(Op::from_code(12), None);
        for s in [Status::Ok, Status::Busy, Status::Err] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(3), None);
    }

    #[test]
    fn answer_payload_roundtrip() {
        let answers = vec![Some(5u64), None, Some(u64::MAX)];
        let bytes = encode_answers(&answers);
        assert_eq!(decode_answers(&bytes).expect("roundtrip"), answers);
        assert!(decode_answers(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ingest_ack_roundtrip() {
        let ack = IngestAck { n: 12345, seq: 67 };
        let bytes = encode_ingest_ack(ack);
        assert_eq!(bytes.len(), 16);
        assert_eq!(decode_ingest_ack(&bytes).expect("roundtrip"), ack);
        assert!(decode_ingest_ack(&bytes[..15]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_ingest_ack(&extra).is_err(), "trailing byte rejected");
    }

    #[test]
    fn f64_payload_roundtrip_is_bit_exact() {
        let phis = [0.001, 0.5, 0.999];
        let back = decode_f64s(&encode_f64s(&phis)).expect("roundtrip");
        assert_eq!(back, phis.to_vec());
    }

    #[test]
    fn window_insert_frame_roundtrip() {
        let bytes = encode_window_insert(12_345, &[1, 2, 3, u64::MAX]);
        let (ts, xs) = decode_window_insert(&bytes).expect("roundtrip");
        assert_eq!(ts, 12_345);
        assert_eq!(xs, vec![1, 2, 3, u64::MAX]);
        // Wrong kind: an insert frame is not a query frame.
        assert!(decode_window_query(&bytes).is_err());
    }

    #[test]
    fn window_query_frame_roundtrip_and_validation() {
        let spec = WindowSpec::sliding(5_000);
        let bytes = encode_window_query(spec, &[0.25, 0.5, 0.99]);
        let (back, phis) = decode_window_query(&bytes).expect("roundtrip");
        assert_eq!(back, spec);
        assert_eq!(phis, vec![0.25, 0.5, 0.99]);
        // A zero span violates the descriptor's invariant.
        let bad = encode_window_query(WindowSpec::tumbling(0), &[0.5]);
        assert!(matches!(
            decode_window_query(&bad),
            Err(ProtoError::Malformed(_))
        ));
        // φ outside (0, 1) is refused at the boundary.
        for phi in [0.0, 1.0, -0.5, f64::NAN, f64::INFINITY] {
            let bad = encode_window_query(spec, &[phi]);
            assert!(decode_window_query(&bad).is_err(), "phi {phi} accepted");
        }
    }

    #[test]
    fn window_answer_frame_roundtrip_and_invariants() {
        let answer = WindowAnswer {
            start_nanos: 1_000,
            end_nanos: 3_000,
            n: 42,
            answers: vec![Some(7), None, Some(u64::MAX)],
        };
        let bytes = encode_window_answer(&answer);
        assert_eq!(decode_window_answer(&bytes).expect("roundtrip"), answer);
        // A semantically-impossible answer (empty window with a Some
        // quantile) is rejected by the decoder's invariant check.
        let lying = WindowAnswer {
            start_nanos: 0,
            end_nanos: 1_000,
            n: 0,
            answers: vec![Some(5)],
        };
        assert!(matches!(
            decode_window_answer(&encode_window_answer(&lying)),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn window_stats_frame_roundtrip() {
        let mut stats = WindowStats::default();
        stats.bucket_nanos = 1_000_000_000;
        stats.late_dropped = 17;
        stats.rollup_hits = 5;
        let bytes = encode_window_stats(&stats);
        assert_eq!(decode_window_stats(&bytes).expect("roundtrip"), stats);
    }

    #[test]
    fn window_frames_reject_corruption() {
        let bytes = encode_window_insert(99, &[4, 5, 6]);
        // Any single-bit flip lands in the checksum (or a structural
        // check) — never a panic, never a silent accept.
        for at in 0..bytes.len() {
            let mut bad = bytes.clone();
            if let Some(b) = bad.get_mut(at) {
                *b ^= 0x01;
            }
            assert!(decode_window_insert(&bad).is_err(), "flip at {at} accepted");
        }
        // Every truncation is refused too.
        for cut in 0..bytes.len() {
            assert!(
                decode_window_insert(bytes.get(..cut).unwrap_or_default()).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }
}
