//! The multi-tenant TCP quantile server.
//!
//! One accept thread feeds a **bounded** connection queue drained by a
//! fixed worker pool — the server's entire backpressure story:
//!
//! * the queue holds at most `queue_depth` waiting connections;
//! * when it is full, the accept thread *sheds* the connection with an
//!   explicit [`Status::Busy`] reply and closes it — nothing is ever
//!   buffered without bound, and clients get a signal they can back
//!   off on rather than a mysterious stall;
//! * workers own one connection at a time and serve its requests
//!   synchronously; ingest goes through the engine's request-scoped
//!   [`ingest_batch`](sqs_engine::ShardedEngine::ingest_batch), so an
//!   `INSERT_BATCH` reply means the data is already merged — there are
//!   no server-side ingest buffers for shutdown to lose.
//!
//! Tenants are lazily materialized [`ShardedEngine`]s keyed by the
//! request's tenant id; a caller-supplied factory builds each shard
//! summary (per-tenant, per-shard seeds for randomized backends).
//!
//! Graceful shutdown (the `SHUTDOWN` op or
//! [`ServerHandle::shutdown`]): set the stop flag, close the queue
//! (workers finish their in-flight request, then exit), and wake the
//! blocked `accept` with a loopback self-connect. Because ingest is
//! request-scoped, everything acknowledged before shutdown is already
//! in the shard summaries.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sqs_core::codec::WireCodec;
use sqs_core::MergeableSummary;
use sqs_engine::ShardedEngine;
use sqs_store::{DurableStore, FsyncPolicy, StoreConfig, WalPayload};
use sqs_util::clock::{Clock, SystemClock};
use sqs_window::{WindowConfig, WindowedEngine};

use crate::metrics::{Metrics, WindowTotals};
use crate::proto::{self, IngestAck, Op, Request, Response, Status};

/// Tuning knobs for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded backpressure queue: connections waiting for a worker
    /// beyond this are shed with [`Status::Busy`].
    pub queue_depth: usize,
    /// Per-connection socket read timeout (idle cut-off).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Shards per tenant engine.
    pub shards: usize,
    /// Engine batch capacity (sizing hint for its ingest paths).
    pub batch_capacity: usize,
    /// Upper bound (exclusive) on ingestable values, for backends with
    /// a bounded universe (q-digest): out-of-range values are refused
    /// with an error reply instead of reaching the summary's panic.
    /// `None` admits any `u64`.
    pub value_bound: Option<u64>,
    /// Durable storage (WAL + checkpoints) under a data directory.
    /// `None` — the default — keeps today's in-memory behavior with
    /// zero hot-path cost.
    pub durability: Option<DurabilityConfig>,
    /// Time-windowed quantiles (`sqs-serve --window-bucket-secs`).
    /// `None` — the default — leaves the existing ops' hot path
    /// untouched and makes the `WINDOW_*` ops reply with an error.
    pub window: Option<WindowOptions>,
}

/// Opt-in windowing settings: the ring configuration plus the clock
/// that drives bucket rotation ([`SystemClock`] in production, a
/// [`ManualClock`](sqs_util::clock::ManualClock) in deterministic
/// tests).
#[derive(Debug, Clone)]
pub struct WindowOptions {
    /// Bucket width, retention, rollup grouping, late policy — shared
    /// by every tenant's ring.
    pub config: WindowConfig,
    /// The clock window rotation reads. Every tenant ring shares it.
    pub clock: Arc<dyn Clock>,
}

impl WindowOptions {
    /// Windowing on the production monotonic clock.
    #[must_use]
    pub fn new(config: WindowConfig) -> Self {
        Self {
            config,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Windowing on a caller-supplied clock (deterministic tests).
    #[must_use]
    pub fn with_clock(config: WindowConfig, clock: Arc<dyn Clock>) -> Self {
        Self { config, clock }
    }
}

/// Opt-in durability settings (`sqs-serve --data-dir`).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root data directory (`wal/` and `ckpt/` live under it).
    pub data_dir: PathBuf,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// When WAL appends reach the platter.
    pub fsync: FsyncPolicy,
    /// How often the background checkpointer scans for tenants with
    /// un-checkpointed records.
    pub checkpoint_interval: Duration,
}

impl DurabilityConfig {
    /// Defaults for `data_dir`: 64 MiB segments, fsync-always,
    /// checkpoint scan every 30 s.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            segment_bytes: 64 << 20,
            fsync: FsyncPolicy::Always,
            checkpoint_interval: Duration::from_secs(30),
        }
    }
}

/// What recovery found and rebuilt at startup, for operator logs and
/// the recovery smoke test.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverySummary {
    /// Tenants rebuilt (from a checkpoint, WAL records, or both).
    pub tenants: usize,
    /// Checkpoints decoded and absorbed.
    pub checkpoints_loaded: u64,
    /// WAL records replayed into engines.
    pub records_replayed: u64,
    /// Stream items inside replayed batch records.
    pub items_replayed: u64,
    /// Torn/corrupt WAL tails truncated during replay.
    pub torn_tails_dropped: u64,
    /// Corrupt checkpoint files skipped (older one used instead).
    pub corrupt_checkpoints_skipped: u64,
    /// Replayed records that failed to apply (deterministically
    /// incompatible merge-snapshot frames, also refused pre-crash).
    pub failed_applies: u64,
    /// Total items across all engines after recovery — verified
    /// against the checkpoint counts plus replayed batch items.
    pub total_items: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shards: 4,
            batch_capacity: 1024,
            value_bound: None,
            durability: None,
            window: None,
        }
    }
}

/// A bounded MPMC queue of accepted connections: `try_push` from the
/// accept thread (never blocks — full means shed), blocking `pop` from
/// the workers, `close` to drain-and-stop.
struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<T>> {
        // A worker that panicked mid-request poisons nothing of the
        // queue's own state; recover the guard and keep serving.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueues unless full or closed; hands the item back on refusal
    /// so the caller can shed it explicitly.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.lock();
        if q.closed || q.items.len() >= q.capacity {
            return Err(item);
        }
        q.items.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained
    /// (pending connections still get served during shutdown).
    fn pop(&self) -> Option<T> {
        let mut q = self.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = match self.ready.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// Shard-index offset for window-bucket summaries built through the
/// tenant factory: far above any real shard count, so bucket seeds and
/// shard seeds never coincide. Bucket indices are folded modulo a
/// prime (1021) into the offset range — seeds recycle across very long
/// horizons, which is harmless (only decorrelation matters).
const WINDOW_FACTORY_SHARD_BASE: usize = 1 << 20;

/// State shared by the accept thread and every worker.
struct Shared<S> {
    cfg: ServerConfig,
    addr: SocketAddr,
    tenants: Mutex<HashMap<u64, Arc<ShardedEngine<u64, S>>>>,
    /// Per-tenant window rings, lazily materialized on the first
    /// `WINDOW_*` request; empty forever when `cfg.window` is `None`.
    windows: Mutex<HashMap<u64, Arc<WindowedEngine<S>>>>,
    /// `Arc` (not `Box`) so window rings can hold a handle into the
    /// same factory for their per-bucket summaries.
    factory: Arc<dyn Fn(u64, usize) -> S + Send + Sync>,
    queue: BoundedQueue<TcpStream>,
    stop: AtomicBool,
    metrics: Metrics,
    /// The durable store (`--data-dir`); `None` on in-memory servers.
    store: Option<Arc<DurableStore>>,
    /// What recovery rebuilt at startup (durable servers only).
    recovery: Option<RecoverySummary>,
}

impl<S> Shared<S>
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    /// The tenant's engine, created on first touch.
    fn tenant(&self, id: u64) -> Arc<ShardedEngine<u64, S>> {
        let mut map = match self.tenants.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(map.entry(id).or_insert_with(|| {
            Arc::new(ShardedEngine::new_with(
                self.cfg.shards,
                self.cfg.batch_capacity,
                |shard| (self.factory)(id, shard),
            ))
        }))
    }

    /// The tenant's windowed engine, created on first touch; `None`
    /// whenever the server runs without windowing. The ring's
    /// per-bucket summaries come from the same factory as the shard
    /// summaries, with shard indices offset by
    /// [`WINDOW_FACTORY_SHARD_BASE`] so bucket seeds never collide
    /// with shard seeds (randomized backends stay merge-compatible —
    /// same accuracy — but independently seeded).
    fn window_tenant(&self, id: u64) -> Option<Arc<WindowedEngine<S>>> {
        let opts = self.cfg.window.as_ref()?;
        // The engine lock is taken and released inside `tenant` before
        // the windows lock below — never both at once.
        let engine = self.tenant(id);
        let mut map = match self.windows.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Some(Arc::clone(map.entry(id).or_insert_with(|| {
            let factory = Arc::clone(&self.factory);
            Arc::new(WindowedEngine::new(
                engine,
                opts.config,
                Arc::clone(&opts.clock),
                move |bucket| {
                    let slot = usize::try_from(bucket % 1021).unwrap_or(0);
                    factory(id, WINDOW_FACTORY_SHARD_BASE + slot)
                },
            ))
        })))
    }

    /// Cross-tenant window aggregate for the `STATS` reply; `None`
    /// when windowing is off (the JSON section is omitted). Ring
    /// `Arc`s are cloned out first so each ring's stat read happens
    /// without the map lock held.
    fn window_totals(&self) -> Option<WindowTotals> {
        self.cfg.window.as_ref()?;
        let rings: Vec<Arc<WindowedEngine<S>>> = match self.windows.lock() {
            Ok(g) => g.values().cloned().collect(),
            Err(poisoned) => poisoned.into_inner().values().cloned().collect(),
        };
        let mut totals = WindowTotals::default();
        for ring in &rings {
            totals.absorb(&ring.stats());
        }
        Some(totals)
    }

    /// Tenant count plus the cross-tenant engine aggregate for the
    /// `STATS` reply, read in one pass over the tenant map. The engine
    /// `Arc`s are cloned out first so each engine's (brief) stat loads
    /// happen without the map lock held.
    fn stats_snapshot(&self) -> (usize, crate::metrics::EngineTotals) {
        let engines: Vec<Arc<ShardedEngine<u64, S>>> = match self.tenants.lock() {
            Ok(g) => g.values().cloned().collect(),
            Err(poisoned) => poisoned.into_inner().values().cloned().collect(),
        };
        let mut totals = crate::metrics::EngineTotals::default();
        for engine in &engines {
            totals.absorb(&engine.stats());
        }
        (engines.len(), totals)
    }

    /// Flips the stop flag, closes the queue, flushes the WAL, and
    /// nudges the blocked `accept` with a throwaway self-connect.
    fn initiate_shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.queue.close();
        if let Some(store) = &self.store {
            // Graceful shutdown makes even `--fsync never`/`interval`
            // state durable; errors are moot (kill -9 recovery covers
            // the same ground).
            let _ = store.flush();
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// A running server: its bound address plus the thread handles.
///
/// Dropping the handle shuts the server down and joins every thread;
/// call [`shutdown`](Self::shutdown) + [`join`](Self::join) to do it
/// explicitly (or send the `SHUTDOWN` op from any client and `join`).
pub struct ServerHandle<S> {
    shared: Arc<Shared<S>>,
    threads: Vec<JoinHandle<()>>,
}

impl<S> ServerHandle<S>
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a graceful stop: in-flight requests finish, queued
    /// connections drain, nothing acknowledged is lost.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// What recovery rebuilt at startup: `Some` whenever the server
    /// runs durably (zeroed counts on a fresh data directory), `None`
    /// on in-memory servers.
    #[must_use]
    pub fn recovery(&self) -> Option<RecoverySummary> {
        self.shared.recovery
    }

    /// Blocks until every server thread has exited (after a local
    /// [`shutdown`](Self::shutdown) or a remote `SHUTDOWN` op).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<S> Drop for ServerHandle<S> {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.queue.close();
        let _ = TcpStream::connect_timeout(&self.shared.addr, Duration::from_millis(200));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `cfg.addr` and starts the accept thread plus `cfg.workers`
/// worker threads. `factory(tenant, shard)` builds each shard summary
/// of each lazily-created tenant engine — the place where per-tenant,
/// per-shard seeds diverge for randomized backends.
///
/// # Errors
/// Returns the bind error if the address is unavailable.
pub fn spawn<S, F>(cfg: ServerConfig, factory: F) -> io::Result<ServerHandle<S>>
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
    F: Fn(u64, usize) -> S + Send + Sync + 'static,
{
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let queue_depth = cfg.queue_depth.max(1);
    let durability = cfg.durability.clone();
    let (store, recovered) = match &durability {
        Some(d) => {
            let store_cfg = StoreConfig {
                dir: d.data_dir.clone(),
                segment_bytes: d.segment_bytes,
                fsync: d.fsync,
            };
            let (store, recovery) = DurableStore::open(&store_cfg).map_err(io::Error::other)?;
            (Some(Arc::new(store)), Some(recovery))
        }
        None => (None, None),
    };
    let mut shared = Shared {
        cfg,
        addr,
        tenants: Mutex::new(HashMap::new()),
        windows: Mutex::new(HashMap::new()),
        factory: Arc::new(factory),
        queue: BoundedQueue::new(queue_depth),
        stop: AtomicBool::new(false),
        metrics: Metrics::new(),
        store,
        recovery: None,
    };
    if let Some(recovery) = recovered {
        shared.recovery = Some(apply_recovery(&shared, recovery)?);
    }
    let shared = Arc::new(shared);
    let mut threads = Vec::with_capacity(workers + 2);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&shared, &listener)));
    }
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    if let Some(d) = durability {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            checkpoint_loop(&shared, d.checkpoint_interval);
        }));
    }
    Ok(ServerHandle { shared, threads })
}

/// Rebuilds tenant engines from what the store recovered: absorb each
/// tenant's newest checkpoint, replay the WAL records after it, and
/// verify that the rebuilt item counts match the durable accounting.
///
/// Count verification is exact: every absorbed checkpoint and batch
/// record contributes a known mass, and replayed merge-snapshot frames
/// contribute their decoded mass. A mismatch means the store and the
/// engines disagree about what was acknowledged — the server refuses
/// to start rather than serve silently wrong answers.
fn apply_recovery<S>(
    shared: &Shared<S>,
    recovery: sqs_store::Recovery,
) -> io::Result<RecoverySummary>
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    let mut summary = RecoverySummary {
        torn_tails_dropped: recovery.report.torn_tails_dropped,
        corrupt_checkpoints_skipped: recovery.corrupt_checkpoints_skipped,
        ..RecoverySummary::default()
    };
    let mut expected: u64 = 0;
    for ckpt in &recovery.checkpoints {
        let decoded = S::from_bytes(&ckpt.frame).map_err(|e| {
            io::Error::other(format!(
                "recovery: checkpoint frame for tenant {} does not decode: {e}",
                ckpt.tenant
            ))
        })?;
        let mass = decoded.n();
        if mass != ckpt.n {
            return Err(io::Error::other(format!(
                "recovery: checkpoint for tenant {} declares {} items but its frame holds {}",
                ckpt.tenant, ckpt.n, mass
            )));
        }
        let engine = shared.tenant(ckpt.tenant);
        if engine.try_absorb(decoded).is_err() {
            return Err(io::Error::other(format!(
                "recovery: checkpoint for tenant {} is incompatible with the configured \
                 backend — was the server restarted with different accuracy settings?",
                ckpt.tenant
            )));
        }
        expected += mass;
        summary.checkpoints_loaded += 1;
    }
    for record in &recovery.records {
        let engine = shared.tenant(record.tenant);
        match &record.payload {
            WalPayload::Batch(xs) => {
                engine.ingest_batch(xs);
                shared.metrics.add_rows(xs.len() as u64);
                expected += xs.len() as u64;
                summary.items_replayed += xs.len() as u64;
                summary.records_replayed += 1;
            }
            WalPayload::Snapshot(frame) => match S::from_bytes(frame) {
                Ok(decoded) => {
                    let mass = decoded.n();
                    if engine.try_absorb(decoded).is_ok() {
                        expected += mass;
                        summary.records_replayed += 1;
                    } else {
                        // Deterministic dud: the pre-crash server also
                        // refused this frame after logging it.
                        summary.failed_applies += 1;
                    }
                }
                Err(_) => {
                    summary.failed_applies += 1;
                }
            },
        }
    }
    let (tenants, totals) = shared.stats_snapshot();
    summary.tenants = tenants;
    summary.total_items = totals.items;
    if totals.items != expected {
        return Err(io::Error::other(format!(
            "recovery: engines hold {} items but the durable state accounts for {expected} — \
             refusing to serve from inconsistent state",
            totals.items
        )));
    }
    Ok(summary)
}

/// The background checkpointer: every `interval`, snapshot each tenant
/// that has WAL records its checkpoint does not cover, write the
/// checkpoint atomically, and let the store truncate checkpoint-fenced
/// WAL segments. Exits (after a final WAL flush) when the server
/// stops.
fn checkpoint_loop<S>(shared: &Shared<S>, interval: Duration)
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    let Some(store) = shared.store.as_ref() else {
        return;
    };
    loop {
        // Sleep in short steps so shutdown is prompt.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline {
            if shared.stop.load(Ordering::Acquire) {
                let _ = store.flush();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        for (tenant, _target_seq) in store.tenants_needing_checkpoint() {
            let engine = shared.tenant(tenant);
            let handle = store.tenant(tenant);
            // Under the tenant gate, `last_append` and the engine
            // snapshot describe the same acknowledged prefix — the
            // consistency invariant recovery relies on.
            let (seq, mut snap, n) = {
                let _gate = handle.lock();
                (store.last_append(tenant), engine.snapshot(), engine.n())
            };
            let frame = WireCodec::to_bytes(&mut snap);
            // Slow file I/O happens after the gate is released. A
            // failed write just means retry next round — the WAL still
            // covers everything, so durability is unaffected.
            let _ = store.record_checkpoint(tenant, seq, n, &frame);
        }
    }
}

fn accept_loop<S>(shared: &Shared<S>, listener: &TcpListener)
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        if let Err(mut shed) = shared.queue.try_push(stream) {
            // Backpressure: explicit BUSY beats unbounded buffering.
            shared.metrics.note_busy();
            let _ = proto::write_response(
                &mut shed,
                &Response {
                    status: Status::Busy,
                    payload: b"connection queue full, retry with backoff".to_vec(),
                },
            );
        }
    }
}

fn worker_loop<S>(shared: &Shared<S>)
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    while let Some(stream) = shared.queue.pop() {
        serve_connection(shared, stream);
    }
}

/// Serves one connection's request stream until EOF, idle timeout,
/// protocol violation, or server stop.
fn serve_connection<S>(shared: &Shared<S>, mut stream: TcpStream)
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match proto::read_request(&mut stream) {
            Ok(Some(req)) => {
                let started = Instant::now();
                let resp = dispatch(shared, &req);
                shared.metrics.record_op(
                    req.op,
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                if proto::write_response(&mut stream, &resp).is_err() {
                    return;
                }
                if req.op == Op::Shutdown {
                    shared.initiate_shutdown();
                    return;
                }
            }
            Ok(None) => return,                 // client hung up cleanly
            Err(e) if e.is_timeout() => return, // idle connection
            Err(e) => {
                shared.metrics.note_proto_error();
                let _ = proto::write_response(
                    &mut stream,
                    &Response {
                        status: Status::Err,
                        payload: e.to_string().into_bytes(),
                    },
                );
                return;
            }
        }
    }
}

fn ok(payload: Vec<u8>) -> Response {
    Response {
        status: Status::Ok,
        payload,
    }
}

fn err(msg: String) -> Response {
    Response {
        status: Status::Err,
        payload: msg.into_bytes(),
    }
}

/// Executes one request against the tenant registry. Every failure is
/// an error *reply* — malformed payloads, out-of-universe values, and
/// incompatible snapshots must never panic a worker.
fn dispatch<S>(shared: &Shared<S>, req: &Request) -> Response
where
    S: MergeableSummary<u64> + WireCodec + Clone + Send + Sync + 'static,
{
    match req.op {
        Op::InsertBatch => {
            let xs = match proto::decode_u64s(&req.payload) {
                Ok(xs) => xs,
                Err(e) => return err(format!("insert batch: {e}")),
            };
            if let Some(bound) = shared.cfg.value_bound {
                if let Some(&bad) = xs.iter().find(|&&x| x >= bound) {
                    return err(format!(
                        "insert batch: value {bad} outside the backend universe [0, {bound})"
                    ));
                }
            }
            let engine = shared.tenant(req.tenant);
            let (n, seq) = match shared.store.as_ref() {
                Some(store) => {
                    // Durable path: log first, ingest second, both
                    // under the tenant gate — an ACK means the batch
                    // is on disk AND in the engine, and a checkpoint
                    // taken under the same gate sees a consistent
                    // (seq, engine-state) pair. The ack's count is
                    // read under the same gate so (n, seq) describe
                    // the same acknowledged prefix even when other
                    // connections ingest into this tenant.
                    let handle = store.tenant(req.tenant);
                    let _gate = handle.lock();
                    match store.append_batch(req.tenant, &xs) {
                        Ok(seq) => {
                            engine.ingest_batch(&xs);
                            (engine.n(), seq)
                        }
                        Err(e) => return err(format!("insert batch: wal append failed: {e}")),
                    }
                }
                None => {
                    engine.ingest_batch(&xs);
                    (engine.n(), 0)
                }
            };
            shared.metrics.add_rows(xs.len() as u64);
            ok(proto::encode_ingest_ack(IngestAck { n, seq }))
        }
        Op::QueryQuantiles => {
            let phis = match proto::decode_f64s(&req.payload) {
                Ok(phis) => phis,
                Err(e) => return err(format!("query quantiles: {e}")),
            };
            if let Some(&bad) = phis
                .iter()
                .find(|p| !(p.is_finite() && **p > 0.0 && **p < 1.0))
            {
                return err(format!("query quantiles: phi {bad} outside (0, 1)"));
            }
            let answers = shared.tenant(req.tenant).quantiles(&phis);
            ok(proto::encode_answers(&answers))
        }
        Op::QueryMany => {
            let (phis, xs) = match proto::decode_query_many(&req.payload) {
                Ok(parts) => parts,
                Err(e) => return err(format!("query many: {e}")),
            };
            if let Some(&bad) = phis
                .iter()
                .find(|p| !(p.is_finite() && **p > 0.0 && **p < 1.0))
            {
                return err(format!("query many: phi {bad} outside (0, 1)"));
            }
            let (quantiles, ranks) = shared.tenant(req.tenant).query_many(&phis, &xs);
            ok(proto::encode_query_many_reply(&quantiles, &ranks))
        }
        Op::QueryRank => match proto::decode_u64(&req.payload) {
            Ok(x) => ok(proto::encode_u64(
                shared.tenant(req.tenant).rank_estimate(x),
            )),
            Err(e) => err(format!("query rank: {e}")),
        },
        Op::Snapshot => {
            let mut snap = shared.tenant(req.tenant).snapshot();
            let bytes = WireCodec::to_bytes(&mut snap);
            if bytes.len() > proto::MAX_PAYLOAD as usize {
                return err(format!(
                    "snapshot of {} bytes exceeds the {}-byte frame cap",
                    bytes.len(),
                    proto::MAX_PAYLOAD
                ));
            }
            ok(bytes)
        }
        Op::MergeSnapshot => match S::from_bytes(&req.payload) {
            Ok(summary) => {
                let engine = shared.tenant(req.tenant);
                match shared.store.as_ref() {
                    Some(store) => {
                        // Log-then-absorb under the tenant gate, like
                        // ingest. An absorb failure after the append
                        // leaves a harmless dud record: replay hits
                        // the same deterministic incompatibility and
                        // skips it.
                        let handle = store.tenant(req.tenant);
                        let _gate = handle.lock();
                        if let Err(e) = store.append_snapshot(req.tenant, &req.payload) {
                            return err(format!("merge snapshot: wal append failed: {e}"));
                        }
                        match engine.try_absorb(summary) {
                            Ok(()) => ok(proto::encode_ingest_ack(IngestAck {
                                n: engine.n(),
                                seq: store.last_append(req.tenant),
                            })),
                            Err(_) => {
                                err("merge snapshot: accuracy configuration incompatible with \
                                 this tenant"
                                    .to_owned())
                            }
                        }
                    }
                    None => match engine.try_absorb(summary) {
                        Ok(()) => ok(proto::encode_ingest_ack(IngestAck {
                            n: engine.n(),
                            seq: 0,
                        })),
                        Err(_) => err(
                            "merge snapshot: accuracy configuration incompatible with this tenant"
                                .to_owned(),
                        ),
                    },
                }
            }
            Err(e) => err(format!("merge snapshot rejected: {e}")),
        },
        Op::Stats => {
            let (tenants, engine_totals) = shared.stats_snapshot();
            let store_stats = shared.store.as_ref().map(|s| s.stats());
            let window_totals = shared.window_totals();
            ok(shared
                .metrics
                .to_json(
                    tenants,
                    &engine_totals,
                    store_stats.as_ref(),
                    window_totals.as_ref(),
                )
                .into_bytes())
        }
        Op::Shutdown => ok(Vec::new()),
        Op::WindowInsert => {
            let (ts_nanos, xs) = match proto::decode_window_insert(&req.payload) {
                Ok(parts) => parts,
                Err(e) => return err(format!("window insert: {e}")),
            };
            if let Some(bound) = shared.cfg.value_bound {
                if let Some(&bad) = xs.iter().find(|&&x| x >= bound) {
                    return err(format!(
                        "window insert: value {bad} outside the backend universe [0, {bound})"
                    ));
                }
            }
            let Some(windowed) = shared.window_tenant(req.tenant) else {
                return err("window insert: windowing disabled (start the server with \
                            --window-bucket-secs)"
                    .to_owned());
            };
            let engine = shared.tenant(req.tenant);
            let (n, seq) = match shared.store.as_ref() {
                Some(store) => {
                    // Same durable contract as INSERT_BATCH: the WAL
                    // logs the plain batch (the all-time stream is
                    // what survives a restart — rings are rebuilt
                    // empty and refill as new data arrives, which
                    // docs/WINDOW.md spells out). Ring placement
                    // happens after the gate: it is volatile state
                    // and needs no WAL coverage.
                    let handle = store.tenant(req.tenant);
                    let _gate = handle.lock();
                    match store.append_batch(req.tenant, &xs) {
                        Ok(seq) => {
                            engine.ingest_batch(&xs);
                            (engine.n(), seq)
                        }
                        Err(e) => return err(format!("window insert: wal append failed: {e}")),
                    }
                }
                None => {
                    engine.ingest_batch(&xs);
                    (engine.n(), 0)
                }
            };
            let _outcome = windowed.ingest_window_only(ts_nanos, &xs);
            shared.metrics.add_rows(xs.len() as u64);
            ok(proto::encode_ingest_ack(IngestAck { n, seq }))
        }
        Op::WindowQuery => {
            let (spec, phis) = match proto::decode_window_query(&req.payload) {
                Ok(parts) => parts,
                Err(e) => return err(format!("window query: {e}")),
            };
            let Some(windowed) = shared.window_tenant(req.tenant) else {
                return err("window query: windowing disabled (start the server with \
                            --window-bucket-secs)"
                    .to_owned());
            };
            match windowed.query(spec, &phis) {
                Ok(answer) => ok(proto::encode_window_answer(&answer)),
                Err(e) => err(format!("window query: {e}")),
            }
        }
        Op::WindowStats => {
            let Some(windowed) = shared.window_tenant(req.tenant) else {
                return err("window stats: windowing disabled (start the server with \
                            --window-bucket-secs)"
                    .to_owned());
            };
            ok(proto::encode_window_stats(&windowed.stats()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third item refused");
        q.close();
        assert_eq!(q.try_push(4), Err(4), "closed queue refuses");
        assert_eq!(q.pop(), Some(1), "pending items drain after close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        assert!(q.try_push(7).is_ok());
        assert_eq!(popper.join().expect("no panic"), Some(7));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_depth >= 1);
        assert!(cfg.shards >= 1);
        assert!(cfg.value_bound.is_none());
        assert!(cfg.addr.ends_with(":0"), "tests want an ephemeral port");
    }
}
