//! End-to-end socket test for the `QUERY_MANY` op: one round trip
//! answers a φ-sweep plus a rank sweep from one merged snapshot, and
//! on a quiescent server the combined answers must equal what the
//! single-query ops return.

use std::time::Duration;

use sqs_service::server::{spawn, ServerConfig};
use sqs_service::Client;
use sqs_turnstile::TurnstileSummary;
use sqs_util::rng::SplitMix64;

const EPS: f64 = 0.02;
const LOG_U: u32 = 20;
const TENANT: u64 = 7;

#[test]
fn query_many_matches_single_query_ops_over_the_socket() {
    // Shards of one tenant merge at snapshot time, so every shard must
    // draw the same hash functions: the seed depends on the tenant only.
    let server = spawn(ServerConfig::default(), |tenant: u64, _shard: usize| {
        TurnstileSummary::dcs(EPS, LOG_U, tenant.wrapping_mul(31) ^ 1)
    })
    .expect("spawn server");
    let mut client =
        Client::connect(server.addr().to_string(), Duration::from_secs(10)).expect("connect");

    let mut rng = SplitMix64::new(0x9e37);
    let xs: Vec<u64> = (0..20_000).map(|_| rng.next_u64() % (1 << LOG_U)).collect();
    for chunk in xs.chunks(2048) {
        client.insert_batch(TENANT, chunk).expect("insert batch");
    }

    let phis = [0.01, 0.25, 0.5, 0.75, 0.99];
    let probes = [0u64, 1 << 10, 1 << 15, (1 << LOG_U) - 1, u64::MAX];
    let (quantiles, ranks) = client
        .query_many(TENANT, &phis, &probes)
        .expect("query many");
    assert_eq!(quantiles.len(), phis.len());
    assert_eq!(ranks.len(), probes.len());

    // The stream is quiescent, so single-op answers must agree exactly.
    let separate = client
        .query_quantiles(TENANT, &phis)
        .expect("query quantiles");
    assert_eq!(quantiles, separate, "φ-sweep must match QUERY_QUANTILES");
    for (&x, &rank) in probes.iter().zip(&ranks) {
        let single = client.query_rank(TENANT, x).expect("query rank");
        assert_eq!(rank, single, "rank sweep must match QUERY_RANK at x={x}");
    }

    // Asymmetric and empty shapes are legal.
    let (q_only, r_empty) = client
        .query_many(TENANT, &[0.5], &[])
        .expect("phi-only sweep");
    assert_eq!(q_only.len(), 1);
    assert!(r_empty.is_empty());
    let (q_empty, r_only) = client
        .query_many(TENANT, &[], &[1 << 12])
        .expect("rank-only sweep");
    assert!(q_empty.is_empty());
    assert_eq!(r_only.len(), 1);

    // An out-of-range φ is refused without disturbing the connection.
    let refused = client.query_many(TENANT, &[0.5, 1.5], &[]);
    assert!(
        matches!(refused, Err(sqs_service::ClientError::Server(ref msg)) if msg.contains("phi")),
        "bad phi must come back as a server error: {refused:?}"
    );
    let (still_ok, _) = client
        .query_many(TENANT, &[0.5], &[])
        .expect("connection survives a refused request");
    assert_eq!(still_ok.len(), 1);

    server.shutdown();
    server.join();
}
