//! Crash-recovery smoke tests for the durable server (`--data-dir`).
//!
//! Two restart paths:
//!
//! * **graceful** — in-process [`spawn`] with a [`DurabilityConfig`],
//!   shutdown, respawn on the same directory: everything acknowledged
//!   must come back, checkpoints included;
//! * **kill -9** — the real `sqs-serve` binary, SIGKILLed while a
//!   client is mid-ingest, restarted on the same directory: every
//!   *acknowledged* batch must come back, and the recovered answers
//!   must sit within ε rank error of an exact oracle over exactly the
//!   recovered prefix of the stream.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqs_core::random::RandomSketch;
use sqs_service::server::{spawn, DurabilityConfig, ServerConfig};
use sqs_service::Client;
use sqs_store::FsyncPolicy;
use sqs_util::exact::{probe_phis, ExactQuantiles};
use sqs_util::rng::SplitMix64;
use sqs_util::tmpdir::TempDir;

const EPS: f64 = 0.05;
const TENANT: u64 = 3;
/// Uniform batch length: WAL records are whole batches, so the
/// recovered multiset is always the first `k * BATCH` values of the
/// deterministic stream for some `k`.
const BATCH: usize = 512;

/// The `i`-th batch of the deterministic test stream.
fn batch_values(i: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(0xfeed ^ i);
    (0..BATCH).map(|_| rng.next_u64() % (1 << 24)).collect()
}

/// First `n` values of the deterministic test stream.
fn stream_prefix(n: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(usize::try_from(n).unwrap_or(0));
    let mut i = 0u64;
    while (out.len() as u64) < n {
        out.extend_from_slice(&batch_values(i));
        i += 1;
    }
    out.truncate(usize::try_from(n).unwrap_or(0));
    out
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("connect")
}

/// Recovered answers must sit within ε rank error of the exact oracle
/// over the recovered prefix (plus head-room for unlucky draws — the
/// seeds are fixed, so a pass here is deterministic).
fn assert_within_eps(client: &mut Client, oracle: &ExactQuantiles<u64>) {
    for phi in probe_phis(EPS) {
        let got = client
            .query_quantiles(TENANT, &[phi])
            .expect("query quantiles")
            .first()
            .copied()
            .flatten()
            .expect("recovered stream is non-empty");
        let err = oracle.quantile_error(phi, got);
        assert!(
            err <= 2.0 * EPS,
            "recovered quantile at phi={phi} off by rank error {err} (> 2ε)"
        );
    }
}

#[test]
fn graceful_restart_recovers_checkpoint_plus_wal_tail() {
    let dir = TempDir::new("sqs-recovery-api").expect("tempdir");
    let cfg = |dir: &std::path::Path| ServerConfig {
        durability: Some(DurabilityConfig {
            // Tiny segments + a fast checkpointer so one test exercises
            // rotation, checkpointing, and WAL truncation.
            segment_bytes: 1 << 16,
            fsync: FsyncPolicy::Always,
            checkpoint_interval: Duration::from_millis(100),
            ..DurabilityConfig::new(dir.to_path_buf())
        }),
        ..ServerConfig::default()
    };
    let factory = |tenant: u64, shard: usize| {
        RandomSketch::<u64>::new(EPS, tenant.wrapping_mul(31) ^ (shard as u64 + 1))
    };

    let server = spawn(cfg(dir.path()), factory).expect("spawn durable server");
    let fresh = server.recovery().expect("durable server reports recovery");
    assert_eq!(fresh.tenants, 0, "fresh data dir must recover nothing");
    let addr = server.addr().to_string();
    let mut client = connect(&addr);
    let mut sent = 0u64;
    for i in 0..20u64 {
        let ack = client
            .insert_batch(TENANT, &batch_values(i))
            .expect("insert batch");
        assert!(ack.seq > 0, "durable server must ack a WAL sequence");
        sent += BATCH as u64;
        if i == 9 {
            // Let the checkpointer cover the first half, so recovery
            // exercises checkpoint-absorb *and* WAL-tail replay.
            std::thread::sleep(Duration::from_millis(300));
        }
    }
    server.shutdown();
    server.join();

    let restarted = spawn(cfg(dir.path()), factory).expect("respawn on same dir");
    let recovery = restarted.recovery().expect("recovery summary");
    assert_eq!(recovery.tenants, 1, "one tenant must come back");
    assert_eq!(
        recovery.total_items, sent,
        "graceful restart must recover every acknowledged item"
    );
    let mut client = connect(&restarted.addr().to_string());
    let oracle = ExactQuantiles::new(stream_prefix(sent));
    assert_within_eps(&mut client, &oracle);
    restarted.shutdown();
    restarted.join();
}

/// Starts the real binary in durable mode and returns the child plus
/// its bound address, parsed from the `listening on ADDR` line (any
/// `recovered ...` line printed before it is returned too).
fn spawn_serve(dir: &std::path::Path) -> (Child, String, Option<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sqs-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--backend",
            "random",
            "--eps",
            "0.05",
            "--data-dir",
        ])
        .arg(dir)
        .args(["--fsync", "always", "--checkpoint-secs", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn sqs-serve");
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let mut recovered = None;
    loop {
        let line = lines
            .next()
            .expect("sqs-serve exited before binding")
            .expect("read sqs-serve stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            return (child, addr.to_owned(), recovered);
        }
        if line.starts_with("recovered ") {
            recovered = Some(line);
        }
    }
}

#[test]
fn sigkill_mid_ingest_recovers_every_acknowledged_batch() {
    let dir = TempDir::new("sqs-recovery-kill").expect("tempdir");
    let (mut child, addr, recovered) = spawn_serve(dir.path());
    assert!(recovered.is_none(), "fresh dir must not print recovery");

    // Ingest continuously from a background thread; the main thread
    // SIGKILLs the server mid-stream, so the last batch may die in
    // flight — but everything *acknowledged* is fsynced and must
    // survive.
    let acked = Arc::new(AtomicU64::new(0));
    let ingest = {
        let acked = Arc::clone(&acked);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = connect(&addr);
            let mut i = 0u64;
            while client.insert_batch(TENANT, &batch_values(i)).is_ok() {
                acked.fetch_add(1, Ordering::Release);
                i += 1;
            }
        })
    };
    let deadline = Instant::now() + Duration::from_secs(20);
    while acked.load(Ordering::Acquire) < 30 {
        assert!(Instant::now() < deadline, "ingest never reached 30 acks");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL sqs-serve");
    let _ = child.wait();
    ingest.join().expect("ingest thread");
    let acked_batches = acked.load(Ordering::Acquire);

    // Restart on the same directory; recovery must be announced.
    let (mut child, addr, recovered) = spawn_serve(dir.path());
    let recovered = recovered.expect("restart must print a recovery line");
    assert!(
        recovered.contains("1 tenants"),
        "unexpected recovery line: {recovered}"
    );

    // The recovered mass is a whole number of batches, covering at
    // least every acknowledged one (at most one un-acked batch was in
    // flight when the process died).
    let mut client = connect(&addr);
    let stats = client.stats().expect("stats");
    let items = parse_items(&stats);
    assert_eq!(items % BATCH as u64, 0, "partial batch recovered: {items}");
    assert!(
        items >= acked_batches * BATCH as u64,
        "lost acknowledged data: {items} items recovered, {acked_batches} batches acked"
    );
    assert!(
        items <= (acked_batches + 1) * BATCH as u64,
        "recovered more than was ever sent: {items}"
    );

    let oracle = ExactQuantiles::new(stream_prefix(items));
    assert_within_eps(&mut client, &oracle);

    client.shutdown().expect("graceful shutdown");
    let _ = child.wait();
}

/// Pulls the engine-totals `"items"` count out of the `STATS` JSON
/// (string search keeps the test serde-free, like the metrics tests).
fn parse_items(stats: &str) -> u64 {
    let key = "\"items\": ";
    let start = stats.find(key).expect("stats JSON has an items field") + key.len();
    let rest = stats.get(start..).unwrap_or_default();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest.get(..end)
        .unwrap_or_default()
        .parse()
        .expect("items count parses")
}
