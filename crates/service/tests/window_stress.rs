//! Windowed-quantile stress test over a real socket, driven by a
//! shared [`ManualClock`] — the acceptance test of the windowing
//! subsystem.
//!
//! A deterministic schedule of clock advances (including steps that
//! land *exactly* on bucket edges), timestamped batch inserts (with
//! deliberate late arrivals) and sliding/tumbling queries runs against
//! an in-process server. Every answer is checked against an **exact
//! per-window oracle** that replicates the documented placement
//! semantics (`docs/WINDOW.md`): accepted values live in the bucket
//! that was current when they *arrived*; values stamped before the
//! current bucket are dropped or routed per policy. Answers must stay
//! within the backend's ε rank error — the mergeable-summary guarantee
//! carried through bucket partials, rollups and the wire.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sqs_core::qdigest::QDigest;
use sqs_core::random::RandomSketch;
use sqs_service::server::{spawn, ServerConfig, ServerHandle, WindowOptions};
use sqs_service::Client;
use sqs_util::clock::{Clock, ManualClock};
use sqs_util::exact::ExactQuantiles;
use sqs_util::rng::Xoshiro256pp;
use sqs_window::{LatePolicy, WindowConfig, WindowSpec};

const EPS: f64 = 0.05;
const BUCKET: u64 = 1_000_000_000; // 1 s
const RETENTION: u64 = 16;
const LOG_U: u32 = 20;
const TENANT: u64 = 3;
const PHIS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// The oracle's replica of one tenant ring: raw values by the bucket
/// they *landed* in, plus the late-arrival ledger.
struct Oracle {
    buckets: BTreeMap<u64, Vec<u64>>,
    late_policy: LatePolicy,
    late_dropped: u64,
}

impl Oracle {
    fn new(late_policy: LatePolicy) -> Self {
        Self {
            buckets: BTreeMap::new(),
            late_policy,
            late_dropped: 0,
        }
    }

    /// Mirrors the ring's placement rule: everything accepted lands in
    /// the bucket that is current at *arrival*; late values follow the
    /// policy.
    fn ingest(&mut self, now: u64, ts: u64, xs: &[u64]) {
        let cur = now / BUCKET;
        if ts / BUCKET < cur {
            match self.late_policy {
                LatePolicy::Drop => {
                    self.late_dropped += xs.len() as u64;
                    return;
                }
                LatePolicy::RouteToCurrent => {}
            }
        }
        self.buckets.entry(cur).or_default().extend_from_slice(xs);
    }

    /// Exact values inside the spec's covered bucket range at `now`
    /// (replicating the ring's range arithmetic).
    fn window_values(&self, now: u64, spec: WindowSpec) -> Option<Vec<u64>> {
        let cur = now / BUCKET;
        let m = spec.len_nanos / BUCKET;
        let (lo, hi) = match spec.kind {
            sqs_window::WindowKind::Sliding => ((cur + 1).saturating_sub(m), cur),
            sqs_window::WindowKind::Tumbling => {
                let g = cur / m;
                if g == 0 {
                    return None;
                }
                ((g - 1) * m, g * m - 1)
            }
        };
        let mut vals = Vec::new();
        for (_, xs) in self.buckets.range(lo..=hi) {
            vals.extend_from_slice(xs);
        }
        Some(vals)
    }
}

fn windowed_config(clock: &ManualClock, late_policy: LatePolicy) -> ServerConfig {
    ServerConfig {
        window: Some(WindowOptions::with_clock(
            WindowConfig {
                bucket_nanos: BUCKET,
                retention_buckets: RETENTION,
                rollup_factor: 4,
                late_policy,
            },
            Arc::new(clock.clone()),
        )),
        ..ServerConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("loopback connect")
}

/// Checks every φ of one server answer against the exact oracle.
fn assert_within_eps(answer: &sqs_window::WindowAnswer, exact: &[u64], ctx: &str) {
    assert_eq!(answer.n, exact.len() as u64, "{ctx}: window mass");
    if exact.is_empty() {
        assert!(
            answer.answers.iter().all(Option::is_none),
            "{ctx}: empty window answered Some"
        );
        return;
    }
    let oracle = ExactQuantiles::new(exact.to_vec());
    for (phi, ans) in PHIS.iter().zip(&answer.answers) {
        let ans = ans.expect("non-empty window answers every phi");
        let err = oracle.quantile_error(*phi, ans);
        assert!(err <= EPS, "{ctx}: phi {phi}: rank error {err} > eps {EPS}");
    }
}

/// The deterministic stress schedule, shared by both backends: returns
/// `(advance_nanos, late_ts_offset)` pairs per step. Steps 3, 7, 11,
/// ... land exactly on bucket edges; every 5th step also sends a late
/// batch stamped two buckets back.
fn drive<S>(server: &ServerHandle<S>, clock: &ManualClock, late_policy: LatePolicy, seed: u64)
where
    S: sqs_core::MergeableSummary<u64> + sqs_core::codec::WireCodec + Clone + Send + Sync + 'static,
{
    let mut client = connect(server.addr());
    let mut oracle = Oracle::new(late_policy);
    let mut rng = Xoshiro256pp::new(seed);
    let sliding_specs = [
        WindowSpec::sliding(BUCKET),
        WindowSpec::sliding(4 * BUCKET),
        WindowSpec::sliding(8 * BUCKET),
    ];
    let tumbling = WindowSpec::tumbling(4 * BUCKET);

    for step in 0..40u64 {
        // Advance: odd steps move mid-bucket, every 4th step lands
        // exactly on the next bucket edge (the boundary case).
        let now = clock.now_nanos();
        let delta = if step % 4 == 3 {
            BUCKET - (now % BUCKET) // exactly onto the edge
        } else {
            (rng.next_below(BUCKET / 2)).max(1)
        };
        clock.advance(delta);
        let now = clock.now_nanos();

        // On-time batch stamped "now".
        let batch: Vec<u64> = (0..200).map(|_| rng.next_below(1 << LOG_U)).collect();
        client
            .window_insert(TENANT, now, &batch)
            .expect("window insert");
        oracle.ingest(now, now, &batch);

        // Every 5th step: a late batch stamped two buckets back.
        if step % 5 == 0 && now >= 2 * BUCKET {
            let late_ts = now - 2 * BUCKET;
            let late: Vec<u64> = (0..50).map(|_| rng.next_below(1 << LOG_U)).collect();
            client
                .window_insert(TENANT, late_ts, &late)
                .expect("late window insert");
            oracle.ingest(now, late_ts, &late);
        }

        // Interleaved queries: every sliding span plus the tumbling
        // window, each checked against the exact oracle.
        for spec in sliding_specs {
            let answer = client
                .window_query(TENANT, spec, &PHIS)
                .expect("sliding query");
            let exact = oracle
                .window_values(now, spec)
                .expect("sliding windows always cover");
            assert_within_eps(&answer, &exact, &format!("step {step} sliding {spec:?}"));
        }
        let answer = client
            .window_query(TENANT, tumbling, &PHIS)
            .expect("tumbling query");
        match oracle.window_values(now, tumbling) {
            Some(exact) => {
                assert_within_eps(&answer, &exact, &format!("step {step} tumbling"));
            }
            None => {
                assert_eq!(answer.n, 0, "step {step}: no completed tumbling window yet");
            }
        }
    }

    // The ring's ledger must agree with the oracle's.
    let stats = client.window_stats(TENANT).expect("window stats");
    match late_policy {
        LatePolicy::Drop => {
            assert_eq!(stats.late_dropped, oracle.late_dropped, "late drop ledger");
            assert_eq!(stats.late_routed, 0);
        }
        LatePolicy::RouteToCurrent => {
            assert_eq!(stats.late_dropped, 0);
            assert!(stats.late_routed > 0, "schedule sent late batches");
        }
    }
    assert!(stats.buckets_rotated > 0, "schedule crossed bucket edges");
    assert!(stats.queries > 0);
    assert!(
        stats.rollup_hits > 0,
        "8-bucket spans over sealed groups must hit rollups"
    );

    // Identical back-to-back queries with no mutation in between are
    // served from the version-keyed merge cache.
    let before = client.window_stats(TENANT).expect("stats").cache_hits;
    let spec = WindowSpec::sliding(8 * BUCKET);
    let a = client.window_query(TENANT, spec, &PHIS).expect("q1");
    let b = client.window_query(TENANT, spec, &PHIS).expect("q2");
    assert_eq!(a.n, b.n);
    let after = client.window_stats(TENANT).expect("stats").cache_hits;
    assert!(after > before, "repeat query must hit the merge cache");

    // The all-time engine saw every value the window layer dropped:
    // under Drop the engine's n exceeds the ring's ingested total by
    // exactly the dropped mass.
    let json = client.stats().expect("stats json");
    assert!(
        json.contains("\"window\""),
        "STATS must gain a window section"
    );
    assert!(json.contains("\"late_dropped\""));
    client.shutdown().expect("shutdown op");
}

#[test]
fn sliding_and_tumbling_match_exact_oracle_random_backend() {
    let clock = ManualClock::new();
    let cfg = windowed_config(&clock, LatePolicy::Drop);
    let server = spawn(cfg, move |tenant, shard| {
        RandomSketch::new(EPS, 0xA11CE ^ (tenant << 8) ^ shard as u64)
    })
    .expect("ephemeral loopback bind");
    drive(&server, &clock, LatePolicy::Drop, 0xDEC0DE);
    server.join();
}

#[test]
fn sliding_and_tumbling_match_exact_oracle_qdigest_backend() {
    let clock = ManualClock::new();
    let mut cfg = windowed_config(&clock, LatePolicy::RouteToCurrent);
    cfg.value_bound = Some(1u64 << LOG_U);
    let server = spawn(cfg, move |_tenant, _shard| QDigest::new(EPS, LOG_U))
        .expect("ephemeral loopback bind");
    drive(&server, &clock, LatePolicy::RouteToCurrent, 0xC0FFEE);
    server.join();
}

#[test]
fn window_ops_refused_without_window_config() {
    let server = spawn(ServerConfig::default(), move |tenant, shard| {
        RandomSketch::new(EPS, (tenant << 8) ^ shard as u64)
    })
    .expect("ephemeral loopback bind");
    let mut client = connect(server.addr());
    // The classic path still works...
    client.insert_batch(1, &[1, 2, 3]).expect("plain insert");
    // ...but every WINDOW_* op is refused with a clear error.
    let err = client
        .window_insert(1, 0, &[4])
        .expect_err("window insert must be refused");
    assert!(err.to_string().contains("windowing disabled"), "{err}");
    assert!(client
        .window_query(1, WindowSpec::sliding(1), &[0.5])
        .is_err());
    assert!(client.window_stats(1).is_err());
    // And STATS omits the window section entirely.
    let json = client.stats().expect("stats json");
    assert!(!json.contains("\"window\""));
    server.shutdown();
    server.join();
}
