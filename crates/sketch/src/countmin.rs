//! The Count-Min sketch (Cormode & Muthukrishnan, 2005) — the
//! frequency estimator behind the paper's `DCM` baseline (§1.2.2).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::{batch_scratch::CHUNK, FrequencySketch, MergeableSketch};
use sqs_util::hash::PairwiseHash;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

/// A `w × d` Count-Min sketch: row `i` adds every update to counter
/// `h_i(x)`; the estimate is the **minimum** over rows, which never
/// underestimates (for insert-only mass) and overshoots by at most
/// `2n/w` with probability `1 − 2^{−d}` per query.
///
/// Counters are stored row-contiguous with each row's width rounded up
/// to a whole cache line (`stride`), so the batched update path can
/// sweep one row across an entire batch without rows sharing lines.
/// The padding slots always hold zero and are *layout*, not space: the
/// paper's 4-byte-word accounting reports `w·d` counters (see
/// `docs/PERF.md`).
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    stride: usize,      // width rounded up to a cache line of i64s
    counters: Vec<i64>, // d rows × stride, row-contiguous
    hashes: Vec<PairwiseHash>,
    universe: u64,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

// Equality is summary state only — the audit-only `updates` diagnostic
// is excluded, since it legitimately differs between paths that reach
// the same state (wire decode starts it at zero, shard merges sum it).
impl PartialEq for CountMin {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.stride == other.stride
            && self.counters == other.counters
            && self.hashes == other.hashes
            && self.universe == other.universe
    }
}

impl Eq for CountMin {}

impl CountMin {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// # Panics
    /// Panics if `width == 0` or `depth == 0`.
    pub fn new(width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            width > 0 && depth > 0,
            "CountMin: width and depth must be positive"
        );
        let stride = crate::row_stride(width);
        Self {
            width,
            stride,
            counters: vec![0; stride * depth],
            hashes: (0..depth)
                .map(|_| PairwiseHash::new(rng, width as u64))
                .collect(),
            universe: u64::MAX,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// Creates a sketch scoped to a (reduced) universe size, for
    /// bookkeeping in the dyadic structure.
    pub fn for_universe(universe: u64, width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        let mut s = Self::new(width, depth, rng);
        s.universe = universe;
        s
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.hashes.len()
    }
}

impl sqs_util::audit::CheckInvariants for CountMin {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "CountMin";
        ensure(
            self.width > 0 && !self.hashes.is_empty(),
            ALG,
            "countmin.shape_positive",
            || format!("width = {}, depth = {}", self.width, self.hashes.len()),
        )?;
        ensure(
            self.stride == crate::row_stride(self.width)
                && self.counters.len() == self.stride * self.hashes.len(),
            ALG,
            "countmin.counter_layout",
            || {
                format!(
                    "{} counters, stride {} for {}×{} layout",
                    self.counters.len(),
                    self.stride,
                    self.width,
                    self.hashes.len()
                )
            },
        )?;
        ensure(self.universe > 0, ALG, "countmin.universe_positive", || {
            "universe is zero".to_string()
        })?;
        // Cache-line padding slots are never addressed by any hash.
        for (i, row) in self.counters.chunks_exact(self.stride).enumerate() {
            ensure(
                row[self.width..].iter().all(|&c| c == 0),
                ALG,
                "countmin.padding_zero",
                || format!("row {i} has nonzero cache-line padding"),
            )?;
        }
        // Every update adds its delta to exactly one counter per row,
        // so all row sums equal the total update mass.
        let first: i64 = self.counters[..self.width].iter().sum();
        for i in 1..self.hashes.len() {
            let row: i64 = self.counters[i * self.stride..i * self.stride + self.width]
                .iter()
                .sum();
            ensure(row == first, ALG, "countmin.row_mass_equal", || {
                format!("row {i} sums to {row}, row 0 sums to {first}")
            })?;
        }
        Ok(())
    }
}

impl FrequencySketch for CountMin {
    fn update(&mut self, x: u64, delta: i64) {
        for (i, h) in self.hashes.iter().enumerate() {
            let j = h.hash(x) as usize;
            self.counters[i * self.stride + j] += delta;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    // Row-major batch walk: each chunk folds its keys into the field
    // once — shared by all d rows — and the row loop then walks the
    // chunk row-major, hash coefficients in registers, every store
    // landing in one `stride`-wide window instead of striding the
    // full `d × stride` table per item. `CHUNK` matches the ingest
    // batch, so a batch is normally a single chunk and each row is
    // touched in exactly one pass. State-identical to the scalar loop
    // (counter addition commutes within a row).
    fn update_batch(&mut self, batch: &[(u64, i64)]) {
        let mut keys = [0u64; CHUNK];
        for chunk in batch.chunks(CHUNK) {
            let m = chunk.len();
            for (k, &(x, _)) in keys.iter_mut().zip(chunk) {
                *k = sqs_util::hash::fold_to_field(x);
            }
            for (i, h) in self.hashes.iter().enumerate() {
                let row = &mut self.counters[i * self.stride..i * self.stride + self.width];
                h.buckets_folded_for_each(&keys[..m], |k, j| {
                    row[j as usize] += chunk[k].1;
                });
            }
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += batch.len() as u64;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(i, h)| self.counters[i * self.stride + h.hash(x) as usize])
            .min()
            .expect("CountMin invariant: depth > 0")
    }

    // Read-side dual of `update_batch`: small query sets (point reads,
    // the per-level cells of one dyadic rank) gather one key across
    // all d rows with the hash coefficients walked once; larger sweeps
    // fold the chunk's keys once and take the min row-major, each
    // row's counters read in one L1-resident pass. Min over rows
    // commutes, so both orders are bit-identical to the scalar
    // estimate.
    fn estimate_batch(&self, xs: &[u64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "estimate_batch: slice length mismatch");
        let d = self.hashes.len();
        if xs.len() <= 16 && d <= 64 {
            let mut jb = [0u64; 64];
            for (&x, o) in xs.iter().zip(out) {
                sqs_util::hash::buckets_folded_gather(
                    &self.hashes,
                    sqs_util::hash::fold_to_field(x),
                    &mut jb[..d],
                );
                *o = jb[..d]
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| self.counters[i * self.stride + j as usize])
                    .min()
                    .expect("CountMin invariant: depth > 0");
            }
            return;
        }
        let mut keys = [0u64; CHUNK];
        let mut jbuf = [0u64; CHUNK];
        for (chunk, out_c) in xs.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let m = chunk.len();
            for (k, &x) in keys.iter_mut().zip(chunk) {
                *k = sqs_util::hash::fold_to_field(x);
            }
            out_c.fill(i64::MAX);
            for (i, h) in self.hashes.iter().enumerate() {
                let row = &self.counters[i * self.stride..i * self.stride + self.width];
                h.hash_folded_batch(&keys[..m], &mut jbuf[..m]);
                for (o, &j) in out_c.iter_mut().zip(&jbuf[..m]) {
                    *o = (*o).min(row[j as usize]);
                }
            }
        }
    }

    fn universe(&self) -> u64 {
        self.universe
    }
}

impl MergeableSketch for CountMin {
    fn merge_compatible(&self, other: &Self) -> bool {
        self.width == other.width && self.universe == other.universe && self.hashes == other.hashes
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "CountMin invariant: merge requires identical hashes and shape"
        );
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += other.updates;
        }
    }
}

impl SpaceUsage for CountMin {
    fn space_bytes(&self) -> usize {
        // w·d counters + 2 hash coefficients per row. Logical size:
        // cache-line padding is a layout artifact, not sketch state.
        words(self.width * self.hashes.len() + 2 * self.hashes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates_insert_only() {
        let mut rng = Xoshiro256pp::new(10);
        let mut cm = CountMin::new(64, 4, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(11);
        let mut truth = vec![0i64; 1000];
        for _ in 0..20_000 {
            let x = stream_rng.next_below(1000);
            cm.update(x, 1);
            truth[x as usize] += 1;
        }
        for x in 0..1000u64 {
            assert!(cm.estimate(x) >= truth[x as usize], "x={x}");
        }
    }

    #[test]
    fn error_bounded_by_2n_over_w() {
        let mut rng = Xoshiro256pp::new(12);
        let w = 512;
        let mut cm = CountMin::new(w, 5, &mut rng);
        let n = 100_000u64;
        let mut stream_rng = Xoshiro256pp::new(13);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let x = stream_rng.next_below(1 << 20);
            cm.update(x, 1);
            *truth.entry(x).or_insert(0i64) += 1;
        }
        let bound = (2 * n as usize / w) as i64 + 1;
        let mut violations = 0;
        for (&x, &t) in truth.iter().take(2000) {
            if cm.estimate(x) - t > bound {
                violations += 1;
            }
        }
        // Per-query failure probability ~2^-5; allow a small tail.
        assert!(violations < 2000 / 10, "violations = {violations}");
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut rng = Xoshiro256pp::new(14);
        let mut cm = CountMin::new(32, 3, &mut rng);
        for x in 0..100u64 {
            cm.update(x, 5);
        }
        for x in 0..100u64 {
            cm.update(x, -5);
        }
        // All counters are back to zero, so every estimate is 0.
        for x in 0..100u64 {
            assert_eq!(cm.estimate(x), 0);
        }
    }

    #[test]
    fn space_accounting() {
        let mut rng = Xoshiro256pp::new(15);
        let cm = CountMin::new(100, 7, &mut rng);
        assert_eq!(cm.space_bytes(), (700 + 14) * 4);
    }

    #[test]
    #[should_panic(expected = "width and depth must be positive")]
    fn rejects_zero_width() {
        CountMin::new(0, 3, &mut Xoshiro256pp::new(1));
    }

    #[test]
    fn batch_is_state_identical_to_scalar() {
        // Unpadded width (100 → stride 104) exercises the padding lanes.
        let mut rng = Xoshiro256pp::new(16);
        let mut scalar = CountMin::new(100, 7, &mut rng);
        let mut batched = scalar.clone();
        let mut stream_rng = Xoshiro256pp::new(17);
        let batch: Vec<(u64, i64)> = (0..1000)
            .map(|i| {
                let x = stream_rng.next_below(1 << 30);
                (x, if i % 3 == 2 { -1 } else { 1 })
            })
            .collect();
        for &(x, d) in &batch {
            scalar.update(x, d);
        }
        batched.update_batch(&batch);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_scalar() {
        // Exercises both the gather path (≤16 queries) and the
        // row-major chunked path, plus the chunk-boundary tail.
        let mut rng = Xoshiro256pp::new(40);
        let mut cm = CountMin::new(100, 7, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(41);
        for _ in 0..20_000 {
            cm.update(stream_rng.next_below(1 << 20), 1);
        }
        for n in [1usize, 3, 16, 17, 100, 1024, 1025, 2500] {
            let xs: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 20))
                .collect();
            let mut out = vec![0i64; n];
            cm.estimate_batch(&xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, cm.estimate(x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn merge_matches_single_sketch() {
        let mut rng = Xoshiro256pp::new(18);
        let whole = CountMin::new(64, 4, &mut rng);
        let mut left = whole.clone();
        let mut right = whole.clone();
        let mut whole = whole;
        for x in 0..500u64 {
            whole.update(x, 1);
            if x % 2 == 0 {
                left.update(x, 1);
            } else {
                right.update(x, 1);
            }
        }
        assert!(left.merge_compatible(&right));
        left.merge_from(&right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "identical hashes")]
    fn merge_rejects_different_draws() {
        let mut rng = Xoshiro256pp::new(19);
        let mut a = CountMin::new(64, 4, &mut rng);
        let b = CountMin::new(64, 4, &mut rng);
        a.merge_from(&b);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_row_mass_drift() {
        let mut rng = Xoshiro256pp::new(50);
        let mut cm = CountMin::new(32, 4, &mut rng);
        for x in 0..1_000u64 {
            cm.update(x % 200, 1);
        }
        cm.counters[0] += 1; // row 0 no longer matches the others
        let err = cm.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "CountMin");
        assert_eq!(err.invariant, "countmin.row_mass_equal");
    }

    #[test]
    fn auditor_catches_truncated_counters() {
        let mut rng = Xoshiro256pp::new(51);
        let mut cm = CountMin::new(32, 4, &mut rng);
        cm.counters.pop();
        assert_eq!(
            cm.check_invariants().unwrap_err().invariant,
            "countmin.counter_layout"
        );
    }

    #[test]
    fn auditor_catches_dirty_padding() {
        let mut rng = Xoshiro256pp::new(52);
        let mut cm = CountMin::new(100, 2, &mut rng); // stride 104
        let stride = cm.stride;
        cm.counters[stride - 1] = 7;
        assert_eq!(
            cm.check_invariants().unwrap_err().invariant,
            "countmin.padding_zero"
        );
    }
}
