//! The Count-Min sketch (Cormode & Muthukrishnan, 2005) — the
//! frequency estimator behind the paper's `DCM` baseline (§1.2.2).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::FrequencySketch;
use sqs_util::hash::PairwiseHash;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

/// A `w × d` Count-Min sketch: row `i` adds every update to counter
/// `h_i(x)`; the estimate is the **minimum** over rows, which never
/// underestimates (for insert-only mass) and overshoots by at most
/// `2n/w` with probability `1 − 2^{−d}` per query.
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    counters: Vec<i64>, // d rows × w, row-major
    hashes: Vec<PairwiseHash>,
    universe: u64,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

impl CountMin {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// # Panics
    /// Panics if `width == 0` or `depth == 0`.
    pub fn new(width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            width > 0 && depth > 0,
            "CountMin: width and depth must be positive"
        );
        Self {
            width,
            counters: vec![0; width * depth],
            hashes: (0..depth)
                .map(|_| PairwiseHash::new(rng, width as u64))
                .collect(),
            universe: u64::MAX,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// Creates a sketch scoped to a (reduced) universe size, for
    /// bookkeeping in the dyadic structure.
    pub fn for_universe(universe: u64, width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        let mut s = Self::new(width, depth, rng);
        s.universe = universe;
        s
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.hashes.len()
    }
}

impl sqs_util::audit::CheckInvariants for CountMin {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "CountMin";
        ensure(
            self.width > 0 && !self.hashes.is_empty(),
            ALG,
            "countmin.shape_positive",
            || format!("width = {}, depth = {}", self.width, self.hashes.len()),
        )?;
        ensure(
            self.counters.len() == self.width * self.hashes.len(),
            ALG,
            "countmin.counter_layout",
            || {
                format!(
                    "{} counters for {}×{} layout",
                    self.counters.len(),
                    self.width,
                    self.hashes.len()
                )
            },
        )?;
        ensure(self.universe > 0, ALG, "countmin.universe_positive", || {
            "universe is zero".to_string()
        })?;
        // Every update adds its delta to exactly one counter per row,
        // so all row sums equal the total update mass.
        let first: i64 = self.counters[..self.width].iter().sum();
        for i in 1..self.hashes.len() {
            let row: i64 = self.counters[i * self.width..(i + 1) * self.width]
                .iter()
                .sum();
            ensure(row == first, ALG, "countmin.row_mass_equal", || {
                format!("row {i} sums to {row}, row 0 sums to {first}")
            })?;
        }
        Ok(())
    }
}

impl FrequencySketch for CountMin {
    fn update(&mut self, x: u64, delta: i64) {
        for (i, h) in self.hashes.iter().enumerate() {
            let j = h.hash(x) as usize;
            self.counters[i * self.width + j] += delta;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(i, h)| self.counters[i * self.width + h.hash(x) as usize])
            .min()
            .expect("CountMin invariant: depth > 0")
    }

    fn universe(&self) -> u64 {
        self.universe
    }
}

impl SpaceUsage for CountMin {
    fn space_bytes(&self) -> usize {
        // w·d counters + 2 hash coefficients per row.
        words(self.counters.len() + 2 * self.hashes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates_insert_only() {
        let mut rng = Xoshiro256pp::new(10);
        let mut cm = CountMin::new(64, 4, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(11);
        let mut truth = vec![0i64; 1000];
        for _ in 0..20_000 {
            let x = stream_rng.next_below(1000);
            cm.update(x, 1);
            truth[x as usize] += 1;
        }
        for x in 0..1000u64 {
            assert!(cm.estimate(x) >= truth[x as usize], "x={x}");
        }
    }

    #[test]
    fn error_bounded_by_2n_over_w() {
        let mut rng = Xoshiro256pp::new(12);
        let w = 512;
        let mut cm = CountMin::new(w, 5, &mut rng);
        let n = 100_000u64;
        let mut stream_rng = Xoshiro256pp::new(13);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let x = stream_rng.next_below(1 << 20);
            cm.update(x, 1);
            *truth.entry(x).or_insert(0i64) += 1;
        }
        let bound = (2 * n as usize / w) as i64 + 1;
        let mut violations = 0;
        for (&x, &t) in truth.iter().take(2000) {
            if cm.estimate(x) - t > bound {
                violations += 1;
            }
        }
        // Per-query failure probability ~2^-5; allow a small tail.
        assert!(violations < 2000 / 10, "violations = {violations}");
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut rng = Xoshiro256pp::new(14);
        let mut cm = CountMin::new(32, 3, &mut rng);
        for x in 0..100u64 {
            cm.update(x, 5);
        }
        for x in 0..100u64 {
            cm.update(x, -5);
        }
        // All counters are back to zero, so every estimate is 0.
        for x in 0..100u64 {
            assert_eq!(cm.estimate(x), 0);
        }
    }

    #[test]
    fn space_accounting() {
        let mut rng = Xoshiro256pp::new(15);
        let cm = CountMin::new(100, 7, &mut rng);
        assert_eq!(cm.space_bytes(), (700 + 14) * 4);
    }

    #[test]
    #[should_panic(expected = "width and depth must be positive")]
    fn rejects_zero_width() {
        CountMin::new(0, 3, &mut Xoshiro256pp::new(1));
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_row_mass_drift() {
        let mut rng = Xoshiro256pp::new(50);
        let mut cm = CountMin::new(32, 4, &mut rng);
        for x in 0..1_000u64 {
            cm.update(x % 200, 1);
        }
        cm.counters[0] += 1; // row 0 no longer matches the others
        let err = cm.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "CountMin");
        assert_eq!(err.invariant, "countmin.row_mass_equal");
    }

    #[test]
    fn auditor_catches_truncated_counters() {
        let mut rng = Xoshiro256pp::new(51);
        let mut cm = CountMin::new(32, 4, &mut rng);
        cm.counters.pop();
        assert_eq!(
            cm.check_invariants().unwrap_err().invariant,
            "countmin.counter_layout"
        );
    }
}
