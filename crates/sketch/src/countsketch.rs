//! The Count-Sketch (Charikar, Chen & Farach-Colton, 2002) — the
//! frequency estimator behind the paper's new `DCS` algorithm (§3.1).
//!
//! Per row `i`, item `x` is hashed to counter `h_i(x)` with sign
//! `g_i(x) ∈ {−1,+1}` (4-wise independent); the estimator
//! `g_i(x)·C[i, h_i(x)]` is **unbiased** with variance `F₂/w`, and the
//! median over `d` rows concentrates it. Unbiasedness with a symmetric
//! error distribution is exactly what lets §3.1 sum `log u` level
//! estimates with only `√(log u)` error growth — the asymptotic win of
//! DCS over DCM.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::{batch_scratch::CHUNK, FrequencySketch, MergeableSketch};
use sqs_util::hash::{FourwiseHash, PairwiseHash};
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

/// A `w × d` Count-Sketch (use odd `d` so the median is a single row).
///
/// # Example
///
/// ```
/// use sqs_sketch::{CountSketch, FrequencySketch};
/// use sqs_util::rng::Xoshiro256pp;
///
/// let mut rng = Xoshiro256pp::new(1);
/// let mut cs = CountSketch::new(1024, 5, &mut rng);
/// for _ in 0..1_000 {
///     cs.update(7, 1);
/// }
/// cs.update(7, -400); // turnstile deletion
/// let est = cs.estimate(7);
/// assert!((est - 600).abs() < 50);
/// ```

#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    stride: usize,      // width rounded up to a cache line of i64s
    counters: Vec<i64>, // d rows × stride, row-contiguous
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<FourwiseHash>,
    universe: u64,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

// Equality is summary state only — the audit-only `updates` diagnostic
// is excluded, since it legitimately differs between paths that reach
// the same state (wire decode starts it at zero, shard merges sum it).
impl PartialEq for CountSketch {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.stride == other.stride
            && self.counters == other.counters
            && self.bucket_hashes == other.bucket_hashes
            && self.sign_hashes == other.sign_hashes
            && self.universe == other.universe
    }
}

impl Eq for CountSketch {}

impl CountSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// # Panics
    /// Panics if `width == 0` or `depth == 0`.
    pub fn new(width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            width > 0 && depth > 0,
            "CountSketch: width and depth must be positive"
        );
        let stride = crate::row_stride(width);
        Self {
            width,
            stride,
            counters: vec![0; stride * depth],
            bucket_hashes: (0..depth)
                .map(|_| PairwiseHash::new(rng, width as u64))
                .collect(),
            sign_hashes: (0..depth).map(|_| FourwiseHash::new(rng)).collect(),
            universe: u64::MAX,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// Creates a sketch scoped to a (reduced) universe size.
    pub fn for_universe(universe: u64, width: usize, depth: usize, rng: &mut Xoshiro256pp) -> Self {
        let mut s = Self::new(width, depth, rng);
        s.universe = universe;
        s
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.bucket_hashes.len()
    }

    /// The AMS F₂ estimate: mean over rows of the summed squared
    /// counters (each row's sum is an unbiased F₂ estimator).
    pub fn f2_estimate(&self) -> f64 {
        let d = self.bucket_hashes.len();
        self.counters
            .iter()
            .map(|&c| (c as f64) * (c as f64))
            .sum::<f64>()
            / d as f64
    }

    /// The per-row estimates `g_i(x)·C[i, h_i(x)]` (tests, diagnostics).
    pub fn row_estimates(&self, x: u64) -> Vec<i64> {
        (0..self.depth())
            .map(|i| {
                let j = self.bucket_hashes[i].hash(x) as usize;
                self.sign_hashes[i].sign(x) * self.counters[i * self.stride + j]
            })
            .collect()
    }

    /// The per-row `(bucket_hash, sign_hash)` draws, for serialization.
    pub fn rows(&self) -> impl Iterator<Item = (&PairwiseHash, &FourwiseHash)> {
        self.bucket_hashes.iter().zip(self.sign_hashes.iter())
    }

    /// The **logical** counters, row-major `d × w` with cache-line
    /// padding stripped — the canonical wire form.
    pub fn logical_counters(&self) -> Vec<i64> {
        self.counters
            .chunks_exact(self.stride)
            .flat_map(|row| row[..self.width].iter().copied())
            .collect()
    }

    /// Rebuilds a sketch from decoded parts (the inverse of
    /// [`rows`](Self::rows) + [`logical_counters`](Self::logical_counters)).
    /// `counters` is logical `d × w` row-major. Returns `Err` on any
    /// shape mismatch; the caller is expected to follow up with an
    /// invariant audit.
    pub fn from_parts(
        universe: u64,
        width: usize,
        rows: Vec<(PairwiseHash, FourwiseHash)>,
        counters: &[i64],
    ) -> Result<Self, &'static str> {
        if width == 0 || rows.is_empty() {
            return Err("CountSketch: width and depth must be positive");
        }
        if counters.len() != width * rows.len() {
            return Err("CountSketch: counter count does not match w×d");
        }
        if universe == 0 {
            return Err("CountSketch: universe must be positive");
        }
        let stride = crate::row_stride(width);
        let mut padded = vec![0i64; stride * rows.len()];
        for (dst, src) in padded
            .chunks_exact_mut(stride)
            .zip(counters.chunks_exact(width))
        {
            dst[..width].copy_from_slice(src);
        }
        let (bucket_hashes, sign_hashes) = rows.into_iter().unzip();
        Ok(Self {
            width,
            stride,
            counters: padded,
            bucket_hashes,
            sign_hashes,
            universe,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        })
    }
}

impl sqs_util::audit::CheckInvariants for CountSketch {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "CountSketch";
        ensure(
            self.width > 0 && !self.bucket_hashes.is_empty(),
            ALG,
            "countsketch.shape_positive",
            || {
                format!(
                    "width = {}, depth = {}",
                    self.width,
                    self.bucket_hashes.len()
                )
            },
        )?;
        ensure(
            self.sign_hashes.len() == self.bucket_hashes.len(),
            ALG,
            "countsketch.hash_pairing",
            || {
                format!(
                    "{} sign hashes for {} bucket hashes",
                    self.sign_hashes.len(),
                    self.bucket_hashes.len()
                )
            },
        )?;
        ensure(
            self.stride == crate::row_stride(self.width)
                && self.counters.len() == self.stride * self.bucket_hashes.len(),
            ALG,
            "countsketch.counter_layout",
            || {
                format!(
                    "{} counters, stride {} for {}×{} layout",
                    self.counters.len(),
                    self.stride,
                    self.width,
                    self.bucket_hashes.len()
                )
            },
        )?;
        // Cache-line padding slots are never addressed by any hash.
        for (i, row) in self.counters.chunks_exact(self.stride).enumerate() {
            ensure(
                row[self.width..].iter().all(|&c| c == 0),
                ALG,
                "countsketch.padding_zero",
                || format!("row {i} has nonzero cache-line padding"),
            )?;
        }
        // Signs are ±1, so each row's sum has the parity of the total
        // update mass — every row must agree on it.
        let first: i64 = self.counters[..self.width].iter().sum();
        for i in 1..self.bucket_hashes.len() {
            let row: i64 = self.counters[i * self.stride..i * self.stride + self.width]
                .iter()
                .sum();
            ensure(
                row.rem_euclid(2) == first.rem_euclid(2),
                ALG,
                "countsketch.row_mass_parity",
                || format!("row {i} sum {row} disagrees in parity with row 0 sum {first}"),
            )?;
        }
        Ok(())
    }
}

impl FrequencySketch for CountSketch {
    fn update(&mut self, x: u64, delta: i64) {
        for i in 0..self.bucket_hashes.len() {
            let j = self.bucket_hashes[i].hash(x) as usize;
            self.counters[i * self.stride + j] += self.sign_hashes[i].sign(x) * delta;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    // Row-major batch walk: each chunk folds its keys into the field
    // once — shared by both hash families of all d rows — and the row
    // loop then walks the chunk row-major: sign polynomial into a
    // scratch buffer, bucket polynomial fused with the scatter, all
    // stores landing in one row window. `CHUNK` matches the ingest
    // batch, so a batch is normally a single chunk and each row is
    // touched in exactly one pass. State-identical to the scalar loop
    // (additions commute in a row).
    fn update_batch(&mut self, batch: &[(u64, i64)]) {
        let mut keys = [0u64; CHUNK];
        let mut sbuf = [0i64; CHUNK];
        for chunk in batch.chunks(CHUNK) {
            let m = chunk.len();
            for (k, &(x, _)) in keys.iter_mut().zip(chunk) {
                *k = sqs_util::hash::fold_to_field(x);
            }
            for (i, (h, g)) in self
                .bucket_hashes
                .iter()
                .zip(self.sign_hashes.iter())
                .enumerate()
            {
                g.sign_folded_batch(&keys[..m], &mut sbuf[..m]);
                let row = &mut self.counters[i * self.stride..i * self.stride + self.width];
                h.buckets_folded_for_each(&keys[..m], |k, j| {
                    row[j as usize] += sbuf[k] * chunk[k].1;
                });
            }
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += batch.len() as u64;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        let mut ests = self.row_estimates(x);
        let mid = ests.len() / 2;
        *ests.select_nth_unstable(mid).1
    }

    // Read-side dual of `update_batch`: small query sets gather one
    // key across all d rows (buckets + signs in two register-resident
    // passes); larger sweeps fold the chunk's keys once and fill a
    // key-major estimate matrix row-major, each sketch row read in one
    // L1-resident pass. Either way every key's d row estimates land in
    // ascending row order — the exact slice `row_estimates` builds —
    // before the same `select_nth_unstable` median, so answers are
    // bit-identical to the scalar estimate.
    fn estimate_batch(&self, xs: &[u64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "estimate_batch: slice length mismatch");
        let d = self.bucket_hashes.len();
        let mid = d / 2;
        if xs.len() <= 16 && d <= 64 {
            let mut jb = [0u64; 64];
            let mut sb = [0i64; 64];
            let mut ests = [0i64; 64];
            for (&x, o) in xs.iter().zip(out) {
                let xf = sqs_util::hash::fold_to_field(x);
                sqs_util::hash::buckets_folded_gather(&self.bucket_hashes, xf, &mut jb[..d]);
                sqs_util::hash::signs_folded_gather(&self.sign_hashes, xf, &mut sb[..d]);
                for i in 0..d {
                    ests[i] = sb[i] * self.counters[i * self.stride + jb[i] as usize];
                }
                *o = *ests[..d].select_nth_unstable(mid).1;
            }
            return;
        }
        let mut keys = [0u64; CHUNK];
        let mut jbuf = [0u64; CHUNK];
        let mut sbuf = [0i64; CHUNK];
        let mut ests = Vec::new();
        for (chunk, out_c) in xs.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let m = chunk.len();
            for (k, &x) in keys.iter_mut().zip(chunk) {
                *k = sqs_util::hash::fold_to_field(x);
            }
            ests.clear();
            ests.resize(m * d, 0i64);
            for (i, (h, g)) in self
                .bucket_hashes
                .iter()
                .zip(self.sign_hashes.iter())
                .enumerate()
            {
                h.hash_folded_batch(&keys[..m], &mut jbuf[..m]);
                g.sign_folded_batch(&keys[..m], &mut sbuf[..m]);
                let row = &self.counters[i * self.stride..i * self.stride + self.width];
                for k in 0..m {
                    ests[k * d + i] = sbuf[k] * row[jbuf[k] as usize];
                }
            }
            for (k, o) in out_c.iter_mut().enumerate() {
                *o = *ests[k * d..(k + 1) * d].select_nth_unstable(mid).1;
            }
        }
    }

    fn universe(&self) -> u64 {
        self.universe
    }

    /// §3.2.4: the variance of a single-row estimate is `F₂/w`, and a
    /// row's sum of squared counters is itself an estimator of `F₂`
    /// (Alon–Matias–Szegedy). The paper uses "the variance of one row
    /// of the sketch as a good empirical approximation"; we average
    /// the AMS estimate over rows for stability.
    fn variance_estimate(&self) -> Option<f64> {
        Some(self.f2_estimate() / self.width as f64)
    }

    /// Per-item variance from the empirical dispersion of the `d` row
    /// estimates: each row is an independent unbiased estimator of
    /// `f_x`, so the sample variance `s²` of the rows estimates the
    /// single-row variance *actually realized for this item* (its own
    /// collisions, not the worst case `F₂/w`), and the returned
    /// `Var(median) ≈ (π/2)·s²/d` is the asymptotic variance of the
    /// median of `d` such estimators. Floored by a small fraction of
    /// the generic `F₂/(w·d)` so an accidental all-rows-agree does not
    /// claim exactness.
    fn variance_estimate_for(&self, x: u64) -> Option<f64> {
        let rows = self.row_estimates(x);
        let d = rows.len() as f64;
        if rows.len() < 2 {
            return self.variance_estimate();
        }
        let mean = rows.iter().map(|&r| r as f64).sum::<f64>() / d;
        let s2 = rows.iter().map(|&r| (r as f64 - mean).powi(2)).sum::<f64>() / (d - 1.0);
        let var_median = std::f64::consts::FRAC_PI_2 * s2 / d;
        let floor = self.f2_estimate() / (self.width as f64 * d) * 1e-3;
        Some(var_median.max(floor).max(1e-9))
    }
}

impl MergeableSketch for CountSketch {
    fn merge_compatible(&self, other: &Self) -> bool {
        self.width == other.width
            && self.universe == other.universe
            && self.bucket_hashes == other.bucket_hashes
            && self.sign_hashes == other.sign_hashes
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "CountSketch invariant: merge requires identical hashes and shape"
        );
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += other.updates;
        }
    }
}

impl SpaceUsage for CountSketch {
    fn space_bytes(&self) -> usize {
        // w·d counters + 2 pairwise + 4 fourwise coefficients per row.
        // Logical size: cache-line padding is layout, not sketch state.
        words(self.width * self.bucket_hashes.len() + 6 * self.bucket_hashes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_is_unbiased_over_draws() {
        // Fix a workload; average the estimate for one item over many
        // independently drawn sketches; it must approach the truth.
        let mut seed_rng = Xoshiro256pp::new(30);
        let trials = 300;
        let mut sum = 0f64;
        for _ in 0..trials {
            let mut cs = CountSketch::new(16, 1, &mut seed_rng);
            for x in 0..200u64 {
                cs.update(x, 1 + (x % 5) as i64);
            }
            sum += cs.estimate(7) as f64;
        }
        let mean = sum / trials as f64;
        let truth = 1.0 + (7 % 5) as f64;
        // Single row, tiny width → large variance; the mean over 300
        // draws should still be within a few standard errors.
        assert!((mean - truth).abs() < 8.0, "mean = {mean}, truth = {truth}");
    }

    #[test]
    fn median_tracks_truth_with_decent_width() {
        let mut rng = Xoshiro256pp::new(31);
        let mut cs = CountSketch::new(1024, 5, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(32);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..100_000 {
            let x = stream_rng.next_below(1 << 16);
            cs.update(x, 1);
            *truth.entry(x).or_insert(0i64) += 1;
        }
        let mut bad = 0;
        for (&x, &t) in truth.iter().take(1000) {
            if (cs.estimate(x) - t).abs() > 40 {
                bad += 1;
            }
        }
        assert!(bad < 100, "bad = {bad}");
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut rng = Xoshiro256pp::new(33);
        let mut cs = CountSketch::new(64, 3, &mut rng);
        for x in 0..500u64 {
            cs.update(x, 3);
        }
        for x in 0..500u64 {
            cs.update(x, -3);
        }
        for x in 0..500u64 {
            assert_eq!(cs.estimate(x), 0);
        }
    }

    #[test]
    fn variance_estimate_tracks_f2_over_w() {
        let mut rng = Xoshiro256pp::new(34);
        let w = 256;
        let mut cs = CountSketch::new(w, 5, &mut rng);
        // 1000 items with frequency 10 → F2 = 1000·100 = 100_000.
        for x in 0..1000u64 {
            cs.update(x, 10);
        }
        let var = cs.variance_estimate().unwrap();
        let expect = 100_000.0 / w as f64;
        assert!(
            var > 0.3 * expect && var < 3.0 * expect,
            "var = {var}, expect ≈ {expect}"
        );
    }

    #[test]
    fn row_estimates_len_matches_depth() {
        let mut rng = Xoshiro256pp::new(35);
        let cs = CountSketch::new(8, 7, &mut rng);
        assert_eq!(cs.row_estimates(42).len(), 7);
    }

    #[test]
    fn batch_is_state_identical_to_scalar() {
        // Unpadded width (100 → stride 104) exercises the padding lanes.
        let mut rng = Xoshiro256pp::new(36);
        let mut scalar = CountSketch::new(100, 7, &mut rng);
        let mut batched = scalar.clone();
        let mut stream_rng = Xoshiro256pp::new(37);
        let batch: Vec<(u64, i64)> = (0..1000)
            .map(|i| {
                let x = stream_rng.next_below(1 << 30);
                (x, if i % 3 == 2 { -1 } else { 1 })
            })
            .collect();
        for &(x, d) in &batch {
            scalar.update(x, d);
        }
        batched.update_batch(&batch);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_scalar() {
        // Exercises both the gather path (≤16 queries) and the
        // row-major chunked path, plus the chunk-boundary tail.
        let mut rng = Xoshiro256pp::new(42);
        let mut cs = CountSketch::new(100, 7, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(43);
        for _ in 0..20_000 {
            cs.update(stream_rng.next_below(1 << 20), 1);
        }
        for n in [1usize, 3, 16, 17, 100, 1024, 1025, 2500] {
            let xs: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 20))
                .collect();
            let mut out = vec![0i64; n];
            cs.estimate_batch(&xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, cs.estimate(x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn merge_matches_single_sketch() {
        let mut rng = Xoshiro256pp::new(38);
        let whole = CountSketch::new(64, 5, &mut rng);
        let mut left = whole.clone();
        let mut right = whole.clone();
        let mut whole = whole;
        for x in 0..500u64 {
            whole.update(x, 1);
            if x % 2 == 0 {
                left.update(x, 1);
            } else {
                right.update(x, 1);
            }
        }
        assert!(left.merge_compatible(&right));
        left.merge_from(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn parts_roundtrip_preserves_estimates() {
        let mut rng = Xoshiro256pp::new(39);
        let mut cs = CountSketch::for_universe(1 << 20, 100, 5, &mut rng);
        for x in 0..2000u64 {
            cs.update(x % 300, 1);
        }
        let rows: Vec<_> = cs.rows().map(|(h, g)| (h.clone(), g.clone())).collect();
        let rebuilt =
            CountSketch::from_parts(cs.universe(), cs.width(), rows, &cs.logical_counters())
                .expect("invariant: parts round-trip from a live sketch");
        for x in [0u64, 7, 150, 299, 5000] {
            assert_eq!(rebuilt.estimate(x), cs.estimate(x), "x={x}");
        }
    }

    #[test]
    fn from_parts_rejects_shape_mismatch() {
        let mut rng = Xoshiro256pp::new(40);
        let cs = CountSketch::new(16, 3, &mut rng);
        let rows: Vec<_> = cs.rows().map(|(h, g)| (h.clone(), g.clone())).collect();
        assert!(CountSketch::from_parts(1, 16, rows.clone(), &[0; 47]).is_err());
        assert!(CountSketch::from_parts(0, 16, rows.clone(), &[0; 48]).is_err());
        assert!(CountSketch::from_parts(1, 0, rows, &[]).is_err());
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_single_counter_flip() {
        let mut rng = Xoshiro256pp::new(60);
        let mut cs = CountSketch::new(32, 4, &mut rng);
        for x in 0..1_000u64 {
            cs.update(x % 200, 1);
        }
        cs.counters[0] += 1; // breaks the shared row-sum parity
        let err = cs.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "CountSketch");
        assert_eq!(err.invariant, "countsketch.row_mass_parity");
    }

    #[test]
    fn auditor_catches_dropped_sign_hash() {
        let mut rng = Xoshiro256pp::new(61);
        let mut cs = CountSketch::new(32, 4, &mut rng);
        cs.sign_hashes.pop();
        assert_eq!(
            cs.check_invariants().unwrap_err().invariant,
            "countsketch.hash_pairing"
        );
    }
}
