//! The CR-precis structure (Ganguly & Majumder, ESCAPE'07) — the
//! *deterministic* turnstile frequency estimator behind the
//! `O((1/ε²)·log⁵u·log(log u/ε))` deterministic quantile algorithm the
//! study mentions and dismisses: *"The high dependency on 1/ε and
//! log u is not considered practical"* (§1.2.2). Implemented so the
//! dismissal is measurable.
//!
//! Structure: `t` rows, row `j` keyed by residues modulo the `j`-th
//! prime `p_j` (primes chosen ≥ a base so that their product over any
//! `t` rows exceeds the universe). Like a Count-Min sketch whose
//! "hash functions" are fixed residue maps — no randomness anywhere:
//!
//! * never underestimates (insert-only mass);
//! * any two distinct items collide in fewer than `log_b u` of the `t`
//!   rows (CRT), so the *minimum* row overshoots by at most
//!   `(n − f_x)·log_b(u)/t`.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::FrequencySketch;
use sqs_util::space::{words, SpaceUsage};

/// Deterministic sieve: first `count` primes that are ≥ `from`.
fn primes_from(from: u64, count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut candidate = from.max(2);
    while out.len() < count {
        let is_prime = (2..)
            .take_while(|d| d * d <= candidate)
            .all(|d| !candidate.is_multiple_of(d));
        if is_prime {
            out.push(candidate);
        }
        candidate += 1;
    }
    out
}

/// A CR-precis sketch: `t` prime-residue counter rows.
#[derive(Debug, Clone)]
pub struct CrPrecis {
    primes: Vec<u64>,
    /// Row `j` has `primes[j]` counters; rows are concatenated with
    /// per-row offsets.
    counters: Vec<i64>,
    offsets: Vec<usize>,
    universe: u64,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

impl CrPrecis {
    /// Builds a sketch over `universe` items with `t` rows of primes
    /// starting at `base` (row widths are the primes themselves, so
    /// total space ≈ `t·base` counters).
    ///
    /// # Panics
    /// Panics if `t == 0`, `base < 2` or `universe == 0`.
    pub fn new(universe: u64, t: usize, base: u64) -> Self {
        assert!(t > 0, "CrPrecis: t must be positive");
        assert!(base >= 2, "CrPrecis: base must be ≥ 2");
        assert!(universe > 0, "CrPrecis: empty universe");
        let primes = primes_from(base, t);
        let mut offsets = Vec::with_capacity(t);
        let mut total = 0usize;
        for &p in &primes {
            offsets.push(total);
            total += p as usize;
        }
        Self {
            primes,
            counters: vec![0; total],
            offsets,
            universe,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// Sizes a sketch for ε-fraction frequency error over `universe`:
    /// collisions per pair < log_base(u), so `t = ⌈log_b(u)/ε⌉` rows of
    /// width ≈ `base = ⌈log₂ u/ε⌉` give `εn` overshoot — the quadratic
    /// 1/ε² footprint that makes the paper call it impractical.
    pub fn for_eps(universe: u64, eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let base = (((universe as f64).log2() / eps).ceil() as u64).max(8);
        let collisions = (universe as f64).log(base as f64).ceil().max(1.0);
        let t = ((collisions / eps).ceil() as usize).clamp(1, 4096);
        Self::new(universe, t, base)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.primes.len()
    }
}

impl sqs_util::audit::CheckInvariants for CrPrecis {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "CrPrecis";
        ensure(
            !self.primes.is_empty(),
            ALG,
            "crprecis.rows_positive",
            || "no rows".to_string(),
        )?;
        ensure(
            self.offsets.len() == self.primes.len(),
            ALG,
            "crprecis.offset_count",
            || {
                format!(
                    "{} offsets for {} rows",
                    self.offsets.len(),
                    self.primes.len()
                )
            },
        )?;
        let mut total = 0usize;
        for (j, &p) in self.primes.iter().enumerate() {
            ensure(
                j == 0 || self.primes[j - 1] < p,
                ALG,
                "crprecis.primes_increasing",
                || format!("row {j} modulus {p} does not exceed its predecessor"),
            )?;
            let is_prime = p >= 2
                && (2..)
                    .take_while(|d| d * d <= p)
                    .all(|d| !p.is_multiple_of(d));
            ensure(is_prime, ALG, "crprecis.modulus_prime", || {
                format!("row {j} modulus {p} is composite")
            })?;
            ensure(
                self.offsets[j] == total,
                ALG,
                "crprecis.row_offsets",
                || format!("row {j} starts at {} instead of {total}", self.offsets[j]),
            )?;
            total += p as usize;
        }
        ensure(
            self.counters.len() == total,
            ALG,
            "crprecis.counter_layout",
            || format!("{} counters for Σ primes = {total}", self.counters.len()),
        )?;
        // Each update adds its delta to one residue class per row, so
        // all row sums equal the total update mass.
        let width0 = self.primes[0] as usize;
        let first: i64 = self.counters[..width0].iter().sum();
        for (j, &p) in self.primes.iter().enumerate().skip(1) {
            let row: i64 = self.counters[self.offsets[j]..self.offsets[j] + p as usize]
                .iter()
                .sum();
            ensure(row == first, ALG, "crprecis.row_mass_equal", || {
                format!("row {j} sums to {row}, row 0 sums to {first}")
            })?;
        }
        Ok(())
    }
}

impl FrequencySketch for CrPrecis {
    fn update(&mut self, x: u64, delta: i64) {
        for (j, &p) in self.primes.iter().enumerate() {
            self.counters[self.offsets[j] + (x % p) as usize] += delta;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        self.primes
            .iter()
            .enumerate()
            .map(|(j, &p)| self.counters[self.offsets[j] + (x % p) as usize])
            .min()
            .expect("CrPrecis invariant: t > 0 rows")
    }

    fn universe(&self) -> u64 {
        self.universe
    }
}

impl SpaceUsage for CrPrecis {
    fn space_bytes(&self) -> usize {
        words(self.counters.len() + self.primes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_generation() {
        assert_eq!(primes_from(2, 5), vec![2, 3, 5, 7, 11]);
        assert_eq!(primes_from(10, 3), vec![11, 13, 17]);
        assert_eq!(primes_from(100, 2), vec![101, 103]);
    }

    #[test]
    fn never_underestimates_and_deterministic() {
        let mut a = CrPrecis::new(1 << 16, 10, 64);
        let mut b = CrPrecis::new(1 << 16, 10, 64);
        let mut truth = std::collections::HashMap::new();
        for i in 0..20_000u64 {
            let x = (i * 48271) % (1 << 16);
            a.update(x, 1);
            b.update(x, 1);
            *truth.entry(x).or_insert(0i64) += 1;
        }
        for (&x, &t) in truth.iter().take(500) {
            assert!(a.estimate(x) >= t, "underestimate at {x}");
            assert_eq!(a.estimate(x), b.estimate(x), "determinism");
        }
    }

    #[test]
    fn collision_bound_holds() {
        // Two distinct items in [u] collide in < log_base(u) rows.
        let s = CrPrecis::new(1 << 16, 20, 17);
        for (x, y) in [(5u64, 9000), (123, 45678), (1, 65535)] {
            let collisions = s.primes.iter().filter(|&&p| x % p == y % p).count();
            let bound = (65536f64).log(17.0).ceil() as usize;
            assert!(
                collisions < bound.max(1),
                "{x},{y}: {collisions} collisions"
            );
        }
    }

    #[test]
    fn eps_sizing_estimates_within_budget() {
        let eps = 0.05;
        let mut s = CrPrecis::for_eps(1 << 12, eps);
        let n = 20_000u64;
        for i in 0..n {
            s.update((i * 7919) % (1 << 12), 1);
        }
        // Overshoot of any single estimate ≤ εn (deterministic bound).
        let mut truth = std::collections::HashMap::new();
        for i in 0..n {
            *truth.entry((i * 7919) % (1 << 12)).or_insert(0i64) += 1;
        }
        for (&x, &t) in truth.iter().take(300) {
            let over = s.estimate(x) - t;
            assert!(over >= 0);
            assert!(
                (over as f64) <= eps * n as f64 + 1.0,
                "x={x}: overshoot {over}"
            );
        }
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut s = CrPrecis::new(1 << 10, 8, 16);
        for x in 0..500u64 {
            s.update(x, 3);
        }
        for x in 0..500u64 {
            s.update(x, -3);
        }
        for x in 0..500u64 {
            assert_eq!(s.estimate(x), 0);
        }
    }

    #[test]
    fn space_is_quadratic_in_inv_eps() {
        let coarse = CrPrecis::for_eps(1 << 20, 0.1);
        let fine = CrPrecis::for_eps(1 << 20, 0.01);
        let ratio = fine.space_bytes() as f64 / coarse.space_bytes() as f64;
        assert!(
            ratio > 20.0,
            "ratio = {ratio} — should blow up quadratically"
        );
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_row_mass_drift() {
        let mut s = CrPrecis::new(1 << 12, 6, 16);
        for x in 0..2_000u64 {
            s.update(x % 500, 1);
        }
        s.counters[0] += 1;
        let err = s.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "CrPrecis");
        assert_eq!(err.invariant, "crprecis.row_mass_equal");
    }

    #[test]
    fn auditor_catches_composite_modulus() {
        let mut s = CrPrecis::new(1 << 12, 6, 16);
        s.primes[2] += 1; // 19 → 20, composite (and layout now lies too)
        let err = s.check_invariants().unwrap_err();
        assert!(
            err.invariant == "crprecis.modulus_prime" || err.invariant == "crprecis.row_offsets",
            "unexpected invariant {}",
            err.invariant
        );
    }
}
