//! Exact per-item counters for small (reduced) universes.
//!
//! §3 of the paper: *"if the reduced universe size `u/2^i` is smaller
//! than the sketch size, we should maintain the frequencies exactly,
//! rather than using a sketch."* The top levels of every dyadic
//! structure use this; its estimates are exact and its variance zero —
//! which is also what anchors the OLS post-processing (the exact nodes
//! are the `σ_i = 0` constraints in Definition 1).

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::{FrequencySketch, MergeableSketch};
use sqs_util::space::{words, SpaceUsage};

/// A plain counter array over a small universe.
#[derive(Debug, Clone)]
pub struct ExactCounts {
    counts: Vec<i64>,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

// Equality is summary state only — the audit-only `updates` diagnostic
// is excluded, since it legitimately differs between paths that reach
// the same state (wire decode starts it at zero, shard merges sum it).
impl PartialEq for ExactCounts {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
    }
}

impl Eq for ExactCounts {}

impl ExactCounts {
    /// Creates counters for a universe of `universe` items.
    ///
    /// # Panics
    /// Panics if `universe == 0` or implausibly large (> 2^28) — the
    /// dyadic structure should have used a sketch instead.
    pub fn new(universe: u64) -> Self {
        assert!(universe > 0, "ExactCounts: empty universe");
        assert!(
            universe <= 1 << 28,
            "ExactCounts: universe too large for exact counting"
        );
        Self {
            counts: vec![0; universe as usize],
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// The raw per-item counts, for serialization.
    pub fn counts(&self) -> &[i64] {
        &self.counts
    }

    /// Rebuilds from decoded counts (the inverse of
    /// [`counts`](Self::counts)). Returns `Err` if the implied universe
    /// is empty or too large for exact counting.
    pub fn from_counts(counts: Vec<i64>) -> Result<Self, &'static str> {
        if counts.is_empty() {
            return Err("ExactCounts: empty universe");
        }
        if counts.len() > 1 << 28 {
            return Err("ExactCounts: universe too large for exact counting");
        }
        Ok(Self {
            counts,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        })
    }
}

impl sqs_util::audit::CheckInvariants for ExactCounts {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "ExactCounts";
        ensure(
            !self.counts.is_empty() && self.counts.len() <= 1 << 28,
            ALG,
            "exact.universe_range",
            || format!("universe of {} counters", self.counts.len()),
        )?;
        // Strict turnstile model: no multiplicity ever goes negative.
        for (x, &c) in self.counts.iter().enumerate() {
            ensure(c >= 0, ALG, "exact.count_nonnegative", || {
                format!("item {x} has multiplicity {c}")
            })?;
        }
        Ok(())
    }
}

impl FrequencySketch for ExactCounts {
    fn update(&mut self, x: u64, delta: i64) {
        self.counts[x as usize] += delta;
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    // A tight add loop with the audit bookkeeping amortized over the
    // batch; state-identical to the scalar loop.
    fn update_batch(&mut self, batch: &[(u64, i64)]) {
        for &(x, delta) in batch {
            self.counts[x as usize] += delta;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += batch.len() as u64;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        self.counts[x as usize]
    }

    // Direct indexed loads — trivially bit-identical to the scalar
    // estimate; the override just skips the per-call trait dispatch.
    fn estimate_batch(&self, xs: &[u64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "estimate_batch: slice length mismatch");
        for (&x, o) in xs.iter().zip(out) {
            *o = self.counts[x as usize];
        }
    }

    fn universe(&self) -> u64 {
        self.counts.len() as u64
    }

    fn variance_estimate(&self) -> Option<f64> {
        Some(0.0)
    }
}

impl MergeableSketch for ExactCounts {
    fn merge_compatible(&self, other: &Self) -> bool {
        self.counts.len() == other.counts.len()
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "ExactCounts invariant: merge requires identical universes"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += other.updates;
        }
    }
}

impl SpaceUsage for ExactCounts {
    fn space_bytes(&self) -> usize {
        words(self.counts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exactly() {
        let mut e = ExactCounts::new(16);
        e.update(3, 5);
        e.update(3, -2);
        e.update(15, 1);
        assert_eq!(e.estimate(3), 3);
        assert_eq!(e.estimate(15), 1);
        assert_eq!(e.estimate(0), 0);
        assert_eq!(e.variance_estimate(), Some(0.0));
        assert_eq!(e.universe(), 16);
        assert_eq!(e.space_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn rejects_empty() {
        ExactCounts::new(0);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_negative_multiplicity() {
        let mut e = ExactCounts::new(64);
        e.update(10, 3);
        e.counts[20] = -1; // a deletion that never had a matching insert
        let err = e.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "ExactCounts");
        assert_eq!(err.invariant, "exact.count_nonnegative");
    }
}
