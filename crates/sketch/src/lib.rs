//! Turnstile frequency-estimation sketches (§3 of the paper).
//!
//! Every turnstile quantile algorithm in the study is the same dyadic
//! scaffold instantiated with a different *frequency-estimation
//! sketch*: a small structure processing `insert(x)` / `delete(x)`
//! updates over a fixed universe and answering "how many copies of `x`
//! remain?" approximately. This crate provides the three the paper
//! discusses, plus the exact fallback used for levels whose reduced
//! universe is small:
//!
//! * [`countmin::CountMin`] — Cormode & Muthukrishnan's Count-Min:
//!   `w×d` counters, min-of-rows estimator; biased upward, error
//!   `εn` with `w = O(1/ε)`.
//! * [`countsketch::CountSketch`] — Charikar, Chen & Farach-Colton's
//!   Count-Sketch: adds a 4-wise ±1 sign hash; the median-of-rows
//!   estimator is **unbiased** with variance `F₂/w` — the property
//!   §3.1's new DCS analysis exploits.
//! * [`subsetsum::SubsetSum`] — Gilbert et al.'s random-subset-sum
//!   estimator (the first turnstile quantile sketch; kept to show why
//!   it lost: `O(1/ε²)` space).
//! * [`crprecis::CrPrecis`] — Ganguly & Majumder's *deterministic*
//!   prime-residue estimator (the study's §1.2.2 "not considered
//!   practical" deterministic turnstile option, included so that
//!   judgment is measurable).
//! * [`exactlevel::ExactCounts`] — plain counter array for reduced
//!   universes small enough to store exactly (§3: "if the reduced
//!   universe size is smaller than the sketch size, we should maintain
//!   the frequencies exactly").
//!
//! All sketches share the [`FrequencySketch`] interface and the
//! paper's 4-byte-per-counter space accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countmin;
pub mod countsketch;
pub mod crprecis;
pub mod exactlevel;
pub mod subsetsum;

pub use countmin::CountMin;
pub use countsketch::CountSketch;
pub use crprecis::CrPrecis;
pub use exactlevel::ExactCounts;
pub use subsetsum::SubsetSum;

use sqs_util::audit::CheckInvariants;
use sqs_util::SpaceUsage;

/// Shared sizing for the batched update paths.
pub(crate) mod batch_scratch {
    /// Keys processed per stack-scratch refill in `update_batch`
    /// overrides. Sized to the engine/service ingest batch (1024), so
    /// a whole application batch folds its keys **once** — shared by
    /// every row — and each row then makes a single pass over it with
    /// its counters L1-resident. 1024 keys × (8-byte key + 8-byte
    /// sign) = 16 KiB of scratch, comfortably inside a 48 KiB L1
    /// alongside one sketch row.
    pub(crate) const CHUNK: usize = 1024;
}

/// Rounds a sketch row width up to a whole 64-byte cache line of
/// `i64` counters, so row-contiguous storage never splits a line
/// between rows. Padding slots stay zero and are excluded from the
/// paper's space accounting.
pub(crate) fn row_stride(width: usize) -> usize {
    width.next_multiple_of(8)
}

/// A frequency-estimation sketch over a fixed universe, processing a
/// turnstile stream of item insertions and deletions.
///
/// Every sketch must also implement [`CheckInvariants`] — the audit
/// layer relies on the supertrait to recurse into the per-level
/// sketches of the dyadic structures.
pub trait FrequencySketch: SpaceUsage + CheckInvariants {
    /// Adds `delta` copies of item `x` (negative to delete). The
    /// turnstile model guarantees no item's multiplicity goes negative;
    /// sketches do not check this (they cannot).
    fn update(&mut self, x: u64, delta: i64);

    /// Applies a batch of `(item, delta)` updates.
    ///
    /// The default is an element-wise [`update`](Self::update) loop.
    /// Overrides must be **state-identical** to that loop — counter for
    /// counter, including any audit bookkeeping — and exist purely so
    /// row-organized sketches can walk the batch row-major with their
    /// hash coefficients held in registers (see `docs/PERF.md`). The
    /// dyadic structures and the property tests in
    /// `crates/turnstile/tests/batch_props.rs` rely on the identity.
    fn update_batch(&mut self, batch: &[(u64, i64)]) {
        for &(x, delta) in batch {
            self.update(x, delta);
        }
    }

    /// Estimated current frequency of item `x`. May be negative for
    /// unbiased sketches (Count-Sketch); callers clamp as appropriate.
    fn estimate(&self, x: u64) -> i64;

    /// Estimates a batch of query keys: `out[k] = estimate(xs[k])`.
    ///
    /// The default is an element-wise [`estimate`](Self::estimate)
    /// loop. Overrides must be **bit-identical** to that loop — answer
    /// for answer — and exist purely to amortize key folding across
    /// rows and walk the counters row-major, the read-side dual of
    /// [`update_batch`](Self::update_batch) (see `docs/PERF.md` §7).
    /// The batched dyadic rank path and the property tests in
    /// `crates/turnstile/tests/batch_props.rs` rely on the identity.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    fn estimate_batch(&self, xs: &[u64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "estimate_batch: slice length mismatch");
        for (&x, o) in xs.iter().zip(out) {
            *o = self.estimate(x);
        }
    }

    /// The universe size this sketch summarizes.
    fn universe(&self) -> u64;

    /// An estimate of the variance of [`estimate`](Self::estimate) —
    /// used by the DCS post-processing (§3.2.4: "the Count-Sketch
    /// itself actually provides a good estimator for this variance").
    /// Sketches without a meaningful estimate return `None`.
    fn variance_estimate(&self) -> Option<f64> {
        None
    }

    /// A per-item refinement of [`variance_estimate`]: the variance of
    /// the estimate for this *specific* item. For the Count-Sketch this
    /// is `(F₂ − f_x²)/w` — substantially smaller than the generic
    /// `F₂/w` for heavy items, which matters enormously to the OLS
    /// post-processing on skewed data (see DESIGN.md). Defaults to the
    /// per-structure estimate.
    ///
    /// [`variance_estimate`]: Self::variance_estimate
    fn variance_estimate_for(&self, x: u64) -> Option<f64> {
        let _ = x;
        self.variance_estimate()
    }
}

/// A frequency sketch whose state is a linear function of the update
/// stream, so two sketches drawn with the **same hash functions** can
/// be combined counter-wise into the sketch of the concatenated
/// streams.
///
/// This is what lets the dyadic turnstile structures participate in
/// the sharded engine (`sqs-engine`) and the service's snapshot-merge
/// protocol: shards built from one seed are hash-compatible, and
/// merging them is exact — the merged sketch is state-identical to a
/// single sketch that saw every update.
pub trait MergeableSketch: FrequencySketch {
    /// Whether `other` was drawn with the same hash functions and
    /// shape, so [`merge_from`](Self::merge_from) is meaningful.
    fn merge_compatible(&self, other: &Self) -> bool;

    /// Adds `other`'s counters into `self`.
    ///
    /// # Panics
    /// Panics if the sketches are not
    /// [`merge_compatible`](Self::merge_compatible).
    fn merge_from(&mut self, other: &Self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqs_util::rng::Xoshiro256pp;

    /// All sketches must track a simple turnstile workload closely.
    fn roundtrip<S: FrequencySketch>(mut sketch: S, tolerance: i64) {
        // Insert a skewed workload, delete part of it, check survivors.
        for x in 0..100u64 {
            for _ in 0..=(x % 10) {
                sketch.update(x, 1);
            }
        }
        for x in 0..50u64 {
            for _ in 0..=(x % 10) {
                sketch.update(x, -1);
            }
        }
        for x in [50u64, 59, 73, 99] {
            let truth = (x % 10 + 1) as i64;
            let est = sketch.estimate(x);
            assert!(
                (est - truth).abs() <= tolerance,
                "x={x}: est {est} vs truth {truth}"
            );
        }
        for x in [0u64, 13, 49] {
            assert!(sketch.estimate(x).abs() <= tolerance, "deleted x={x}");
        }
    }

    #[test]
    fn exact_counts_roundtrip() {
        roundtrip(ExactCounts::new(128), 0);
    }

    #[test]
    fn countmin_roundtrip() {
        let mut rng = Xoshiro256pp::new(1);
        roundtrip(CountMin::new(256, 5, &mut rng), 30);
    }

    #[test]
    fn countsketch_roundtrip() {
        let mut rng = Xoshiro256pp::new(2);
        roundtrip(CountSketch::new(256, 5, &mut rng), 30);
    }

    #[test]
    fn subsetsum_roundtrip() {
        let mut rng = Xoshiro256pp::new(3);
        roundtrip(SubsetSum::new(128, 400, &mut rng), 60);
    }
}
