//! The random-subset-sum sketch (Gilbert, Kotidis, Muthukrishnan &
//! Strauss, VLDB'02) — the first turnstile quantile sketch (§1.2.2).
//!
//! Each of `k` repetitions keeps one counter `C_j` summing the
//! frequencies of the items in a pairwise-independent random half of
//! the universe (`b_j(x) = 1`), plus the exact total mass `N`. Then
//!
//! * if `b_j(x) = 1`:  `E[C_j] = f(x) + (N − f(x))/2` → `f̂ = 2C_j − N`,
//! * if `b_j(x) = 0`:  `E[C_j] = (N − f(x))/2`       → `f̂ = N − 2C_j`,
//!
//! both unbiased with variance `Θ(F₂)`; averaging the `k` repetitions
//! divides the variance by `k`, which is why this sketch needs
//! `k = O(1/ε²)` counters where Count-Min/Count-Sketch need `O(1/ε)`
//! buckets — the reason the paper excludes it from the headline plots
//! ("its performance is much worse"), and why we keep it: to show
//! that.

#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
// ^ audited: indices and casts here are bounded by structural
// invariants (see `check_invariants` impls and docs/ANALYSIS.md);
// this module is on the `cargo xtask check` allowlist.

use crate::{batch_scratch::CHUNK, FrequencySketch, MergeableSketch};
use sqs_util::hash::PairwiseHash;
use sqs_util::rng::Xoshiro256pp;
use sqs_util::space::{words, SpaceUsage};

/// A `k`-repetition random-subset-sum sketch.
#[derive(Debug, Clone)]
pub struct SubsetSum {
    counters: Vec<i64>,
    members: Vec<PairwiseHash>, // b_j : [u] → {0, 1}
    total: i64,                 // exact N (insertions − deletions)
    universe: u64,
    #[cfg(any(test, feature = "audit"))]
    updates: u64,
}

// Equality is summary state only — the audit-only `updates` diagnostic
// is excluded, since it legitimately differs between paths that reach
// the same state (wire decode starts it at zero, shard merges sum it).
impl PartialEq for SubsetSum {
    fn eq(&self, other: &Self) -> bool {
        self.counters == other.counters
            && self.members == other.members
            && self.total == other.total
            && self.universe == other.universe
    }
}

impl Eq for SubsetSum {}

impl SubsetSum {
    /// Creates a sketch over `universe` items with `k` repetitions.
    ///
    /// # Panics
    /// Panics if `k == 0` or `universe == 0`.
    pub fn new(universe: u64, k: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(k > 0, "SubsetSum: k must be positive");
        assert!(universe > 0, "SubsetSum: empty universe");
        Self {
            counters: vec![0; k],
            members: (0..k).map(|_| PairwiseHash::new(rng, 2)).collect(),
            total: 0,
            universe,
            #[cfg(any(test, feature = "audit"))]
            updates: 0,
        }
    }

    /// Number of repetitions `k`.
    pub fn repetitions(&self) -> usize {
        self.counters.len()
    }
}

impl sqs_util::audit::CheckInvariants for SubsetSum {
    fn check_invariants(&self) -> Result<(), sqs_util::audit::InvariantViolation> {
        use sqs_util::audit::ensure;
        const ALG: &str = "SubsetSum";
        ensure(
            !self.counters.is_empty(),
            ALG,
            "subsetsum.reps_positive",
            || "no repetitions".to_string(),
        )?;
        ensure(
            self.members.len() == self.counters.len(),
            ALG,
            "subsetsum.member_pairing",
            || {
                format!(
                    "{} membership hashes for {} counters",
                    self.members.len(),
                    self.counters.len()
                )
            },
        )?;
        ensure(
            self.universe > 0,
            ALG,
            "subsetsum.universe_positive",
            || "universe is zero".to_string(),
        )?;
        // Strict turnstile model: item multiplicities never go negative,
        // so each subset's mass sits between 0 and the total mass.
        ensure(self.total >= 0, ALG, "subsetsum.total_nonnegative", || {
            format!("total mass is {}", self.total)
        })?;
        for (j, &c) in self.counters.iter().enumerate() {
            ensure(
                c >= 0 && c <= self.total,
                ALG,
                "subsetsum.subset_mass_bound",
                || format!("repetition {j} holds {c}, outside [0, {}]", self.total),
            )?;
        }
        Ok(())
    }
}

impl FrequencySketch for SubsetSum {
    fn update(&mut self, x: u64, delta: i64) {
        self.total += delta;
        for (c, b) in self.counters.iter_mut().zip(&self.members) {
            if b.hash(x) == 1 {
                *c += delta;
            }
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += 1;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    // Repetition-major batch walk: each membership hash is evaluated
    // over the whole chunk with coefficients in registers, and the
    // `{0,1}` membership bit multiplies the delta branchlessly.
    // State-identical to the scalar loop.
    fn update_batch(&mut self, batch: &[(u64, i64)]) {
        let mut keys = [0u64; CHUNK];
        let mut mbuf = [0u64; CHUNK];
        for chunk in batch.chunks(CHUNK) {
            let m = chunk.len();
            // One field-fold per key, shared by every repetition.
            for (k, &(x, _)) in keys.iter_mut().zip(chunk) {
                *k = sqs_util::hash::fold_to_field(x);
            }
            self.total += chunk.iter().map(|&(_, d)| d).sum::<i64>();
            for (c, b) in self.counters.iter_mut().zip(&self.members) {
                b.hash_folded_batch(&keys[..m], &mut mbuf[..m]);
                for (&bit, &(_, delta)) in mbuf[..m].iter().zip(chunk) {
                    *c += bit as i64 * delta;
                }
            }
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += batch.len() as u64;
            if sqs_util::audit::audit_point(self.updates) {
                sqs_util::audit::CheckInvariants::assert_invariants(self);
            }
        }
    }

    fn estimate(&self, x: u64) -> i64 {
        let k = self.counters.len() as i64;
        let sum: i64 = self
            .counters
            .iter()
            .zip(&self.members)
            .map(|(&c, b)| {
                if b.hash(x) == 1 {
                    2 * c - self.total
                } else {
                    self.total - 2 * c
                }
            })
            .sum();
        // Round-to-nearest average.
        (sum + k.signum() * k / 2) / k
    }

    // Repetition-major read: each membership hash sweeps the chunk's
    // folded keys once, accumulating the per-key estimator sums in
    // repetition order — i64 addition commutes, so the final rounded
    // average is bit-identical to the scalar estimate.
    fn estimate_batch(&self, xs: &[u64], out: &mut [i64]) {
        assert_eq!(xs.len(), out.len(), "estimate_batch: slice length mismatch");
        let k = self.counters.len() as i64;
        let mut keys = [0u64; CHUNK];
        let mut mbuf = [0u64; CHUNK];
        for (chunk, out_c) in xs.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let m = chunk.len();
            for (key, &x) in keys.iter_mut().zip(chunk) {
                *key = sqs_util::hash::fold_to_field(x);
            }
            out_c.fill(0);
            for (&c, b) in self.counters.iter().zip(&self.members) {
                b.hash_folded_batch(&keys[..m], &mut mbuf[..m]);
                for (o, &bit) in out_c.iter_mut().zip(&mbuf[..m]) {
                    *o += if bit == 1 {
                        2 * c - self.total
                    } else {
                        self.total - 2 * c
                    };
                }
            }
            for o in out_c.iter_mut() {
                *o = (*o + k.signum() * k / 2) / k;
            }
        }
    }

    fn universe(&self) -> u64 {
        self.universe
    }

    fn variance_estimate(&self) -> Option<f64> {
        // Var(single estimator) ≈ F₂ ≤ N²; we expose the crude N²/k
        // bound (the sketch has no good F₂ estimator of its own).
        let k = self.counters.len() as f64;
        Some((self.total as f64) * (self.total as f64) / k)
    }
}

impl MergeableSketch for SubsetSum {
    fn merge_compatible(&self, other: &Self) -> bool {
        self.universe == other.universe && self.members == other.members
    }

    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.merge_compatible(other),
            "SubsetSum invariant: merge requires identical membership hashes"
        );
        self.total += other.total;
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c += o;
        }
        #[cfg(any(test, feature = "audit"))]
        {
            self.updates += other.updates;
        }
    }
}

impl SpaceUsage for SubsetSum {
    fn space_bytes(&self) -> usize {
        // k counters + 2 hash coefficients each + the exact total.
        words(self.counters.len() * 3 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbiased_over_draws() {
        let mut seed_rng = Xoshiro256pp::new(40);
        let trials = 400;
        let mut sum = 0f64;
        for _ in 0..trials {
            let mut ss = SubsetSum::new(1024, 8, &mut seed_rng);
            for x in 0..64u64 {
                ss.update(x, 4);
            }
            sum += ss.estimate(5) as f64;
        }
        let mean = sum / trials as f64;
        assert!((mean - 4.0).abs() < 12.0, "mean = {mean}");
    }

    #[test]
    fn heavy_item_detectable_with_many_reps() {
        let mut rng = Xoshiro256pp::new(41);
        let mut ss = SubsetSum::new(4096, 2000, &mut rng);
        // One heavy item among light noise.
        ss.update(77, 5_000);
        let mut noise = Xoshiro256pp::new(42);
        for _ in 0..5_000 {
            ss.update(noise.next_below(4096), 1);
        }
        let est = ss.estimate(77);
        assert!((est - 5_000).abs() < 1_500, "est = {est}");
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut rng = Xoshiro256pp::new(43);
        let mut ss = SubsetSum::new(256, 50, &mut rng);
        for x in 0..100u64 {
            ss.update(x, 2);
        }
        for x in 0..100u64 {
            ss.update(x, -2);
        }
        for x in 0..100u64 {
            assert_eq!(ss.estimate(x), 0, "x={x}");
        }
    }

    #[test]
    fn batch_is_state_identical_to_scalar() {
        let mut rng = Xoshiro256pp::new(45);
        let mut scalar = SubsetSum::new(1 << 20, 64, &mut rng);
        let mut batched = scalar.clone();
        let mut stream_rng = Xoshiro256pp::new(46);
        // Deletions target keys already inserted, keeping the stream
        // strict-turnstile so mid-batch audit points stay valid.
        let mut batch: Vec<(u64, i64)> = Vec::new();
        for i in 0..700 {
            let x = stream_rng.next_below(1 << 20);
            batch.push((x, 1));
            if i % 4 == 3 {
                batch.push((x, -1));
            }
        }
        for &(x, d) in &batch {
            scalar.update(x, d);
        }
        batched.update_batch(&batch);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn estimate_batch_is_bit_identical_to_scalar() {
        let mut rng = Xoshiro256pp::new(47);
        let mut ss = SubsetSum::new(1 << 16, 64, &mut rng);
        let mut stream_rng = Xoshiro256pp::new(48);
        for _ in 0..5_000 {
            ss.update(stream_rng.next_below(1 << 16), 1);
        }
        for n in [1usize, 17, 1024, 1025] {
            let xs: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9) % (1 << 16))
                .collect();
            let mut out = vec![0i64; n];
            ss.estimate_batch(&xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, ss.estimate(x), "n={n} x={x}");
            }
        }
    }

    #[test]
    fn space_is_three_words_per_rep() {
        let mut rng = Xoshiro256pp::new(44);
        let ss = SubsetSum::new(64, 100, &mut rng);
        assert_eq!(ss.space_bytes(), (300 + 1) * 4);
    }
}

#[cfg(test)]
mod corruption {
    use super::*;
    use sqs_util::audit::CheckInvariants;

    #[test]
    fn auditor_catches_subset_exceeding_total() {
        let mut rng = Xoshiro256pp::new(70);
        let mut ss = SubsetSum::new(256, 16, &mut rng);
        for x in 0..500u64 {
            ss.update(x % 200, 1);
        }
        ss.counters[3] = ss.total + 1;
        let err = ss.check_invariants().unwrap_err();
        assert_eq!(err.algorithm, "SubsetSum");
        assert_eq!(err.invariant, "subsetsum.subset_mass_bound");
    }

    #[test]
    fn auditor_catches_negative_total() {
        let mut rng = Xoshiro256pp::new(71);
        let mut ss = SubsetSum::new(256, 16, &mut rng);
        ss.total = -5;
        assert_eq!(
            ss.check_invariants().unwrap_err().invariant,
            "subsetsum.total_nonnegative"
        );
    }
}
