//! Atomic per-tenant checkpoints of engine state.
//!
//! A checkpoint is one file under `<data-dir>/ckpt/` holding a
//! tenant's merged summary as a `sqs_core::codec` wire frame, plus the
//! metadata recovery needs: the WAL sequence number the snapshot
//! covers and the engine's item count at that moment.
//!
//! ```text
//! file:  "SQCK" | ver u8 | rsvd u8×3 | tenant u64 | seq u64 |
//!        n u64 | frame_len u64 | frame | fnv64(everything before)
//! name:  t<tenant>-s<seq>.ckpt
//! ```
//!
//! Writes are atomic in the crash sense: the bytes go to a `.tmp`
//! sibling, are fsynced, and only then renamed into place (rename is
//! atomic on POSIX), followed by a directory fsync. A crash at any
//! point leaves either the old complete file set or the new one —
//! never a half-written checkpoint with a valid name. Loading takes
//! the newest checkpoint per tenant that passes its checksum; corrupt
//! files are skipped (counted), falling back to the next-newest, and
//! ultimately to pure WAL replay. The two newest checkpoints per
//! tenant are retained for exactly that fallback; older ones are
//! pruned after each successful write.
//!
//! For the fallback to be *sound*, the WAL must still hold every
//! record the fallback checkpoint does not cover — which is why the
//! store fences WAL truncation on each tenant's **second-newest**
//! checkpoint (reported here as [`CheckpointLoad::fallback_seqs`] and
//! threaded back by `record_checkpoint`), not its newest: records in
//! `(prev.seq, newest.seq]` stay replayable until a *younger* pair
//! exists, so a bit-rotted newest file degrades recovery to
//! "fallback + longer replay" instead of silent data loss.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use sqs_core::codec::{fnv1a64_concat, Reader};

use crate::{StoreError, StoreResult};

/// Checkpoint-file magic: the four bytes `SQCK` (Streaming Quantile
/// ChecKpoint).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SQCK";

/// Current checkpoint-format version; loading rejects others.
pub const CHECKPOINT_VERSION: u8 = 1;

/// How many checkpoints per tenant survive pruning (newest first).
/// Two: the current one, plus one predecessor as a bit-rot fallback.
/// The WAL truncation fence tracks the predecessor (see the module
/// docs), so the fallback always has its replay tail available.
pub const KEEP_PER_TENANT: usize = 2;

/// One tenant's newest valid checkpoint, as loaded at recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCheckpoint {
    /// The tenant the snapshot belongs to.
    pub tenant: u64,
    /// WAL records with sequence numbers ≤ this are inside the
    /// snapshot; replay starts after it.
    pub seq: u64,
    /// The engine's total item count when the snapshot was taken —
    /// recovery's count-verification anchor.
    pub n: u64,
    /// The summary as a `sqs_core::codec` wire frame (decoded by the
    /// service, which knows the concrete summary type).
    pub frame: Vec<u8>,
}

/// What loading the checkpoint directory found.
#[derive(Debug, Clone, Default)]
pub struct CheckpointLoad {
    /// Newest valid checkpoint per tenant.
    pub checkpoints: Vec<TenantCheckpoint>,
    /// Files whose checksum or structure failed — skipped, and the
    /// next-newest file (if any) used instead.
    pub corrupt_skipped: u64,
    /// Per tenant, the sequence number of the *second*-newest valid
    /// checkpoint (tenants with only one valid file are absent). This
    /// seeds the WAL truncation fence after recovery: records above it
    /// must stay replayable so the retained fallback file is usable.
    pub fallback_seqs: Vec<(u64, u64)>,
}

/// Writes tenant `tenant`'s checkpoint atomically and prunes that
/// tenant's older files down to [`KEEP_PER_TENANT`].
///
/// # Errors
/// I/O failures at any step; a failure before the rename leaves the
/// previous checkpoint set untouched.
pub fn write_checkpoint(
    dir: &Path,
    tenant: u64,
    seq: u64,
    n: u64,
    frame: &[u8],
) -> StoreResult<()> {
    let bytes = encode_checkpoint(tenant, seq, n, frame);
    let final_path = checkpoint_path(dir, tenant, seq);
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut tmp = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)
            .map_err(|e| StoreError::io("checkpoint tmp create", &tmp_path, e))?;
        tmp.write_all(&bytes)
            .map_err(|e| StoreError::io("checkpoint tmp write", &tmp_path, e))?;
        tmp.sync_all()
            .map_err(|e| StoreError::io("checkpoint tmp sync", &tmp_path, e))?;
    }
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| StoreError::io("checkpoint rename", &final_path, e))?;
    sync_dir(dir)?;
    prune(dir, tenant)?;
    Ok(())
}

/// Loads the newest valid checkpoint for every tenant present in
/// `dir`, skipping (and counting) corrupt files, and removing stray
/// `.tmp` files left by a crash mid-write.
///
/// # Errors
/// Directory listing/read failures. Corrupt checkpoint *contents* are
/// not errors — they are skipped.
pub fn load_checkpoints(dir: &Path) -> StoreResult<CheckpointLoad> {
    let mut load = CheckpointLoad::default();
    let mut newest: std::collections::HashMap<u64, TenantCheckpoint> =
        std::collections::HashMap::new();
    let mut valid_seqs: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
    for (path, is_tmp) in list_files(dir)? {
        if is_tmp {
            // A crash between tmp-write and rename: the file was never
            // valid, delete it.
            let _ = fs::remove_file(&path);
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io("checkpoint read", &path, e))?;
        match decode_checkpoint(&bytes) {
            Some(ckpt) => {
                valid_seqs.entry(ckpt.tenant).or_default().push(ckpt.seq);
                let replace = newest
                    .get(&ckpt.tenant)
                    .is_none_or(|have| ckpt.seq > have.seq);
                if replace {
                    newest.insert(ckpt.tenant, ckpt);
                }
            }
            None => load.corrupt_skipped += 1,
        }
    }
    for (tenant, mut seqs) in valid_seqs {
        seqs.sort_unstable_by_key(|&s| std::cmp::Reverse(s));
        if let Some(&prev) = seqs.get(1) {
            load.fallback_seqs.push((tenant, prev));
        }
    }
    load.fallback_seqs.sort_unstable();
    load.checkpoints = newest.into_values().collect();
    load.checkpoints.sort_unstable_by_key(|c| c.tenant);
    Ok(load)
}

/// Serializes one checkpoint file (header + frame + checksum).
fn encode_checkpoint(tenant: u64, seq: u64, n: u64, frame: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + frame.len() + 8);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&(frame.len() as u64).to_le_bytes());
    out.extend_from_slice(frame);
    let sum = fnv1a64_concat(&[&out]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Parses and validates one checkpoint file; `None` on any corruption.
fn decode_checkpoint(bytes: &[u8]) -> Option<TenantCheckpoint> {
    let body_len = bytes.len().checked_sub(8)?;
    let (framed, sum_bytes) = bytes.split_at_checked(body_len)?;
    let declared: [u8; 8] = sum_bytes.try_into().ok()?;
    if fnv1a64_concat(&[framed]) != u64::from_le_bytes(declared) {
        return None;
    }
    let mut r = Reader::new(framed);
    if r.bytes(4).ok()? != CHECKPOINT_MAGIC {
        return None;
    }
    if r.u8().ok()? != CHECKPOINT_VERSION {
        return None;
    }
    let _reserved = r.bytes(3).ok()?;
    let tenant = r.u64().ok()?;
    let seq = r.u64().ok()?;
    let n = r.u64().ok()?;
    let frame_len = r.read_len().ok()?;
    if frame_len != r.remaining() {
        return None;
    }
    let frame = r.bytes(frame_len).ok()?.to_vec();
    // Cheap structural sanity on the inner frame before handing it to
    // the service's typed decode: it must at least carry the codec
    // magic and a kind tag.
    sqs_core::codec::frame_kind(&frame).ok()?;
    Some(TenantCheckpoint {
        tenant,
        seq,
        n,
        frame,
    })
}

/// `t<tenant>-s<seq>.ckpt`, zero-padded so lexicographic order is
/// (tenant, seq) order.
fn checkpoint_path(dir: &Path, tenant: u64, seq: u64) -> PathBuf {
    dir.join(format!("t{tenant:020}-s{seq:020}.ckpt"))
}

/// Parses a checkpoint file name back into `(tenant, seq)`.
fn parse_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix('t')?.strip_suffix(".ckpt")?;
    let (tenant_digits, seq_part) = rest.split_once("-s")?;
    Some((tenant_digits.parse().ok()?, seq_part.parse().ok()?))
}

/// All files in `dir` that look checkpoint-related, as
/// `(path, is_tmp)`.
fn list_files(dir: &Path) -> StoreResult<Vec<(PathBuf, bool)>> {
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("checkpoint read_dir", dir, e))?;
    let mut out = Vec::new();
    for entry in entries {
        let path = entry
            .map_err(|e| StoreError::io("checkpoint read_dir entry", dir, e))?
            .path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            out.push((path, true));
        } else if parse_name(name).is_some() {
            out.push((path, false));
        }
    }
    Ok(out)
}

/// Deletes `tenant`'s checkpoints beyond the newest
/// [`KEEP_PER_TENANT`].
fn prune(dir: &Path, tenant: u64) -> StoreResult<()> {
    let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
    for (path, is_tmp) in list_files(dir)? {
        if is_tmp {
            continue;
        }
        if let Some((t, s)) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(parse_name)
        {
            if t == tenant {
                seqs.push((s, path));
            }
        }
    }
    seqs.sort_unstable_by_key(|&(s, _)| std::cmp::Reverse(s)); // newest first
    for (_, path) in seqs.iter().skip(KEEP_PER_TENANT) {
        fs::remove_file(path).map_err(|e| StoreError::io("checkpoint prune", path, e))?;
    }
    if seqs.len() > KEEP_PER_TENANT {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Directory fsync so renames/unlinks are durable; best-effort where
/// directories cannot be opened.
fn sync_dir(dir: &Path) -> StoreResult<()> {
    match File::open(dir) {
        Ok(handle) => handle
            .sync_all()
            .map_err(|e| StoreError::io("dir fsync", dir, e)),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> sqs_util::tmpdir::TempDir {
        sqs_util::tmpdir::TempDir::new("sqs-ckpt-test").expect("test invariant: tmpdir creatable")
    }

    /// A minimal valid `sqs_core` frame to ride inside checkpoints.
    fn frame() -> Vec<u8> {
        use sqs_core::codec::WireCodec;
        sqs_core::sampled::ReservoirQuantiles::<u64>::new(0.1, 1).to_bytes()
    }

    #[test]
    fn write_load_roundtrip_newest_wins() {
        let dir = tmp();
        let f = frame();
        write_checkpoint(dir.path(), 7, 100, 5000, &f).expect("write");
        write_checkpoint(dir.path(), 7, 250, 9000, &f).expect("write");
        write_checkpoint(dir.path(), 8, 10, 40, &f).expect("write");
        let load = load_checkpoints(dir.path()).expect("load");
        assert_eq!(load.corrupt_skipped, 0);
        assert_eq!(load.checkpoints.len(), 2);
        let t7 = load
            .checkpoints
            .iter()
            .find(|c| c.tenant == 7)
            .expect("tenant 7");
        assert_eq!((t7.seq, t7.n), (250, 9000));
        assert_eq!(t7.frame, f);
        assert_eq!(
            load.fallback_seqs,
            vec![(7, 100)],
            "tenant 7 has a fallback; tenant 8 (one file) has none"
        );
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp();
        let f = frame();
        write_checkpoint(dir.path(), 3, 50, 100, &f).expect("write");
        write_checkpoint(dir.path(), 3, 90, 200, &f).expect("write");
        // Flip a byte in the newest file.
        let newest = checkpoint_path(dir.path(), 3, 90);
        let mut bytes = fs::read(&newest).expect("read");
        if let Some(b) = bytes.get_mut(20) {
            *b ^= 0x01;
        }
        fs::write(&newest, &bytes).expect("write back");
        let load = load_checkpoints(dir.path()).expect("load");
        assert_eq!(load.corrupt_skipped, 1);
        let t3 = load
            .checkpoints
            .iter()
            .find(|c| c.tenant == 3)
            .expect("tenant 3 falls back");
        assert_eq!(t3.seq, 50, "previous checkpoint used");
        assert!(
            load.fallback_seqs.is_empty(),
            "the corrupt file does not count as a fallback"
        );
    }

    #[test]
    fn prune_keeps_two_newest_per_tenant() {
        let dir = tmp();
        let f = frame();
        for seq in [10u64, 20, 30, 40] {
            write_checkpoint(dir.path(), 1, seq, seq * 2, &f).expect("write");
        }
        let files = list_files(dir.path()).expect("list");
        assert_eq!(files.len(), KEEP_PER_TENANT, "pruned to the newest two");
        let load = load_checkpoints(dir.path()).expect("load");
        assert_eq!(
            load.checkpoints.first().map(|c| c.seq),
            Some(40),
            "newest survives pruning"
        );
    }

    #[test]
    fn stray_tmp_file_is_swept_and_ignored() {
        let dir = tmp();
        let f = frame();
        write_checkpoint(dir.path(), 2, 5, 9, &f).expect("write");
        let stray = checkpoint_path(dir.path(), 2, 6).with_extension("tmp");
        fs::write(&stray, b"half-written garbage").expect("plant stray");
        let load = load_checkpoints(dir.path()).expect("load");
        assert_eq!(load.checkpoints.len(), 1);
        assert_eq!(load.checkpoints.first().map(|c| c.seq), Some(5));
        assert!(!stray.exists(), "stray tmp swept");
    }

    #[test]
    fn truncated_file_is_skipped_not_fatal() {
        let dir = tmp();
        let f = frame();
        write_checkpoint(dir.path(), 4, 77, 1, &f).expect("write");
        let path = checkpoint_path(dir.path(), 4, 77);
        let bytes = fs::read(&path).expect("read");
        for keep in [0usize, 7, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, bytes.get(..keep).unwrap_or_default()).expect("truncate");
            let load = load_checkpoints(dir.path()).expect("load must not error");
            assert_eq!(load.corrupt_skipped, 1, "keep={keep}");
            assert!(load.checkpoints.is_empty(), "keep={keep}");
        }
    }
}
