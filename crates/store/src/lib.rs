//! `sqs-store` — the durable storage layer under the quantile service.
//!
//! The paper's summaries are mergeable, serializable state machines,
//! and the workspace's wire codec already round-trips them exactly
//! (RNG state included). This crate turns that property into
//! durability for `sqs-serve`: a tenant's engine state survives
//! `kill -9` because everything the server *acknowledged* is either
//! inside a checkpoint or replayable from a write-ahead log.
//!
//! Two cooperating pieces (each with its own module):
//!
//! * [`wal`] — a segmented, length-prefixed, per-record-checksummed
//!   log of acknowledged ingest operations. Appends happen *before*
//!   the engine sees the data and before the client sees the ACK;
//!   replay tolerates torn writes by truncating at the first corrupt
//!   byte.
//! * [`checkpoint`] — periodic atomic snapshots of each tenant's
//!   merged summary (the existing `WireCodec` frame), tagged with the
//!   WAL sequence number they cover. Checkpoints bound replay time
//!   and **fence** WAL truncation: a segment is deleted only when
//!   every tenant's checkpoint covers it.
//!
//! [`DurableStore`] composes them and owns the consistency protocol.
//! The invariant that makes recovery exact: for every tenant, *the
//! set of that tenant's operations with sequence number ≤ its
//! checkpoint's sequence number is exactly the set inside the
//! checkpoint*. The service guarantees it by holding the tenant's
//! [`TenantHandle`] lock across (WAL append + engine ingest) on the
//! write path, and across (read last-appended seq + engine snapshot)
//! on the checkpoint path. Recovery is then mechanical: decode the
//! newest valid checkpoint per tenant, replay the WAL records with
//! higher sequence numbers, verify counts.
//!
//! The crate is deliberately engine-agnostic: it stores bytes and
//! `u64` batches, never decoding summary frames itself (beyond a
//! structural [`sqs_core::codec::frame_kind`] sanity check), so the
//! service keeps the monopoly on summary types. See `docs/STORE.md`
//! for the byte layouts and the crash matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

pub mod checkpoint;
pub mod wal;

pub use checkpoint::{CheckpointLoad, TenantCheckpoint};
pub use wal::{FsyncPolicy, ReplayReport, WalPayload, WalRecord};

use wal::WalWriter;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, with the operation and path attached.
    Io {
        /// What the store was doing (e.g. `"wal append"`).
        context: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A record body exceeds [`wal::MAX_RECORD_BODY`]; the caller's
    /// payload cap should make this unreachable in the service.
    RecordTooLarge {
        /// The offending body size in bytes.
        bytes: usize,
    },
    /// A failed append left stale bytes the writer could not roll
    /// back; all further appends fail fast so no acknowledgement can
    /// ever depend on a record written after them. Restarting the
    /// process repairs the tail via replay.
    WalPoisoned,
}

impl StoreError {
    /// Wraps an [`io::Error`] with its operation and path.
    pub(crate) fn io(context: &'static str, path: &Path, source: io::Error) -> Self {
        StoreError::Io {
            context,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} ({}): {source}", path.display()),
            StoreError::RecordTooLarge { bytes } => {
                write!(
                    f,
                    "record body of {bytes} bytes exceeds the {} byte cap",
                    wal::MAX_RECORD_BODY
                )
            }
            StoreError::WalPoisoned => write!(
                f,
                "wal writer poisoned by an earlier failed append; restart to repair the tail"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::RecordTooLarge { .. } | StoreError::WalPoisoned => None,
        }
    }
}

/// Configuration for [`DurableStore::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root data directory; `wal/` and `ckpt/` are created under it.
    pub dir: PathBuf,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// When appends reach the platter.
    pub fsync: FsyncPolicy,
}

impl StoreConfig {
    /// Defaults for `dir`: 64 MiB segments, [`FsyncPolicy::Always`]
    /// (an ACK means the bytes survive power loss).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: 64 << 20,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A point-in-time snapshot of the store's counters, surfaced by the
/// service's `STATS` op next to `EngineTotals`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// WAL records appended since open.
    pub records_appended: u64,
    /// Stream items inside appended batch records.
    pub items_appended: u64,
    /// WAL bytes appended (framing included).
    pub bytes_appended: u64,
    /// Explicit `fdatasync`/`fsync` calls on WAL segments.
    pub fsyncs: u64,
    /// WAL segment rotations.
    pub segments_rotated: u64,
    /// WAL segments deleted by checkpoint-fenced truncation.
    pub segments_deleted: u64,
    /// Checkpoints written successfully.
    pub checkpoints_written: u64,
    /// Checkpoint files skipped as corrupt during recovery.
    pub corrupt_checkpoints_skipped: u64,
    /// Recoveries performed at open (1 if prior state was found).
    pub recoveries: u64,
    /// WAL records replayed during the recovery.
    pub replayed_records: u64,
    /// Torn/corrupt WAL tails truncated during the recovery.
    pub torn_tails_dropped: u64,
    /// Forward sequence gaps accepted at segment boundaries during the
    /// recovery (resume points of earlier recoveries, not new loss).
    pub seq_gaps: u64,
    /// Highest sequence number assigned so far (0 = none).
    pub last_seq: u64,
}

/// Everything [`DurableStore::open`] recovered from disk, for the
/// service to rebuild engines from. Frames are *not* decoded here —
/// the service knows the summary type.
#[derive(Debug)]
pub struct Recovery {
    /// Newest valid checkpoint per tenant.
    pub checkpoints: Vec<TenantCheckpoint>,
    /// WAL records to replay, in sequence order, already filtered to
    /// those *not* covered by their tenant's checkpoint.
    pub records: Vec<WalRecord>,
    /// The raw WAL replay report (includes covered records too).
    pub report: ReplayReport,
    /// Corrupt checkpoint files skipped (newest-but-corrupt falls back
    /// to the previous one).
    pub corrupt_checkpoints_skipped: u64,
}

impl Recovery {
    /// Whether any durable state was found at all.
    #[must_use]
    pub fn found_state(&self) -> bool {
        !self.checkpoints.is_empty()
            || self.report.records > 0
            || self.report.torn_tails_dropped > 0
    }
}

/// Per-tenant bookkeeping: the ingest/checkpoint mutual-exclusion
/// lock plus the two sequence-number high-water marks.
#[derive(Debug, Default)]
struct TenantMeta {
    /// Held across (WAL append + engine ingest) and across (seq read +
    /// engine snapshot) — the consistency protocol's only lock.
    gate: Mutex<()>,
    /// Sequence number of this tenant's most recent WAL record.
    last_append: AtomicU64,
    /// Sequence number the tenant's newest checkpoint covers.
    ckpt_seq: AtomicU64,
    /// Sequence number the tenant's *second*-newest checkpoint covers
    /// — the WAL truncation fence. Trailing `ckpt_seq` by one
    /// checkpoint keeps records in `(fence_seq, ckpt_seq]` replayable,
    /// so the retained fallback checkpoint file is actually usable if
    /// the newest one bit-rots.
    fence_seq: AtomicU64,
}

/// A cloneable handle to one tenant's ingest/checkpoint gate.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    meta: Arc<TenantMeta>,
}

impl TenantHandle {
    /// Acquires the tenant gate. Hold the guard across the paired
    /// store + engine operations (see the crate docs); a poisoned gate
    /// is recovered, since the store's own state is append-only and a
    /// panicked holder cannot have left it half-updated.
    pub fn lock(&self) -> MutexGuard<'_, ()> {
        self.meta
            .gate
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Monotonic counters behind [`StoreStats`].
#[derive(Debug, Default)]
struct Counters {
    records_appended: AtomicU64,
    items_appended: AtomicU64,
    bytes_appended: AtomicU64,
    fsyncs: AtomicU64,
    segments_rotated: AtomicU64,
    segments_deleted: AtomicU64,
    checkpoints_written: AtomicU64,
    corrupt_checkpoints_skipped: AtomicU64,
    recoveries: AtomicU64,
    replayed_records: AtomicU64,
    torn_tails_dropped: AtomicU64,
    seq_gaps: AtomicU64,
}

/// The durable storage facade: WAL + checkpoints + the consistency
/// protocol. One instance per `--data-dir`; shared by worker threads
/// and the background checkpointer via `Arc`.
#[derive(Debug)]
pub struct DurableStore {
    ckpt_dir: PathBuf,
    wal: Mutex<WalWriter>,
    tenants: Mutex<HashMap<u64, Arc<TenantMeta>>>,
    counters: Counters,
}

impl DurableStore {
    /// Opens (creating directories as needed) the store under
    /// `cfg.dir`, performing recovery: load the newest valid
    /// checkpoint per tenant, replay the WAL (repairing torn tails in
    /// place), and return both the ready store and the [`Recovery`]
    /// the service must feed into its engines before serving.
    ///
    /// # Errors
    /// I/O failures creating directories or reading/repairing state.
    pub fn open(cfg: &StoreConfig) -> StoreResult<(Self, Recovery)> {
        let wal_dir = cfg.dir.join("wal");
        let ckpt_dir = cfg.dir.join("ckpt");
        fs::create_dir_all(&wal_dir).map_err(|e| StoreError::io("create wal dir", &wal_dir, e))?;
        fs::create_dir_all(&ckpt_dir)
            .map_err(|e| StoreError::io("create ckpt dir", &ckpt_dir, e))?;

        let load = checkpoint::load_checkpoints(&ckpt_dir)?;
        let ckpt_seq_of: HashMap<u64, u64> =
            load.checkpoints.iter().map(|c| (c.tenant, c.seq)).collect();

        let mut records = Vec::new();
        let mut last_append: HashMap<u64, u64> = HashMap::new();
        let report = wal::replay(&wal_dir, |record| {
            last_append.insert(record.tenant, record.seq);
            let covered = ckpt_seq_of
                .get(&record.tenant)
                .is_some_and(|&c| record.seq <= c);
            if !covered {
                records.push(record);
            }
        })?;

        let max_ckpt_seq = ckpt_seq_of.values().copied().max().unwrap_or(0);
        // When a checkpoint covers records the WAL lost, next_seq jumps
        // past the durable tail; the next segment then legitimately
        // starts beyond where the previous one ended, which replay
        // accepts as a seq gap (see `wal::ReplayReport::seq_gaps`).
        let next_seq = report.last_seq.max(max_ckpt_seq) + 1;

        let fallback_seq_of: HashMap<u64, u64> = load.fallback_seqs.iter().copied().collect();
        let mut tenants = HashMap::new();
        for ckpt in &load.checkpoints {
            last_append.entry(ckpt.tenant).or_insert(ckpt.seq);
        }
        for (&tenant, &last) in &last_append {
            let meta = TenantMeta::default();
            meta.last_append.store(last, Ordering::Relaxed);
            meta.ckpt_seq.store(
                ckpt_seq_of.get(&tenant).copied().unwrap_or(0),
                Ordering::Relaxed,
            );
            meta.fence_seq.store(
                fallback_seq_of.get(&tenant).copied().unwrap_or(0),
                Ordering::Relaxed,
            );
            tenants.insert(tenant, Arc::new(meta));
        }

        let recovery = Recovery {
            checkpoints: load.checkpoints,
            records,
            report,
            corrupt_checkpoints_skipped: load.corrupt_skipped,
        };
        let store = Self {
            ckpt_dir,
            wal: Mutex::new(WalWriter::new(
                &wal_dir,
                cfg.segment_bytes,
                cfg.fsync,
                next_seq,
            )),
            tenants: Mutex::new(tenants),
            counters: Counters::default(),
        };
        store
            .counters
            .torn_tails_dropped
            .store(report.torn_tails_dropped, Ordering::Relaxed);
        store
            .counters
            .seq_gaps
            .store(report.seq_gaps, Ordering::Relaxed);
        store
            .counters
            .corrupt_checkpoints_skipped
            .store(recovery.corrupt_checkpoints_skipped, Ordering::Relaxed);
        store
            .counters
            .replayed_records
            .store(recovery.records.len() as u64, Ordering::Relaxed);
        if recovery.found_state() {
            store.counters.recoveries.store(1, Ordering::Relaxed);
        }
        Ok((store, recovery))
    }

    /// The tenant's handle (created on first touch). Lock it around
    /// the paired store + engine operations.
    pub fn tenant(&self, id: u64) -> TenantHandle {
        TenantHandle {
            meta: self.tenant_meta(id),
        }
    }

    /// Appends an acknowledged value batch to the WAL and returns its
    /// sequence number. **Contract:** the caller holds `tenant`'s
    /// [`TenantHandle`] lock and ingests the same batch into the
    /// engine before releasing it.
    ///
    /// # Errors
    /// WAL append failures; nothing was acknowledged-but-lost, since
    /// the caller must not ACK on error.
    pub fn append_batch(&self, tenant: u64, xs: &[u64]) -> StoreResult<u64> {
        self.append(tenant, &WalPayload::Batch(xs.to_vec()))
    }

    /// Appends an acknowledged merge-snapshot frame to the WAL. Same
    /// contract as [`append_batch`](Self::append_batch).
    ///
    /// # Errors
    /// WAL append failures.
    pub fn append_snapshot(&self, tenant: u64, frame: &[u8]) -> StoreResult<u64> {
        self.append(tenant, &WalPayload::Snapshot(frame.to_vec()))
    }

    /// Sequence number of `tenant`'s most recent WAL record (0 =
    /// none). Read under the tenant lock when pairing with an engine
    /// snapshot.
    pub fn last_append(&self, tenant: u64) -> u64 {
        self.tenant_meta(tenant).last_append.load(Ordering::Acquire)
    }

    /// Records a checkpoint of `tenant` covering WAL records with
    /// sequence numbers ≤ `seq`: writes the checkpoint file
    /// atomically, advances the tenant's fence to its *previous*
    /// checkpoint (keeping the retained fallback file replayable), and
    /// truncates WAL segments every tenant's fence now covers. `frame`
    /// is the tenant's summary as a `WireCodec` frame; `n` its item
    /// count.
    ///
    /// Call *without* the tenant lock held — the snapshot pair
    /// (`last_append` + engine snapshot) happens under the lock, the
    /// slow file write afterwards.
    ///
    /// # Errors
    /// Checkpoint write or WAL truncation failures.
    pub fn record_checkpoint(
        &self,
        tenant: u64,
        seq: u64,
        n: u64,
        frame: &[u8],
    ) -> StoreResult<()> {
        checkpoint::write_checkpoint(&self.ckpt_dir, tenant, seq, n, frame)?;
        let meta = self.tenant_meta(tenant);
        let prev = meta.ckpt_seq.swap(seq, Ordering::AcqRel);
        // Fence on the *previous* checkpoint: records in (prev, seq]
        // exist only inside the file just written until the next
        // checkpoint supersedes it, so they must stay in the WAL for
        // the corrupt-newest fallback to be replayable.
        meta.fence_seq.store(prev, Ordering::Release);
        self.counters
            .checkpoints_written
            .fetch_add(1, Ordering::Relaxed);
        let fence = self.fence();
        let deleted = {
            let mut w = self.wal_guard();
            w.truncate_below(fence)?
        };
        self.counters
            .segments_deleted
            .fetch_add(deleted, Ordering::Relaxed);
        Ok(())
    }

    /// Forces the WAL to the platter (graceful-shutdown flush; also
    /// useful before a planned restart under `FsyncPolicy::Never`).
    ///
    /// # Errors
    /// The underlying sync failure.
    pub fn flush(&self) -> StoreResult<()> {
        {
            let mut w = self.wal_guard();
            w.sync()?;
        }
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A consistent snapshot of the store counters.
    pub fn stats(&self) -> StoreStats {
        let last_seq = {
            let w = self.wal_guard();
            w.next_seq().saturating_sub(1)
        };
        let c = &self.counters;
        StoreStats {
            records_appended: c.records_appended.load(Ordering::Relaxed),
            items_appended: c.items_appended.load(Ordering::Relaxed),
            bytes_appended: c.bytes_appended.load(Ordering::Relaxed),
            fsyncs: c.fsyncs.load(Ordering::Relaxed),
            segments_rotated: c.segments_rotated.load(Ordering::Relaxed),
            segments_deleted: c.segments_deleted.load(Ordering::Relaxed),
            checkpoints_written: c.checkpoints_written.load(Ordering::Relaxed),
            corrupt_checkpoints_skipped: c.corrupt_checkpoints_skipped.load(Ordering::Relaxed),
            recoveries: c.recoveries.load(Ordering::Relaxed),
            replayed_records: c.replayed_records.load(Ordering::Relaxed),
            torn_tails_dropped: c.torn_tails_dropped.load(Ordering::Relaxed),
            seq_gaps: c.seq_gaps.load(Ordering::Relaxed),
            last_seq,
        }
    }

    /// Tenants that have appended records not yet covered by their
    /// checkpoint, with the covering sequence number a checkpoint
    /// would need — the background checkpointer's work list.
    pub fn tenants_needing_checkpoint(&self) -> Vec<(u64, u64)> {
        self.metas()
            .into_iter()
            .filter_map(|(tenant, meta)| {
                let last = meta.last_append.load(Ordering::Acquire);
                let ckpt = meta.ckpt_seq.load(Ordering::Acquire);
                (last > ckpt).then_some((tenant, last))
            })
            .collect()
    }

    /// The shared append path: assign a sequence number, write + sync
    /// per policy, bump counters, advance the tenant high-water mark.
    fn append(&self, tenant: u64, payload: &WalPayload) -> StoreResult<u64> {
        let meta = self.tenant_meta(tenant);
        let outcome = {
            let mut w = self.wal_guard();
            w.append(tenant, payload)?
        };
        let c = &self.counters;
        c.records_appended.fetch_add(1, Ordering::Relaxed);
        c.items_appended
            .fetch_add(payload.batch_len(), Ordering::Relaxed);
        c.bytes_appended.fetch_add(outcome.bytes, Ordering::Relaxed);
        if outcome.synced {
            c.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.rotated {
            c.segments_rotated.fetch_add(1, Ordering::Relaxed);
        }
        meta.last_append.store(outcome.seq, Ordering::Release);
        Ok(outcome.seq)
    }

    /// The WAL-truncation fence: the highest sequence number such that
    /// every tenant's records at or below it are covered by that
    /// tenant's *second*-newest checkpoint (or would not be needed by
    /// it). Fencing one checkpoint behind keeps the retained fallback
    /// file replayable if the newest one turns out corrupt.
    fn fence(&self) -> u64 {
        let mut fence = {
            let w = self.wal_guard();
            w.next_seq().saturating_sub(1)
        };
        for (_, meta) in self.metas() {
            let last = meta.last_append.load(Ordering::Acquire);
            let fallback = meta.fence_seq.load(Ordering::Acquire);
            if fallback < last {
                fence = fence.min(fallback);
            }
        }
        fence
    }

    /// The tenant's metadata `Arc`, created on first touch. (Sole
    /// `tenants` lock site; the guard never outlives this function.)
    fn tenant_meta(&self, id: u64) -> Arc<TenantMeta> {
        let mut map = match self.tenants.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(map.entry(id).or_default())
    }

    /// Snapshot of all tenant metadata `Arc`s. (Sole other `tenants`
    /// lock site, same single-function discipline.)
    fn metas(&self) -> Vec<(u64, Arc<TenantMeta>)> {
        match self.tenants.lock() {
            Ok(g) => g.iter().map(|(&t, m)| (t, Arc::clone(m))).collect(),
            Err(poisoned) => poisoned
                .into_inner()
                .iter()
                .map(|(&t, m)| (t, Arc::clone(m)))
                .collect(),
        }
    }

    /// The WAL writer guard, poison-recovered: the writer's state is
    /// advanced only after successful writes, so a panicked holder
    /// leaves it consistent.
    fn wal_guard(&self) -> MutexGuard<'_, WalWriter> {
        match self.wal.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dir: &Path) -> StoreConfig {
        let mut c = StoreConfig::new(dir);
        c.fsync = FsyncPolicy::Never;
        c.segment_bytes = 4096;
        c
    }

    fn tmp() -> sqs_util::tmpdir::TempDir {
        sqs_util::tmpdir::TempDir::new("sqs-store-test").expect("test invariant: tmpdir creatable")
    }

    fn frame() -> Vec<u8> {
        use sqs_core::codec::WireCodec;
        sqs_core::sampled::ReservoirQuantiles::<u64>::new(0.1, 1).to_bytes()
    }

    /// The store's WAL segment files under `root`, in sequence order.
    fn wal_segments(root: &Path) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = fs::read_dir(root.join("wal"))
            .expect("read wal dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "wal"))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn fresh_open_has_no_recovery() {
        let dir = tmp();
        let (store, rec) = DurableStore::open(&cfg(dir.path())).expect("open");
        assert!(!rec.found_state());
        assert_eq!(store.stats().recoveries, 0);
        assert_eq!(store.stats().last_seq, 0);
    }

    #[test]
    fn appended_batches_come_back_on_reopen() {
        let dir = tmp();
        {
            let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
            let t = store.tenant(5);
            let _g = t.lock();
            store.append_batch(5, &[1, 2, 3]).expect("append");
            store.append_batch(5, &[4, 5]).expect("append");
        }
        let (store, rec) = DurableStore::open(&cfg(dir.path())).expect("reopen");
        assert!(rec.found_state());
        assert_eq!(rec.records.len(), 2);
        assert_eq!(
            rec.records.first().map(|r| r.payload.clone()),
            Some(WalPayload::Batch(vec![1, 2, 3]))
        );
        assert_eq!(store.stats().recoveries, 1);
        assert_eq!(store.stats().replayed_records, 2);
        assert_eq!(store.last_append(5), 2);
    }

    #[test]
    fn checkpoint_filters_replay_and_truncates_wal() {
        let dir = tmp();
        let f = frame();
        {
            let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
            for i in 0..40u64 {
                store.append_batch(9, &[i; 64]).expect("append");
            }
            let first = store.last_append(9);
            store
                .record_checkpoint(9, first, 40 * 64, &f)
                .expect("checkpoint");
            // The first checkpoint has no predecessor to fence on:
            // every record must stay replayable for its fallback
            // (pure WAL replay), so nothing is truncated yet.
            assert_eq!(
                store.stats().segments_deleted,
                0,
                "first checkpoint fences at 0"
            );
            for i in 0..40u64 {
                store.append_batch(9, &[i; 64]).expect("append");
            }
            let second = store.last_append(9);
            store
                .record_checkpoint(9, second, 80 * 64, &f)
                .expect("checkpoint");
            store.append_batch(9, &[777]).expect("append after ckpt");
            assert!(
                store.stats().segments_deleted > 0,
                "second checkpoint advances the fence to the first"
            );
        }
        let (_store, rec) = DurableStore::open(&cfg(dir.path())).expect("reopen");
        assert_eq!(rec.checkpoints.len(), 1);
        assert_eq!(rec.checkpoints.first().map(|c| c.n), Some(80 * 64));
        assert_eq!(
            rec.records.len(),
            1,
            "only the post-checkpoint record replays"
        );
        assert_eq!(
            rec.records.first().map(|r| r.payload.clone()),
            Some(WalPayload::Batch(vec![777]))
        );
    }

    #[test]
    fn fence_respects_the_laggiest_tenant() {
        let dir = tmp();
        let f = frame();
        let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
        // Tenant 1 writes, checkpoints; tenant 2 writes, never does.
        store.append_batch(2, &[42]).expect("append");
        for i in 0..40u64 {
            store.append_batch(1, &[i; 64]).expect("append");
        }
        store
            .record_checkpoint(1, store.last_append(1), 40 * 64, &f)
            .expect("checkpoint");
        // Tenant 2's record (seq 1) fences everything: no deletions.
        assert_eq!(store.stats().segments_deleted, 0);
        let needs = store.tenants_needing_checkpoint();
        assert_eq!(needs, vec![(2, 1)]);
    }

    /// The REVIEW.md high-severity repro: a checkpoint covering seqs
    /// beyond the durable WAL tail (crash under `--fsync
    /// interval|never`) makes the first recovery resume numbering past
    /// the tail; the second restart must treat the resulting
    /// between-segment gap as a resume point, not corruption — the
    /// batch acked after the first recovery has to survive.
    #[test]
    fn checkpoint_ahead_of_wal_tail_survives_two_restarts() {
        let dir = tmp();
        let f = frame();
        {
            let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
            let t = store.tenant(1);
            let _g = t.lock();
            for i in 0..3u64 {
                store.append_batch(1, &[i]).expect("append");
            }
            drop(_g);
            store.record_checkpoint(1, 3, 3, &f).expect("checkpoint");
        }
        // Crash simulation: the checkpoint reached the disk but the
        // last WAL record did not. One-value batch records are
        // RECORD_OVERHEAD + 8 (count) + 8 (value) bytes each.
        let rec_len = (wal::RECORD_OVERHEAD + 16) as u64;
        let seg = wal_segments(dir.path()).pop().expect("one segment on disk");
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .expect("open segment");
        file.set_len(wal::SEGMENT_HEADER_LEN as u64 + 2 * rec_len)
            .expect("drop record 3");
        drop(file);
        {
            // First recovery: WAL ends at seq 2, checkpoint covers 3,
            // so the writer resumes at 4 — in a new segment that
            // starts past where the old one ends.
            let (store, rec) = DurableStore::open(&cfg(dir.path())).expect("first reopen");
            assert!(rec.records.is_empty(), "seqs 1-2 are checkpoint-covered");
            let t = store.tenant(1);
            let _g = t.lock();
            let seq = store.append_batch(1, &[99]).expect("append");
            assert_eq!(seq, 4);
        }
        // Second recovery: the acked seq-4 record must come back.
        let (store, rec) = DurableStore::open(&cfg(dir.path())).expect("second reopen");
        assert_eq!(
            rec.records
                .iter()
                .map(|r| (r.seq, r.payload.clone()))
                .collect::<Vec<_>>(),
            vec![(4, WalPayload::Batch(vec![99]))],
            "the batch acked after the first recovery survives the seq gap"
        );
        assert_eq!(rec.report.seq_gaps, 1);
        assert_eq!(rec.report.torn_tails_dropped, 0);
        assert_eq!(store.stats().seq_gaps, 1);
        assert_eq!(store.last_append(1), 4);
    }

    /// The keep-2 "bit-rot fallback" must be replayable: with the
    /// fence trailing one checkpoint behind, a corrupt newest file
    /// falls back to the previous one and finds every record after it
    /// still in the WAL — no silent loss of `(prev, newest]`.
    #[test]
    fn corrupt_newest_checkpoint_fallback_is_fully_replayable() {
        let dir = tmp();
        let f = frame();
        let (first, second) = {
            let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
            for i in 0..40u64 {
                store.append_batch(1, &[i; 64]).expect("append");
            }
            let first = store.last_append(1);
            store
                .record_checkpoint(1, first, 40 * 64, &f)
                .expect("checkpoint");
            for i in 0..40u64 {
                store.append_batch(1, &[i; 64]).expect("append");
            }
            let second = store.last_append(1);
            store
                .record_checkpoint(1, second, 80 * 64, &f)
                .expect("checkpoint");
            assert!(
                store.stats().segments_deleted > 0,
                "the WAL did get truncated (below the first checkpoint)"
            );
            store.append_batch(1, &[5]).expect("append after ckpt");
            (first, second)
        };
        // Bit-rot the newest checkpoint file (zero-padded names sort
        // in (tenant, seq) order, so the lexicographic max is newest).
        let mut ckpts: Vec<PathBuf> = fs::read_dir(dir.path().join("ckpt"))
            .expect("read ckpt dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .collect();
        ckpts.sort();
        assert_eq!(ckpts.len(), 2, "keep-2 retention");
        let newest = ckpts.last().expect("newest checkpoint");
        let mut bytes = fs::read(newest).expect("read");
        if let Some(b) = bytes.get_mut(25) {
            *b ^= 0x10;
        }
        fs::write(newest, &bytes).expect("write back");

        let (_store, rec) = DurableStore::open(&cfg(dir.path())).expect("reopen");
        assert_eq!(rec.corrupt_checkpoints_skipped, 1);
        assert_eq!(
            rec.checkpoints.first().map(|c| c.seq),
            Some(first),
            "fell back to the previous checkpoint"
        );
        let seqs: Vec<u64> = rec.records.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            (first + 1..=second + 1).collect::<Vec<_>>(),
            "every record past the fallback checkpoint is still replayable"
        );
    }

    #[test]
    fn snapshot_records_replay_too() {
        let dir = tmp();
        let f = frame();
        {
            let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
            store.append_snapshot(3, &f).expect("append snapshot");
        }
        let (_store, rec) = DurableStore::open(&cfg(dir.path())).expect("reopen");
        assert_eq!(
            rec.records.first().map(|r| r.payload.clone()),
            Some(WalPayload::Snapshot(f))
        );
    }

    #[test]
    fn stats_ledger_adds_up() {
        let dir = tmp();
        let (store, _) = DurableStore::open(&cfg(dir.path())).expect("open");
        store.append_batch(1, &[1, 2, 3, 4]).expect("append");
        store.append_batch(1, &[5]).expect("append");
        let s = store.stats();
        assert_eq!(s.records_appended, 2);
        assert_eq!(s.items_appended, 5);
        assert!(s.bytes_appended > 0);
        assert_eq!(s.last_seq, 2);
        store.flush().expect("flush");
        assert!(store.stats().fsyncs >= 1);
    }
}
